// NaiveEngine: the relational-algebra comparator of Proposition 3.1.
//
// This engine answers view queries the way a conventional RDBMS (or the
// procedural application code the paper criticizes) would: by evaluating
// the defining expression from scratch over the STORED chronicle. It
// serves three purposes:
//
//   1. The IM-C^k baseline of Proposition 3.1 / benchmark E1: per-append
//      recomputation cost necessarily grows with |C|.
//   2. The correctness oracle for the incremental engine: property tests
//      recompute each view from scratch and compare row-for-row with the
//      incrementally maintained PersistentView.
//   3. The §5.3 "batch at end of period" formulation of discount plans.
//
// Faithfulness of the temporal join: the chronicle model joins each
// chronicle tuple with the relation version current AT ITS SEQUENCE
// NUMBER. A from-scratch recompute therefore needs historical relation
// versions — which is precisely the storage the chronicle model avoids.
// RelationHistory records those versions for the baseline's benefit; if no
// history is supplied the engine uses current relation contents (exact
// whenever relations did not change mid-stream).
//
// Semantics match the DeltaEngine exactly: a chronicle is a set of
// (SN, payload) rows; Union/Difference/Project deduplicate.
//
// Unlike the DeltaEngine, this engine also evaluates the four Theorem 4.3
// constructs (ProjectDropSn, GroupByNoSn, ChronicleCross, SeqThetaJoin) —
// demonstrating that they are *expressible* in relational algebra, just
// not incrementally maintainable without chronicle access. Conventions for
// non-chronicle results: SN-dropping operators emit rows with sn = 0;
// cross/theta joins between chronicles emit sn = max of the operand SNs.

#ifndef CHRONICLE_BASELINE_NAIVE_ENGINE_H_
#define CHRONICLE_BASELINE_NAIVE_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "algebra/ca_expr.h"
#include "common/status.h"
#include "storage/chronicle_group.h"
#include "views/summary_spec.h"

namespace chronicle {

// Historical relation versions, recorded by the caller before relation
// updates, so from-scratch evaluation can reproduce the implicit temporal
// join. (The chronicle model itself never needs this — that asymmetry is
// part of the paper's point.)
class RelationHistory {
 public:
  // Records `rel`'s current rows as the version observed by every tick
  // with sequence number >= from_sn (until a later snapshot supersedes it).
  void Snapshot(const Relation& rel, SeqNum from_sn);

  // Rows of `rel` visible at `sn`, or nullptr if no snapshot covers it
  // (callers then fall back to current contents).
  const std::vector<Tuple>* RowsAt(const Relation* rel, SeqNum sn) const;

  size_t num_snapshots() const;

 private:
  std::map<const Relation*, std::map<SeqNum, std::vector<Tuple>>> history_;
};

// What a Scan reads during full evaluation.
enum class ScanScope : uint8_t {
  // The whole chronicle; fails if retention has dropped rows. This is the
  // relational-baseline / oracle mode.
  kFullChronicle = 0,
  // Whatever the retention policy kept — the §2.2 "detailed queries over
  // some latest window on the chronicle" mode. Results are with respect to
  // the retained suffix, by design.
  kRetainedWindow = 1,
};

class NaiveEngine {
 public:
  // `group` provides the stored chronicles; `history` may be null.
  explicit NaiveEngine(const ChronicleGroup* group,
                       const RelationHistory* history = nullptr,
                       ScanScope scope = ScanScope::kFullChronicle);

  // Full evaluation over the stored chronicles. Fails with
  // FailedPrecondition if a scanned chronicle has discarded rows (its
  // retention policy dropped part of the stream): the relational baseline
  // NEEDS the whole chronicle.
  Result<std::vector<ChronicleRow>> Evaluate(const CaExpr& expr) const;

  // Full recomputation of the summarized view `spec` over `expr`,
  // returning finalized rows sorted by key (deterministic for comparison
  // with PersistentView scans).
  Result<std::vector<Tuple>> EvaluateSummary(const CaExpr& expr,
                                             const SummarySpec& spec) const;

  // How baseline predicates see $chronon. Defaults to chronon == sn.
  void set_chronon_resolver(std::function<Chronon(SeqNum)> resolver) {
    chronon_resolver_ = std::move(resolver);
  }

 private:
  // Relation rows visible at `sn` (history if available, else current).
  const std::vector<Tuple>& RelationRowsAt(const Relation* rel, SeqNum sn) const;

  const ChronicleGroup* group_;
  const RelationHistory* history_;
  ScanScope scope_;
  std::function<Chronon(SeqNum)> chronon_resolver_;
};

// Sorts tuples lexicographically (helper for oracle comparisons).
void SortTuples(std::vector<Tuple>* tuples);

}  // namespace chronicle

#endif  // CHRONICLE_BASELINE_NAIVE_ENGINE_H_
