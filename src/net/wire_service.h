// net::WireService: the CQL-over-the-wire front-end.
//
// A dependency-free network ingest path layered on obs::HttpServer
// (persistent HTTP/1.1 keep-alive connections, POST bodies) and
// cql::Session (the one statement-execution layer the shell and tests
// also drive). The service does not reimplement any statement logic: a
// statement arriving over the wire takes exactly the code path a shell
// statement takes.
//
// Endpoint catalog (docs/NETWORK.md has the curl quickstart):
//
//   POST /v1/session          open a session -> {"session":"s1"}
//   POST /v1/session/close    close it (X-Chronicle-Session header)
//   POST /v1/sql              execute CQL script in the body; rows as JSON
//   POST /v1/append?chronicle=NAME
//                             bulk ingest: TSV body, one row per line,
//                             blank line separates ticks; enqueued into the
//                             session's bounded queue -> AppendMany
//   POST /v1/drain            block until every queued row is applied
//   GET  /healthz /stats.json /metrics
//                             the monitoring catalog, with the net section
//
// Sessions: every /v1/sql and /v1/append carries an X-Chronicle-Session
// header naming a session opened via POST /v1/session. When
// NetOptions::auth_token is set, /v1/* additionally requires
// `Authorization: Bearer <token>` (401 otherwise). Per-session state:
// the row quota, the bounded ingest queue, and the prepared chronicle
// schema bindings /v1/append decodes against.
//
// Backpressure is explicit, not implicit: /v1/append either accepts the
// whole body into the session's bounded queue (202, with queue depth in
// the reply) or rejects it atomically with 429 + Retry-After — a full
// queue never blocks the HTTP thread, and a rejected body is never
// half-applied. A body that could NEVER fit (more rows than the queue
// holds even when empty) is a client error, not backpressure: it gets
// 400 InvalidArgument so a Retry-After-honoring client does not livelock
// resending it. Rejections are per-session: a saturated session's 429s do
// not slow any other session. A single ingest worker drains the queues
// round-robin through cql::Session::AppendRows, so networked rows take
// the same AppendMany path (and the same WAL, sharding, and view
// maintenance) as local ones.
//
// Concurrency: the service adds no engine-level locking of its own.
// cql::Session serializes every mutating call internally, so the HTTP
// threads, the ingest worker, AND a shell REPL driving the same session
// (\listen — "the shell is the server") share one serialization point.
//
// Error surface: failures are rendered as cql::ErrorJson —
// {"error":{"code":"...","message":"..."}} — with the HTTP status derived
// from the StatusCode by HttpStatusFor(). One enum, one shape, every
// surface.

#ifndef CHRONICLE_NET_WIRE_SERVICE_H_
#define CHRONICLE_NET_WIRE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "cql/session.h"
#include "obs/history.h"
#include "obs/http_server.h"
#include "obs/request_trace.h"

namespace chronicle {
namespace net {

struct NetOptions {
  // Bearer token required on every /v1/* request ("" = no auth).
  std::string auth_token;
  // Bounded per-session ingest queue, in rows. An append that would
  // overflow it is rejected whole with 429 + Retry-After.
  size_t session_queue_rows = 8192;
  // Rows a session may accept over its lifetime (0 = unlimited); spent
  // quota also answers 429.
  uint64_t session_row_quota = 0;
  // Concurrently open sessions (0 = unlimited); at the cap /v1/session
  // answers 429 + Retry-After. Closed sessions are erased once their
  // queue drains, so the table stays bounded on a long-running service.
  size_t max_open_sessions = 64;
  // Value of the Retry-After header on 429 responses.
  int retry_after_sec = 1;
  // Concurrent HTTP connections (obs::HttpServerOptions::max_connections).
  size_t max_connections = 8;
  // Largest accepted request body.
  size_t max_body_bytes = 8u << 20;
};

// Maps the shared error enum onto HTTP statuses (429 for
// ResourceExhausted, 401 for Unauthenticated, 404 for NotFound, ...).
int HttpStatusFor(StatusCode code);

class WireService {
 public:
  // `session` must outlive the service. The service registers a stats
  // enricher on it, so /stats.json, /metrics, and the flight recorder all
  // see the chronicle_net_* section.
  WireService(cql::Session* session, NetOptions options);
  ~WireService();  // Stop()

  WireService(const WireService&) = delete;
  WireService& operator=(const WireService&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the HTTP threads
  // and the ingest worker.
  Status Start(uint16_t port);
  void Stop();
  bool running() const { return running_; }
  uint16_t port() const { return http_.port(); }

  // Blocks until every session queue is empty and the worker is idle;
  // on a sharded session also Flush()es the router lanes. What /v1/drain
  // calls, and what tests use to make ingest deterministic.
  Status Drain();

  // Test hook: while paused the ingest worker applies nothing, so a
  // session queue can be filled to overflow deterministically.
  void SetIngestPaused(bool paused);

 private:
  struct PendingBatch {
    std::string chronicle;
    std::vector<std::vector<Tuple>> ticks;
    uint64_t rows = 0;
    // Trace context carried across the HTTP->worker handoff so the async
    // apply's spans (queue_wait, append, wal_commit, maintain, merge) stay
    // parent-linked under the accepting request's root span.
    obs::TraceContext trace;
    uint64_t root_span = 0;
    int64_t entry_ns = 0;    // request entry on the HTTP thread
    int64_t enqueue_ns = 0;  // accepted into the queue (queue_wait start)
  };

  struct SessionState {
    std::string id;
    bool open = true;
    uint64_t statements = 0;
    uint64_t rows_accepted = 0;
    uint64_t rows_applied = 0;
    uint64_t queue_rows = 0;
    uint64_t rejected_backpressure = 0;
    uint64_t rejected_quota = 0;
    std::deque<PendingBatch> queue;
    // Prepared chronicle bindings: schemas resolved once per session and
    // reused by every subsequent append.
    std::map<std::string, Schema> bindings;
  };

  // Per-request trace bookkeeping, minted at Route entry and threaded into
  // the handlers. `tracer` null = request tracing disabled for the session;
  // ctx.sampled false = RED counters only, zero spans.
  struct ReqTrace {
    obs::RequestTracer* tracer = nullptr;
    obs::TraceContext ctx;
    uint64_t root_span = 0;
    int64_t entry_ns = 0;
    obs::ReqEndpoint endpoint = obs::ReqEndpoint::kOther;
    // A 202 append finishes asynchronously: the ingest worker runs the
    // slow-request check at apply time instead of the Route trailer.
    bool deferred_slow_check = false;
  };

  obs::HttpResponse Route(const obs::HttpRequest& request);
  // Dispatch body of Route: classification, auth, and the handler call.
  // Route itself wraps it with the uniform trace/RED/echo trailer.
  obs::HttpResponse RouteInner(const obs::HttpRequest& request, ReqTrace* rt);
  obs::HttpResponse HandleOpenSession(const obs::HttpRequest& request);
  obs::HttpResponse HandleCloseSession(const obs::HttpRequest& request);
  obs::HttpResponse HandleSql(const obs::HttpRequest& request, ReqTrace* rt);
  obs::HttpResponse HandleAppend(const obs::HttpRequest& request,
                                 ReqTrace* rt);
  obs::HttpResponse HandleDrain(const obs::HttpRequest& request);
  // Merged per-shard /trace.json body (satellite of the request-tracing
  // work: spans survive the thread handoff with shard/worker tags).
  std::string RenderMergedTraceJson() const;

  // 401 when auth/session resolution fails; nullptr + filled response.
  SessionState* ResolveSession(const obs::HttpRequest& request,
                               obs::HttpResponse* error);
  obs::HttpResponse ErrorResponse(const Status& status);

  void IngestLoop();
  void FillNetStats(obs::StatsSnapshot* snap);

  cql::Session* session_;
  NetOptions options_;
  obs::HttpServer http_;
  bool running_ = false;
  size_t enricher_token_ = 0;

  // Service-owned stats history behind /history.json: the wire service is
  // the one place that sees SESSION-level (merged, enriched) snapshots, so
  // sharded deployments get per-shard history windows here rather than
  // from any single engine's monitoring endpoint.
  std::unique_ptr<obs::StatsHistory> history_;
  std::unique_ptr<obs::StatsSampler> sampler_;

  // Session table + queues. ingest_cv_ wakes the worker on new batches;
  // drain_cv_ wakes Drain() when the worker goes idle.
  std::mutex mu_;
  std::condition_variable ingest_cv_;
  std::condition_variable drain_cv_;
  std::map<std::string, std::unique_ptr<SessionState>> sessions_;
  // Session the worker is currently applying a batch for ("" = none); a
  // close must not erase it mid-apply (the worker re-touches the state
  // for accounting). The worker erases closed sessions itself once their
  // queue drains.
  std::string applying_session_;
  uint64_t next_session_ = 1;
  bool ingest_paused_ = false;
  bool worker_stop_ = false;
  bool worker_busy_ = false;
  std::thread worker_;

  // Service-wide counters (guarded by mu_ unless atomic-by-use on the
  // HTTP threads; all reads go through FillNetStats under mu_).
  uint64_t requests_total_ = 0;
  uint64_t http_errors_total_ = 0;
  uint64_t sessions_opened_ = 0;
  uint64_t sql_statements_total_ = 0;
  uint64_t append_batches_total_ = 0;
  uint64_t append_rows_total_ = 0;
  uint64_t rows_applied_total_ = 0;
  uint64_t rejected_backpressure_total_ = 0;
  uint64_t rejected_quota_total_ = 0;
  uint64_t rejected_auth_total_ = 0;
};

}  // namespace net
}  // namespace chronicle

#endif  // CHRONICLE_NET_WIRE_SERVICE_H_
