// net::HttpClient: a minimal blocking HTTP/1.1 keep-alive client for
// 127.0.0.1 — the loopback counterpart of obs::HttpServer, used by the
// wire-service tests, bench E16, and tools/net_client. Dependency-free by
// the same rule as the server.
//
// One client = one persistent connection (plus a reconnect-once retry
// when the server closed an idle one). Requests are Content-Length
// framed; responses are parsed off a growing buffer, so pipelined
// keep-alive responses are handled exactly like the server handles
// pipelined requests. Not thread-safe — one client per thread.

#ifndef CHRONICLE_NET_HTTP_CLIENT_H_
#define CHRONICLE_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace chronicle {
namespace net {

struct HttpClientResponse {
  int status = 0;
  std::string body;
  // Lower-cased header names, arrival order.
  std::vector<std::pair<std::string, std::string>> headers;

  const std::string* FindHeader(const std::string& lower_name) const {
    for (const auto& [name, value] : headers) {
      if (name == lower_name) return &value;
    }
    return nullptr;
  }
};

class HttpClient {
 public:
  explicit HttpClient(uint16_t port, int timeout_sec = 30);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  // `headers` are extra request headers ({"authorization", "Bearer t"}).
  Result<HttpClientResponse> Get(
      const std::string& path,
      const std::vector<std::pair<std::string, std::string>>& headers = {});
  Result<HttpClientResponse> Post(
      const std::string& path, const std::string& body,
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  // Drops the connection; the next request reconnects.
  void Disconnect();

 private:
  Status Connect();
  Status SendAll(const std::string& data);
  Result<HttpClientResponse> ReadResponse();
  Result<HttpClientResponse> RoundTrip(const std::string& method,
                                       const std::string& path,
                                       const std::string& body,
                                       const std::vector<std::pair<
                                           std::string, std::string>>& headers);

  uint16_t port_;
  int timeout_sec_;
  int fd_ = -1;
  std::string buf_;  // bytes read past the previous response
};

}  // namespace net
}  // namespace chronicle

#endif  // CHRONICLE_NET_HTTP_CLIENT_H_
