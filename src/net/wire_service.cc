#include "net/wire_service.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/export.h"

namespace chronicle {
namespace net {

namespace {

// Renders one Value as a JSON literal.
void JsonValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_int64()) {
    *out += std::to_string(v.int64());
  } else if (v.is_double()) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.17g", v.dbl());
    *out += buf;
  } else {
    *out += "\"" + obs::JsonEscape(v.str()) + "\"";
  }
}

// First value of `key` in an application/x-www-form-urlencoded-ish query
// string ("chronicle=calls&x=1"). No percent-decoding: every expected
// value is an identifier.
bool QueryParam(const std::string& query, const std::string& key,
                std::string* value) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      *value = query.substr(eq + 1, amp - eq - 1);
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

// Parses one TSV cell against the column type. The empty cell and `\N`
// are NULL (the usual TSV conventions).
Result<Value> ParseCell(const std::string& cell, const Field& field) {
  if (cell.empty() || cell == "\\N") return Value();
  char* end = nullptr;
  switch (field.type) {
    case DataType::kInt64: {
      errno = 0;
      const long long v = strtoll(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("column " + field.name +
                                       ": not an INT64: '" + cell + "'");
      }
      if (errno == ERANGE) {
        // strtoll saturates to LLONG_MIN/MAX on overflow; ingesting the
        // saturated value would silently corrupt the data.
        return Status::InvalidArgument("column " + field.name +
                                       ": INT64 out of range: '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      errno = 0;
      const double v = strtod(cell.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("column " + field.name +
                                       ": not a DOUBLE: '" + cell + "'");
      }
      // ERANGE also fires on subnormal underflow, where strtod still
      // returns the nearest representable value — only overflow (±HUGE_VAL)
      // loses the magnitude.
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        return Status::InvalidArgument("column " + field.name +
                                       ": DOUBLE out of range: '" + cell +
                                       "'");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(cell);
  }
  return Status::Internal("unknown column type");
}

// Decodes a TSV body into ticks: one row per line, cells tab-separated in
// schema order, a blank line closes the current tick. Trailing newline
// optional; \r tolerated (curl on Windows).
Result<std::vector<std::vector<Tuple>>> DecodeTsv(const std::string& body,
                                                  const Schema& schema) {
  std::vector<std::vector<Tuple>> ticks;
  std::vector<Tuple> current;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= body.size()) {
    if (pos == body.size()) {
      if (line_no == 0) break;  // empty body handled by caller
    }
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      if (!current.empty()) ticks.push_back(std::move(current));
      current.clear();
      if (eol == body.size()) break;
      continue;
    }
    Tuple row;
    row.reserve(schema.num_fields());
    size_t cell_start = 0;
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      size_t tab = line.find('\t', cell_start);
      const bool last = (f + 1 == schema.num_fields());
      if (last) {
        if (tab != std::string::npos) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": too many columns (want " +
              std::to_string(schema.num_fields()) + ")");
        }
        tab = line.size();
      } else if (tab == std::string::npos) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": too few columns (want " +
            std::to_string(schema.num_fields()) + ")");
      }
      Result<Value> v = ParseCell(line.substr(cell_start, tab - cell_start),
                                  schema.field(f));
      if (!v.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + v.status().message());
      }
      row.push_back(std::move(*v));
      cell_start = tab + 1;
    }
    current.push_back(std::move(row));
    if (eol == body.size()) break;
  }
  if (!current.empty()) ticks.push_back(std::move(current));
  return ticks;
}

}  // namespace

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kPlanError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kUnauthenticated:
      return 401;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
  }
  return 500;
}

WireService::WireService(cql::Session* session, NetOptions options)
    : session_(session), options_(std::move(options)) {}

WireService::~WireService() { Stop(); }

Status WireService::Start(uint16_t port) {
  if (running_) {
    return Status::FailedPrecondition("wire service already running");
  }
  obs::HttpServerOptions http_options;
  http_options.enable_post = true;
  http_options.keep_alive = true;
  http_options.max_body_bytes = options_.max_body_bytes;
  http_options.max_connections =
      options_.max_connections > 0 ? options_.max_connections : 8;
  CHRONICLE_RETURN_NOT_OK(http_.Start(
      port, [this](const obs::HttpRequest& req) { return Route(req); },
      http_options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_stop_ = false;
  }
  worker_ = std::thread([this] { IngestLoop(); });
  enricher_token_ = session_->AddStatsEnricher(
      [this](obs::StatsSnapshot* snap) { FillNetStats(snap); });
  // The service-level history sampler sees the fully enriched session
  // snapshot (net + req + per-shard sections), so it starts AFTER the
  // enricher is hooked — its construction takes an immediate first sample.
  const obs::ObservabilityOptions& obs_opts =
      session_->options().observability;
  if (obs_opts.history_capacity > 0 && history_ == nullptr) {
    history_ = std::make_unique<obs::StatsHistory>(obs_opts.history_capacity);
  }
  if (history_ != nullptr) {
    sampler_ = std::make_unique<obs::StatsSampler>(
        history_.get(), [this] { return session_->CollectStats(); },
        obs_opts.history_interval_ms);
  }
  running_ = true;
  return Status::OK();
}

void WireService::Stop() {
  if (!running_) return;
  // Sampler first (its thread runs the enricher chain), then unhook stats
  // so no snapshot races the teardown. The history ring itself survives
  // for a later Start to resume the series.
  sampler_.reset();
  session_->RemoveStatsEnricher(enricher_token_);
  http_.Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_stop_ = true;
  }
  ingest_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  running_ = false;
}

Status WireService::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (ingest_paused_) {
      return Status::FailedPrecondition(
          "cannot drain while ingest is paused");
    }
    drain_cv_.wait(lock, [this] {
      if (worker_busy_) return false;
      for (const auto& [id, state] : sessions_) {
        if (!state->queue.empty()) return false;
      }
      return true;
    });
  }
  return session_->Flush();
}

void WireService::SetIngestPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_paused_ = paused;
  }
  ingest_cv_.notify_all();
}

// The worker: round-robin over sessions, one queued batch at a time, so a
// deep queue on one session cannot starve the others. The apply happens
// outside mu_ (HTTP threads keep accepting); Session::AppendRows itself
// serializes against every other statement driver (shell included).
void WireService::IngestLoop() {
  std::string cursor;  // last session served, for round-robin fairness
  while (true) {
    PendingBatch batch;
    SessionState* state = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ingest_cv_.wait(lock, [this] {
        if (worker_stop_) return true;
        if (ingest_paused_) return false;
        for (const auto& [id, s] : sessions_) {
          if (!s->queue.empty()) return true;
        }
        return false;
      });
      if (worker_stop_) return;
      // Pick the first non-empty queue strictly after the cursor, wrapping.
      auto it = sessions_.upper_bound(cursor);
      for (size_t i = 0; i <= sessions_.size(); ++i, ++it) {
        if (it == sessions_.end()) it = sessions_.begin();
        if (!it->second->queue.empty()) break;
      }
      if (it == sessions_.end() || it->second->queue.empty()) continue;
      state = it->second.get();
      cursor = it->first;
      batch = std::move(state->queue.front());
      state->queue.pop_front();
      worker_busy_ = true;
      applying_session_ = cursor;
    }

    // Worker id 1 tags every span the ingest worker (or the engine code it
    // calls) emits; the HTTP threads are worker 0. That tag is what keeps
    // spans attributable after the thread handoff.
    obs::RequestTracer* tracer = session_->request_tracer();
    const bool traced =
        tracer != nullptr && tracer->enabled() && batch.trace.sampled;
    if (traced) {
      const int64_t pop_ns = tracer->NowNanos();
      tracer->Emit(batch.trace, tracer->NewSpanId(), batch.root_span,
                   obs::ReqStage::kQueueWait, /*shard=*/-1, /*worker=*/1,
                   batch.enqueue_ns, pop_ns - batch.enqueue_ns, batch.rows);
    }
    const int64_t append_start = traced ? tracer->NowNanos() : 0;
    Result<uint64_t> applied = [&]() -> Result<uint64_t> {
      // Scope installed for the apply only: the engines' wal_commit/
      // maintain/merge emissions read it thread-locally.
      obs::RequestScope scope(tracer, batch.trace, batch.root_span,
                              /*worker=*/1);
      return session_->AppendRows(batch.chronicle, std::move(batch.ticks));
    }();
    if (traced) {
      tracer->Emit(batch.trace, tracer->NewSpanId(), batch.root_span,
                   obs::ReqStage::kAppend, /*shard=*/-1, /*worker=*/1,
                   append_start, tracer->NowNanos() - append_start,
                   applied.ok() ? *applied : 0);
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      state->queue_rows -= batch.rows;
      if (applied.ok()) {
        state->rows_applied += *applied;
        rows_applied_total_ += *applied;
      }
      // A failed apply still leaves the queue (the rows were validated at
      // accept time, so this is a server-side invariant breach, not a
      // client mistake); the count drop is visible as accepted != applied.
      // A closed session whose queue just drained is done for good: erase
      // it so a long-running service does not accumulate dead state.
      if (!state->open && state->queue.empty()) sessions_.erase(cursor);
      applying_session_.clear();
      worker_busy_ = false;
    }
    drain_cv_.notify_all();
    if (traced) {
      // Deferred slow-request check: entry on the HTTP thread to applied
      // here. OUTSIDE mu_ — the capture collects a snapshot whose net
      // enricher takes mu_.
      tracer->MaybeCaptureSlow(batch.trace,
                               tracer->NowNanos() - batch.entry_ns);
    }
  }
}

obs::HttpResponse WireService::ErrorResponse(const Status& status) {
  obs::HttpResponse resp;
  resp.status = HttpStatusFor(status.code());
  resp.content_type = "application/json";
  resp.body = cql::ErrorJson(status) + "\n";
  if (resp.status == 429) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(options_.retry_after_sec));
  }
  return resp;
}

WireService::SessionState* WireService::ResolveSession(
    const obs::HttpRequest& request, obs::HttpResponse* error) {
  const std::string* sid = request.FindHeader("x-chronicle-session");
  if (sid == nullptr) {
    *error = ErrorResponse(
        Status::Unauthenticated("missing X-Chronicle-Session header"));
    return nullptr;
  }
  auto it = sessions_.find(*sid);
  if (it == sessions_.end() || !it->second->open) {
    *error =
        ErrorResponse(Status::Unauthenticated("unknown session: " + *sid));
    return nullptr;
  }
  return it->second.get();
}

obs::HttpResponse WireService::Route(const obs::HttpRequest& request) {
  ReqTrace rt;
  obs::RequestTracer* tracer = session_->request_tracer();
  if (tracer != nullptr && tracer->enabled()) {
    rt.tracer = tracer;
    rt.entry_ns = tracer->NowNanos();
    // Accept a well-formed client traceparent verbatim (its sampled flag is
    // authoritative — a flagged client forces a full span tree even at
    // sample rate 0); mint fresh context otherwise.
    const std::string* tp = request.FindHeader("traceparent");
    if (tp == nullptr || !obs::ParseTraceparent(*tp, &rt.ctx)) {
      rt.ctx = tracer->Mint();
    }
    rt.root_span = tracer->NewSpanId();
    tracer->CountSample(rt.ctx.sampled);
  }

  obs::HttpResponse resp = RouteInner(request, &rt);

  int64_t total_ns = 0;
  if (rt.tracer != nullptr) {
    const int64_t handler_end = rt.tracer->NowNanos();
    total_ns = handler_end - rt.entry_ns;
    // Echo the propagated context on EVERY response (sampled or not) so
    // clients can correlate their logs with ours.
    resp.extra_headers.emplace_back(
        "traceparent", obs::FormatTraceparent(rt.ctx, rt.root_span));
    rt.tracer->CountRequest(rt.endpoint, resp.status >= 400, total_ns);
    if (rt.ctx.sampled) {
      // respond: handler return to the response leaving the router (the
      // socket write itself belongs to the HTTP server). Root emitted
      // last: a reader that sees the root sees a finished synchronous
      // tree (async append spans trail in after the 202 — see IngestLoop).
      rt.tracer->Emit(rt.ctx, rt.tracer->NewSpanId(), rt.root_span,
                      obs::ReqStage::kRespond, /*shard=*/-1, /*worker=*/0,
                      handler_end, rt.tracer->NowNanos() - handler_end,
                      resp.body.size());
      rt.tracer->Emit(rt.ctx, rt.root_span, rt.ctx.parent_span,
                      obs::ReqStage::kRequest, /*shard=*/-1, /*worker=*/0,
                      rt.entry_ns, total_ns,
                      static_cast<uint64_t>(resp.status));
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++requests_total_;
    if (resp.status >= 400) {
      ++http_errors_total_;
      if (resp.status == 401) ++rejected_auth_total_;
    }
  }
  // Outside mu_: the capture path collects a snapshot whose net enricher
  // takes mu_. A 202 append defers the check to the ingest worker.
  if (rt.tracer != nullptr && !rt.deferred_slow_check) {
    rt.tracer->MaybeCaptureSlow(rt.ctx, total_ns);
  }
  return resp;
}

obs::HttpResponse WireService::RouteInner(const obs::HttpRequest& request,
                                          ReqTrace* rt) {
  // Endpoint classification up front so even auth-rejected requests land
  // in the right RED bucket.
  if (request.path == "/v1/session" || request.path == "/v1/session/close") {
    rt->endpoint = obs::ReqEndpoint::kSession;
  } else if (request.path == "/v1/sql") {
    rt->endpoint = obs::ReqEndpoint::kSql;
  } else if (request.path == "/v1/append") {
    rt->endpoint = obs::ReqEndpoint::kAppend;
  } else if (request.path == "/v1/drain") {
    rt->endpoint = obs::ReqEndpoint::kDrain;
  } else if (request.path == "/healthz" || request.path == "/stats.json" ||
             request.path == "/metrics" || request.path == "/requests.json" ||
             request.path == "/trace.json" ||
             request.path == "/history.json") {
    rt->endpoint = obs::ReqEndpoint::kMonitor;
  }

  // Auth gates /v1/* only; the read-only monitoring catalog stays open
  // (loopback bind, same contract as StartMonitoring).
  const bool is_v1 = request.path.rfind("/v1/", 0) == 0;
  if (is_v1 && !options_.auth_token.empty()) {
    const std::string* auth = request.FindHeader("authorization");
    if (auth == nullptr || *auth != "Bearer " + options_.auth_token) {
      return ErrorResponse(
          Status::Unauthenticated("missing or invalid bearer token"));
    }
  }

  obs::HttpResponse resp;
  if (request.path == "/v1/session" && request.method == "POST") {
    resp = HandleOpenSession(request);
  } else if (request.path == "/v1/session/close" && request.method == "POST") {
    resp = HandleCloseSession(request);
  } else if (request.path == "/v1/sql" && request.method == "POST") {
    resp = HandleSql(request, rt);
  } else if (request.path == "/v1/append" && request.method == "POST") {
    resp = HandleAppend(request, rt);
  } else if (request.path == "/v1/drain" && request.method == "POST") {
    resp = HandleDrain(request);
  } else if (request.path == "/healthz") {
    resp.content_type = "application/json";
    resp.body = "{\"status\":\"ok\"}\n";
  } else if (request.path == "/stats.json") {
    resp.content_type = "application/json";
    resp.body = obs::RenderJson(session_->CollectStats());
  } else if (request.path == "/metrics") {
    resp.body = obs::RenderPrometheus(session_->CollectStats());
  } else if (request.path == "/requests.json") {
    resp.content_type = "application/json";
    obs::RequestTracer* tracer = session_->request_tracer();
    if (tracer != nullptr && tracer->enabled()) {
      resp.body = tracer->RenderRequestsJson();
    } else {
      resp.body =
          "{\"emitted\":0,\"capacity\":0,\"sample_rate\":0,\"traces\":[]}";
    }
  } else if (request.path == "/trace.json") {
    resp.content_type = "application/json";
    resp.body = RenderMergedTraceJson();
  } else if (request.path == "/history.json") {
    resp.content_type = "application/json";
    if (history_ != nullptr) {
      resp.body = obs::RenderHistoryJson(history_->Windows(),
                                         history_->total_samples(),
                                         history_->capacity());
    } else {
      resp.body = "{\"samples\":0,\"capacity\":0,\"windows\":[]}";
    }
  } else {
    resp = ErrorResponse(Status::NotFound("no route: " + request.path));
  }
  return resp;
}

std::string WireService::RenderMergedTraceJson() const {
  std::vector<obs::ShardTraceSnapshot> shards;
  if (session_->sharded()) {
    shard::ShardedDatabase* sharded = session_->sharded_db();
    for (size_t k = 0; k < sharded->num_shards(); ++k) {
      const obs::TraceRing* ring = sharded->engine(k).trace();
      if (ring == nullptr || !ring->enabled()) continue;
      obs::ShardTraceSnapshot snap;
      snap.shard = static_cast<int>(k);
      snap.emitted = ring->total_emitted();
      snap.capacity = ring->capacity();
      snap.spans = ring->Snapshot();
      shards.push_back(std::move(snap));
    }
  } else if (session_->db() != nullptr) {
    const obs::TraceRing* ring = session_->db()->trace();
    if (ring != nullptr && ring->enabled()) {
      obs::ShardTraceSnapshot snap;
      snap.shard = -1;
      snap.emitted = ring->total_emitted();
      snap.capacity = ring->capacity();
      snap.spans = ring->Snapshot();
      shards.push_back(std::move(snap));
    }
  }
  return obs::RenderTraceJson(shards);
}

obs::HttpResponse WireService::HandleOpenSession(
    const obs::HttpRequest& request) {
  (void)request;
  obs::HttpResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_open_sessions > 0) {
    size_t open = 0;
    for (const auto& [id, state] : sessions_) {
      if (state->open) ++open;
    }
    if (open >= options_.max_open_sessions) {
      return ErrorResponse(Status::ResourceExhausted(
          "too many open sessions (" +
          std::to_string(options_.max_open_sessions) +
          "); close one or retry later"));
    }
  }
  const std::string id = "s" + std::to_string(next_session_++);
  auto state = std::make_unique<SessionState>();
  state->id = id;
  sessions_[id] = std::move(state);
  ++sessions_opened_;
  resp.content_type = "application/json";
  resp.body = "{\"session\":\"" + id + "\",\"queue_rows_limit\":" +
              std::to_string(options_.session_queue_rows) +
              ",\"row_quota\":" + std::to_string(options_.session_row_quota) +
              "}\n";
  return resp;
}

obs::HttpResponse WireService::HandleCloseSession(
    const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  SessionState* state = ResolveSession(request, &resp);
  if (state == nullptr) return resp;
  state->open = false;  // queued rows still drain; new requests get 401
  resp.content_type = "application/json";
  resp.body = "{\"closed\":\"" + state->id + "\"}\n";
  // Erase now if nothing is pending; otherwise the ingest worker erases
  // it after the last queued batch applies (it may be mid-apply on this
  // session right now — the applying_session_ guard keeps `state` alive).
  if (state->queue.empty() && applying_session_ != state->id) {
    const std::string id = state->id;  // erase destroys state
    sessions_.erase(id);
  }
  return resp;
}

obs::HttpResponse WireService::HandleSql(const obs::HttpRequest& request,
                                         ReqTrace* rt) {
  obs::HttpResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    ++state->statements;
    ++sql_statements_total_;
  }
  const bool traced = rt->tracer != nullptr && rt->ctx.sampled;
  if (traced) {
    // parse: timed separately from execution. ExecuteScript re-parses,
    // but only on the sampled path — unsampled requests skip this block
    // entirely, which is what the trace-overhead gate measures.
    const int64_t parse_start = rt->tracer->NowNanos();
    Result<std::vector<cql::Statement>> stmts = cql::ParseScript(request.body);
    rt->tracer->Emit(rt->ctx, rt->tracer->NewSpanId(), rt->root_span,
                     obs::ReqStage::kParse, /*shard=*/-1, /*worker=*/0,
                     parse_start, rt->tracer->NowNanos() - parse_start,
                     stmts.ok() ? stmts->size() : 0);
    if (!stmts.ok()) return ErrorResponse(stmts.status());
  }
  const int64_t exec_start = traced ? rt->tracer->NowNanos() : 0;
  Result<cql::ExecResult> result = [&]() -> Result<cql::ExecResult> {
    if (!traced) return session_->ExecuteScript(request.body);
    // RequestScope makes the engine's maintain/wal_commit spans (emitted
    // on THIS thread — synchronous SQL drives maintenance inline) land
    // under this request's root.
    obs::RequestScope scope(rt->tracer, rt->ctx, rt->root_span, /*worker=*/0);
    return session_->ExecuteScript(request.body);
  }();
  if (traced) {
    rt->tracer->Emit(rt->ctx, rt->tracer->NewSpanId(), rt->root_span,
                     obs::ReqStage::kAppend, /*shard=*/-1, /*worker=*/0,
                     exec_start, rt->tracer->NowNanos() - exec_start,
                     result.ok() ? result->rows.size() : 0);
  }
  if (!result.ok()) return ErrorResponse(result.status());

  resp.content_type = "application/json";
  std::string& out = resp.body;
  out = "{\"message\":\"" + obs::JsonEscape(result->message) + "\"";
  if (result->schema.num_fields() > 0) {
    out += ",\"schema\":[";
    for (size_t i = 0; i < result->schema.num_fields(); ++i) {
      const Field& f = result->schema.field(i);
      if (i > 0) out += ",";
      out += "{\"name\":\"" + obs::JsonEscape(f.name) + "\",\"type\":\"" +
             DataTypeToString(f.type) + "\"}";
    }
    out += "],\"rows\":[";
    for (size_t r = 0; r < result->rows.size(); ++r) {
      if (r > 0) out += ",";
      out += "[";
      for (size_t c = 0; c < result->rows[r].size(); ++c) {
        if (c > 0) out += ",";
        JsonValue(&out, result->rows[r][c]);
      }
      out += "]";
    }
    out += "]";
  }
  out += "}\n";
  return resp;
}

obs::HttpResponse WireService::HandleAppend(const obs::HttpRequest& request,
                                            ReqTrace* rt) {
  obs::HttpResponse resp;
  const bool traced = rt->tracer != nullptr && rt->ctx.sampled;
  std::string chronicle;
  if (!QueryParam(request.query, "chronicle", &chronicle) ||
      chronicle.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing ?chronicle= parameter"));
  }
  if (request.body.empty()) {
    return ErrorResponse(Status::InvalidArgument("empty append body"));
  }

  // parse: schema resolution + TSV decode, the whole body-to-rows cost.
  const int64_t parse_start = traced ? rt->tracer->NowNanos() : 0;

  // Resolve the schema binding (cached per session after first use).
  Schema schema;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    auto bound = state->bindings.find(chronicle);
    if (bound != state->bindings.end()) schema = bound->second;
  }
  if (schema.num_fields() == 0) {
    Result<Schema> resolved = session_->ChronicleSchema(chronicle);
    if (!resolved.ok()) return ErrorResponse(resolved.status());
    schema = std::move(*resolved);
  }

  Result<std::vector<std::vector<Tuple>>> ticks =
      DecodeTsv(request.body, schema);
  if (traced) {
    rt->tracer->Emit(rt->ctx, rt->tracer->NewSpanId(), rt->root_span,
                     obs::ReqStage::kParse, /*shard=*/-1, /*worker=*/0,
                     parse_start, rt->tracer->NowNanos() - parse_start,
                     ticks.ok() ? ticks->size() : 0);
  }
  if (!ticks.ok()) return ErrorResponse(ticks.status());
  if (ticks->empty()) {
    return ErrorResponse(Status::InvalidArgument("append body has no rows"));
  }
  PendingBatch batch;
  batch.chronicle = chronicle;
  for (const std::vector<Tuple>& tick : *ticks) batch.rows += tick.size();
  batch.ticks = std::move(*ticks);
  if (batch.rows > options_.session_queue_rows) {
    // 429 means "retry later", but a body bigger than the whole queue can
    // never be accepted — answering 429 would livelock a Retry-After-
    // honoring client resending the same body forever.
    return ErrorResponse(Status::InvalidArgument(
        "append body of " + std::to_string(batch.rows) +
        " rows exceeds the session queue capacity (" +
        std::to_string(options_.session_queue_rows) +
        " rows); split it into smaller bodies"));
  }
  const uint64_t accepted_ticks = batch.ticks.size();
  const uint64_t accepted_rows = batch.rows;

  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    state->bindings.emplace(chronicle, schema);
    if (options_.session_row_quota > 0 &&
        state->rows_accepted + batch.rows > options_.session_row_quota) {
      ++state->rejected_quota;
      ++rejected_quota_total_;
      return ErrorResponse(Status::ResourceExhausted(
          "session row quota spent (" +
          std::to_string(options_.session_row_quota) + " rows)"));
    }
    if (state->queue_rows + batch.rows > options_.session_queue_rows) {
      ++state->rejected_backpressure;
      ++rejected_backpressure_total_;
      return ErrorResponse(Status::ResourceExhausted(
          "session ingest queue full (" + std::to_string(state->queue_rows) +
          "/" + std::to_string(options_.session_queue_rows) + " rows)"));
    }
    state->queue_rows += batch.rows;
    state->rows_accepted += batch.rows;
    append_batches_total_ += accepted_ticks;
    append_rows_total_ += accepted_rows;
    if (traced) {
      // Carry the context across the handoff; the ingest worker emits
      // queue_wait/append and runs the slow-request check at apply time
      // (the 202 below only covers the synchronous half).
      batch.trace = rt->ctx;
      batch.root_span = rt->root_span;
      batch.entry_ns = rt->entry_ns;
      batch.enqueue_ns = rt->tracer->NowNanos();
      rt->deferred_slow_check = true;
    }
    state->queue.push_back(std::move(batch));
    resp.status = 202;
    resp.content_type = "application/json";
    resp.body = "{\"accepted_ticks\":" + std::to_string(accepted_ticks) +
                ",\"accepted_rows\":" + std::to_string(accepted_rows) +
                ",\"queued_rows\":" + std::to_string(state->queue_rows) +
                "}\n";
  }
  ingest_cv_.notify_one();
  return resp;
}

obs::HttpResponse WireService::HandleDrain(const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
  }
  const Status status = Drain();
  if (!status.ok()) return ErrorResponse(status);
  std::lock_guard<std::mutex> lock(mu_);
  resp.content_type = "application/json";
  resp.body =
      "{\"drained\":true,\"rows_applied_total\":" +
      std::to_string(rows_applied_total_) + "}\n";
  return resp;
}

void WireService::FillNetStats(obs::StatsSnapshot* snap) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::NetStatsSnapshot& n = snap->net;
  n.attached = true;
  n.port = http_.port();
  n.requests_total = requests_total_;
  n.http_errors_total = http_errors_total_;
  n.sessions_opened = sessions_opened_;
  n.sql_statements_total = sql_statements_total_;
  n.append_batches_total = append_batches_total_;
  n.append_rows_total = append_rows_total_;
  n.rows_applied_total = rows_applied_total_;
  n.rejected_backpressure_total = rejected_backpressure_total_;
  n.rejected_quota_total = rejected_quota_total_;
  n.rejected_auth_total = rejected_auth_total_;
  n.active_sessions = 0;
  n.queue_rows = 0;
  for (const auto& [id, state] : sessions_) {
    if (state->open) ++n.active_sessions;
    n.queue_rows += state->queue_rows;
    obs::NetSessionSnapshot s;
    s.id = state->id;
    s.statements = state->statements;
    s.append_rows_accepted = state->rows_accepted;
    s.append_rows_applied = state->rows_applied;
    s.queue_rows = state->queue_rows;
    s.rejected_backpressure = state->rejected_backpressure;
    s.rejected_quota = state->rejected_quota;
    s.row_quota = options_.session_row_quota;
    n.sessions.push_back(std::move(s));
  }
}

}  // namespace net
}  // namespace chronicle
