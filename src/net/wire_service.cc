#include "net/wire_service.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/export.h"

namespace chronicle {
namespace net {

namespace {

// Renders one Value as a JSON literal.
void JsonValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    *out += "null";
  } else if (v.is_int64()) {
    *out += std::to_string(v.int64());
  } else if (v.is_double()) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.17g", v.dbl());
    *out += buf;
  } else {
    *out += "\"" + obs::JsonEscape(v.str()) + "\"";
  }
}

// First value of `key` in an application/x-www-form-urlencoded-ish query
// string ("chronicle=calls&x=1"). No percent-decoding: every expected
// value is an identifier.
bool QueryParam(const std::string& query, const std::string& key,
                std::string* value) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      *value = query.substr(eq + 1, amp - eq - 1);
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

// Parses one TSV cell against the column type. The empty cell and `\N`
// are NULL (the usual TSV conventions).
Result<Value> ParseCell(const std::string& cell, const Field& field) {
  if (cell.empty() || cell == "\\N") return Value();
  char* end = nullptr;
  switch (field.type) {
    case DataType::kInt64: {
      errno = 0;
      const long long v = strtoll(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("column " + field.name +
                                       ": not an INT64: '" + cell + "'");
      }
      if (errno == ERANGE) {
        // strtoll saturates to LLONG_MIN/MAX on overflow; ingesting the
        // saturated value would silently corrupt the data.
        return Status::InvalidArgument("column " + field.name +
                                       ": INT64 out of range: '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      errno = 0;
      const double v = strtod(cell.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("column " + field.name +
                                       ": not a DOUBLE: '" + cell + "'");
      }
      // ERANGE also fires on subnormal underflow, where strtod still
      // returns the nearest representable value — only overflow (±HUGE_VAL)
      // loses the magnitude.
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        return Status::InvalidArgument("column " + field.name +
                                       ": DOUBLE out of range: '" + cell +
                                       "'");
      }
      return Value(v);
    }
    case DataType::kString:
      return Value(cell);
  }
  return Status::Internal("unknown column type");
}

// Decodes a TSV body into ticks: one row per line, cells tab-separated in
// schema order, a blank line closes the current tick. Trailing newline
// optional; \r tolerated (curl on Windows).
Result<std::vector<std::vector<Tuple>>> DecodeTsv(const std::string& body,
                                                  const Schema& schema) {
  std::vector<std::vector<Tuple>> ticks;
  std::vector<Tuple> current;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos <= body.size()) {
    if (pos == body.size()) {
      if (line_no == 0) break;  // empty body handled by caller
    }
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      if (!current.empty()) ticks.push_back(std::move(current));
      current.clear();
      if (eol == body.size()) break;
      continue;
    }
    Tuple row;
    row.reserve(schema.num_fields());
    size_t cell_start = 0;
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      size_t tab = line.find('\t', cell_start);
      const bool last = (f + 1 == schema.num_fields());
      if (last) {
        if (tab != std::string::npos) {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) + ": too many columns (want " +
              std::to_string(schema.num_fields()) + ")");
        }
        tab = line.size();
      } else if (tab == std::string::npos) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) + ": too few columns (want " +
            std::to_string(schema.num_fields()) + ")");
      }
      Result<Value> v = ParseCell(line.substr(cell_start, tab - cell_start),
                                  schema.field(f));
      if (!v.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": " + v.status().message());
      }
      row.push_back(std::move(*v));
      cell_start = tab + 1;
    }
    current.push_back(std::move(row));
    if (eol == body.size()) break;
  }
  if (!current.empty()) ticks.push_back(std::move(current));
  return ticks;
}

}  // namespace

int HttpStatusFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kPlanError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kUnauthenticated:
      return 401;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kNotImplemented:
      return 501;
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return 500;
  }
  return 500;
}

WireService::WireService(cql::Session* session, NetOptions options)
    : session_(session), options_(std::move(options)) {}

WireService::~WireService() { Stop(); }

Status WireService::Start(uint16_t port) {
  if (running_) {
    return Status::FailedPrecondition("wire service already running");
  }
  obs::HttpServerOptions http_options;
  http_options.enable_post = true;
  http_options.keep_alive = true;
  http_options.max_body_bytes = options_.max_body_bytes;
  http_options.max_connections =
      options_.max_connections > 0 ? options_.max_connections : 8;
  CHRONICLE_RETURN_NOT_OK(http_.Start(
      port, [this](const obs::HttpRequest& req) { return Route(req); },
      http_options));
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_stop_ = false;
  }
  worker_ = std::thread([this] { IngestLoop(); });
  enricher_token_ = session_->AddStatsEnricher(
      [this](obs::StatsSnapshot* snap) { FillNetStats(snap); });
  running_ = true;
  return Status::OK();
}

void WireService::Stop() {
  if (!running_) return;
  // Unhook stats first so no snapshot races the teardown.
  session_->RemoveStatsEnricher(enricher_token_);
  http_.Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker_stop_ = true;
  }
  ingest_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  running_ = false;
}

Status WireService::Drain() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (ingest_paused_) {
      return Status::FailedPrecondition(
          "cannot drain while ingest is paused");
    }
    drain_cv_.wait(lock, [this] {
      if (worker_busy_) return false;
      for (const auto& [id, state] : sessions_) {
        if (!state->queue.empty()) return false;
      }
      return true;
    });
  }
  return session_->Flush();
}

void WireService::SetIngestPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_paused_ = paused;
  }
  ingest_cv_.notify_all();
}

// The worker: round-robin over sessions, one queued batch at a time, so a
// deep queue on one session cannot starve the others. The apply happens
// outside mu_ (HTTP threads keep accepting); Session::AppendRows itself
// serializes against every other statement driver (shell included).
void WireService::IngestLoop() {
  std::string cursor;  // last session served, for round-robin fairness
  while (true) {
    PendingBatch batch;
    SessionState* state = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ingest_cv_.wait(lock, [this] {
        if (worker_stop_) return true;
        if (ingest_paused_) return false;
        for (const auto& [id, s] : sessions_) {
          if (!s->queue.empty()) return true;
        }
        return false;
      });
      if (worker_stop_) return;
      // Pick the first non-empty queue strictly after the cursor, wrapping.
      auto it = sessions_.upper_bound(cursor);
      for (size_t i = 0; i <= sessions_.size(); ++i, ++it) {
        if (it == sessions_.end()) it = sessions_.begin();
        if (!it->second->queue.empty()) break;
      }
      if (it == sessions_.end() || it->second->queue.empty()) continue;
      state = it->second.get();
      cursor = it->first;
      batch = std::move(state->queue.front());
      state->queue.pop_front();
      worker_busy_ = true;
      applying_session_ = cursor;
    }

    Result<uint64_t> applied =
        session_->AppendRows(batch.chronicle, std::move(batch.ticks));

    {
      std::lock_guard<std::mutex> lock(mu_);
      state->queue_rows -= batch.rows;
      if (applied.ok()) {
        state->rows_applied += *applied;
        rows_applied_total_ += *applied;
      }
      // A failed apply still leaves the queue (the rows were validated at
      // accept time, so this is a server-side invariant breach, not a
      // client mistake); the count drop is visible as accepted != applied.
      // A closed session whose queue just drained is done for good: erase
      // it so a long-running service does not accumulate dead state.
      if (!state->open && state->queue.empty()) sessions_.erase(cursor);
      applying_session_.clear();
      worker_busy_ = false;
    }
    drain_cv_.notify_all();
  }
}

obs::HttpResponse WireService::ErrorResponse(const Status& status) {
  obs::HttpResponse resp;
  resp.status = HttpStatusFor(status.code());
  resp.content_type = "application/json";
  resp.body = cql::ErrorJson(status) + "\n";
  if (resp.status == 429) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(options_.retry_after_sec));
  }
  return resp;
}

WireService::SessionState* WireService::ResolveSession(
    const obs::HttpRequest& request, obs::HttpResponse* error) {
  const std::string* sid = request.FindHeader("x-chronicle-session");
  if (sid == nullptr) {
    *error = ErrorResponse(
        Status::Unauthenticated("missing X-Chronicle-Session header"));
    return nullptr;
  }
  auto it = sessions_.find(*sid);
  if (it == sessions_.end() || !it->second->open) {
    *error =
        ErrorResponse(Status::Unauthenticated("unknown session: " + *sid));
    return nullptr;
  }
  return it->second.get();
}

obs::HttpResponse WireService::Route(const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  // Auth gates /v1/* only; the read-only monitoring catalog stays open
  // (loopback bind, same contract as StartMonitoring).
  const bool is_v1 = request.path.rfind("/v1/", 0) == 0;
  if (is_v1 && !options_.auth_token.empty()) {
    const std::string* auth = request.FindHeader("authorization");
    if (auth == nullptr || *auth != "Bearer " + options_.auth_token) {
      resp = ErrorResponse(
          Status::Unauthenticated("missing or invalid bearer token"));
      std::lock_guard<std::mutex> lock(mu_);
      ++requests_total_;
      ++http_errors_total_;
      ++rejected_auth_total_;
      return resp;
    }
  }

  if (request.path == "/v1/session" && request.method == "POST") {
    resp = HandleOpenSession(request);
  } else if (request.path == "/v1/session/close" && request.method == "POST") {
    resp = HandleCloseSession(request);
  } else if (request.path == "/v1/sql" && request.method == "POST") {
    resp = HandleSql(request);
  } else if (request.path == "/v1/append" && request.method == "POST") {
    resp = HandleAppend(request);
  } else if (request.path == "/v1/drain" && request.method == "POST") {
    resp = HandleDrain(request);
  } else if (request.path == "/healthz") {
    resp.content_type = "application/json";
    resp.body = "{\"status\":\"ok\"}\n";
  } else if (request.path == "/stats.json") {
    resp.content_type = "application/json";
    resp.body = obs::RenderJson(session_->CollectStats());
  } else if (request.path == "/metrics") {
    resp.body = obs::RenderPrometheus(session_->CollectStats());
  } else {
    resp = ErrorResponse(Status::NotFound("no route: " + request.path));
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++requests_total_;
  if (resp.status >= 400) {
    ++http_errors_total_;
    if (resp.status == 401) ++rejected_auth_total_;
  }
  return resp;
}

obs::HttpResponse WireService::HandleOpenSession(
    const obs::HttpRequest& request) {
  (void)request;
  obs::HttpResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_open_sessions > 0) {
    size_t open = 0;
    for (const auto& [id, state] : sessions_) {
      if (state->open) ++open;
    }
    if (open >= options_.max_open_sessions) {
      return ErrorResponse(Status::ResourceExhausted(
          "too many open sessions (" +
          std::to_string(options_.max_open_sessions) +
          "); close one or retry later"));
    }
  }
  const std::string id = "s" + std::to_string(next_session_++);
  auto state = std::make_unique<SessionState>();
  state->id = id;
  sessions_[id] = std::move(state);
  ++sessions_opened_;
  resp.content_type = "application/json";
  resp.body = "{\"session\":\"" + id + "\",\"queue_rows_limit\":" +
              std::to_string(options_.session_queue_rows) +
              ",\"row_quota\":" + std::to_string(options_.session_row_quota) +
              "}\n";
  return resp;
}

obs::HttpResponse WireService::HandleCloseSession(
    const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  std::lock_guard<std::mutex> lock(mu_);
  SessionState* state = ResolveSession(request, &resp);
  if (state == nullptr) return resp;
  state->open = false;  // queued rows still drain; new requests get 401
  resp.content_type = "application/json";
  resp.body = "{\"closed\":\"" + state->id + "\"}\n";
  // Erase now if nothing is pending; otherwise the ingest worker erases
  // it after the last queued batch applies (it may be mid-apply on this
  // session right now — the applying_session_ guard keeps `state` alive).
  if (state->queue.empty() && applying_session_ != state->id) {
    const std::string id = state->id;  // erase destroys state
    sessions_.erase(id);
  }
  return resp;
}

obs::HttpResponse WireService::HandleSql(const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    ++state->statements;
    ++sql_statements_total_;
  }
  Result<cql::ExecResult> result = session_->ExecuteScript(request.body);
  if (!result.ok()) return ErrorResponse(result.status());

  resp.content_type = "application/json";
  std::string& out = resp.body;
  out = "{\"message\":\"" + obs::JsonEscape(result->message) + "\"";
  if (result->schema.num_fields() > 0) {
    out += ",\"schema\":[";
    for (size_t i = 0; i < result->schema.num_fields(); ++i) {
      const Field& f = result->schema.field(i);
      if (i > 0) out += ",";
      out += "{\"name\":\"" + obs::JsonEscape(f.name) + "\",\"type\":\"" +
             DataTypeToString(f.type) + "\"}";
    }
    out += "],\"rows\":[";
    for (size_t r = 0; r < result->rows.size(); ++r) {
      if (r > 0) out += ",";
      out += "[";
      for (size_t c = 0; c < result->rows[r].size(); ++c) {
        if (c > 0) out += ",";
        JsonValue(&out, result->rows[r][c]);
      }
      out += "]";
    }
    out += "]";
  }
  out += "}\n";
  return resp;
}

obs::HttpResponse WireService::HandleAppend(const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  std::string chronicle;
  if (!QueryParam(request.query, "chronicle", &chronicle) ||
      chronicle.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("missing ?chronicle= parameter"));
  }
  if (request.body.empty()) {
    return ErrorResponse(Status::InvalidArgument("empty append body"));
  }

  // Resolve the schema binding (cached per session after first use).
  Schema schema;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    auto bound = state->bindings.find(chronicle);
    if (bound != state->bindings.end()) schema = bound->second;
  }
  if (schema.num_fields() == 0) {
    Result<Schema> resolved = session_->ChronicleSchema(chronicle);
    if (!resolved.ok()) return ErrorResponse(resolved.status());
    schema = std::move(*resolved);
  }

  Result<std::vector<std::vector<Tuple>>> ticks =
      DecodeTsv(request.body, schema);
  if (!ticks.ok()) return ErrorResponse(ticks.status());
  if (ticks->empty()) {
    return ErrorResponse(Status::InvalidArgument("append body has no rows"));
  }
  PendingBatch batch;
  batch.chronicle = chronicle;
  for (const std::vector<Tuple>& tick : *ticks) batch.rows += tick.size();
  batch.ticks = std::move(*ticks);
  if (batch.rows > options_.session_queue_rows) {
    // 429 means "retry later", but a body bigger than the whole queue can
    // never be accepted — answering 429 would livelock a Retry-After-
    // honoring client resending the same body forever.
    return ErrorResponse(Status::InvalidArgument(
        "append body of " + std::to_string(batch.rows) +
        " rows exceeds the session queue capacity (" +
        std::to_string(options_.session_queue_rows) +
        " rows); split it into smaller bodies"));
  }
  const uint64_t accepted_ticks = batch.ticks.size();
  const uint64_t accepted_rows = batch.rows;

  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
    state->bindings.emplace(chronicle, schema);
    if (options_.session_row_quota > 0 &&
        state->rows_accepted + batch.rows > options_.session_row_quota) {
      ++state->rejected_quota;
      ++rejected_quota_total_;
      return ErrorResponse(Status::ResourceExhausted(
          "session row quota spent (" +
          std::to_string(options_.session_row_quota) + " rows)"));
    }
    if (state->queue_rows + batch.rows > options_.session_queue_rows) {
      ++state->rejected_backpressure;
      ++rejected_backpressure_total_;
      return ErrorResponse(Status::ResourceExhausted(
          "session ingest queue full (" + std::to_string(state->queue_rows) +
          "/" + std::to_string(options_.session_queue_rows) + " rows)"));
    }
    state->queue_rows += batch.rows;
    state->rows_accepted += batch.rows;
    append_batches_total_ += accepted_ticks;
    append_rows_total_ += accepted_rows;
    state->queue.push_back(std::move(batch));
    resp.status = 202;
    resp.content_type = "application/json";
    resp.body = "{\"accepted_ticks\":" + std::to_string(accepted_ticks) +
                ",\"accepted_rows\":" + std::to_string(accepted_rows) +
                ",\"queued_rows\":" + std::to_string(state->queue_rows) +
                "}\n";
  }
  ingest_cv_.notify_one();
  return resp;
}

obs::HttpResponse WireService::HandleDrain(const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState* state = ResolveSession(request, &resp);
    if (state == nullptr) return resp;
  }
  const Status status = Drain();
  if (!status.ok()) return ErrorResponse(status);
  std::lock_guard<std::mutex> lock(mu_);
  resp.content_type = "application/json";
  resp.body =
      "{\"drained\":true,\"rows_applied_total\":" +
      std::to_string(rows_applied_total_) + "}\n";
  return resp;
}

void WireService::FillNetStats(obs::StatsSnapshot* snap) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::NetStatsSnapshot& n = snap->net;
  n.attached = true;
  n.port = http_.port();
  n.requests_total = requests_total_;
  n.http_errors_total = http_errors_total_;
  n.sessions_opened = sessions_opened_;
  n.sql_statements_total = sql_statements_total_;
  n.append_batches_total = append_batches_total_;
  n.append_rows_total = append_rows_total_;
  n.rows_applied_total = rows_applied_total_;
  n.rejected_backpressure_total = rejected_backpressure_total_;
  n.rejected_quota_total = rejected_quota_total_;
  n.rejected_auth_total = rejected_auth_total_;
  n.active_sessions = 0;
  n.queue_rows = 0;
  for (const auto& [id, state] : sessions_) {
    if (state->open) ++n.active_sessions;
    n.queue_rows += state->queue_rows;
    obs::NetSessionSnapshot s;
    s.id = state->id;
    s.statements = state->statements;
    s.append_rows_accepted = state->rows_accepted;
    s.append_rows_applied = state->rows_applied;
    s.queue_rows = state->queue_rows;
    s.rejected_backpressure = state->rejected_backpressure;
    s.rejected_quota = state->rejected_quota;
    s.row_quota = options_.session_row_quota;
    n.sessions.push_back(std::move(s));
  }
}

}  // namespace net
}  // namespace chronicle
