#include "net/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace chronicle {
namespace net {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

HttpClient::HttpClient(uint16_t port, int timeout_sec)
    : port_(port), timeout_sec_(timeout_sec) {}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  buf_.clear();
}

Status HttpClient::Connect() {
  Disconnect();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  timeval timeout{timeout_sec_, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  // Batched appends are latency-sensitive request/response pairs.
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = strerror(errno);
    close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port_) +
                            ": " + err);
  }
  fd_ = fd;
  return Status::OK();
}

Status HttpClient::SendAll(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<HttpClientResponse> HttpClient::ReadResponse() {
  // Accumulate the header block.
  size_t head_end;
  while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + strerror(errno));
    }
    if (n == 0) return Status::Internal("connection closed mid-response");
    buf_.append(chunk, static_cast<size_t>(n));
  }
  const std::string head = buf_.substr(0, head_end);
  buf_.erase(0, head_end + 4);

  HttpClientResponse resp;
  if (head.rfind("HTTP/1.1 ", 0) != 0 && head.rfind("HTTP/1.0 ", 0) != 0) {
    return Status::Internal("malformed status line: " + head.substr(0, 40));
  }
  resp.status = atoi(head.c_str() + strlen("HTTP/1.1 "));

  // Interim 100 Continue: skip it and read the real response.
  if (resp.status == 100) return ReadResponse();

  size_t content_length = 0;
  size_t pos = head.find('\n');
  pos = (pos == std::string::npos) ? head.size() : pos + 1;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = Trim(head.substr(pos, eol - pos));
    pos = eol + 1;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = ToLower(Trim(line.substr(0, colon)));
    const std::string value = Trim(line.substr(colon + 1));
    if (name == "content-length") {
      content_length = static_cast<size_t>(strtoull(value.c_str(), nullptr, 10));
    }
    resp.headers.emplace_back(name, value);
  }

  while (buf_.size() < content_length) {
    char chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv body: ") + strerror(errno));
    }
    if (n == 0) return Status::Internal("connection closed mid-body");
    buf_.append(chunk, static_cast<size_t>(n));
  }
  resp.body = buf_.substr(0, content_length);
  buf_.erase(0, content_length);

  // Honor a server-side close so the next request reconnects cleanly.
  if (const std::string* conn = resp.FindHeader("connection")) {
    if (ToLower(*conn) == "close") Disconnect();
  }
  return resp;
}

Result<HttpClientResponse> HttpClient::RoundTrip(
    const std::string& method, const std::string& path,
    const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string req = method + " " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : headers) {
    req += name + ": " + value + "\r\n";
  }
  if (method == "POST") {
    req += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  req += "\r\n";
  if (method == "POST") req += body;

  // Reconnect-once: a keep-alive connection the server idled out looks
  // like an immediate EOF/EPIPE on the next round trip.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) CHRONICLE_RETURN_NOT_OK(Connect());
    Status sent = SendAll(req);
    if (sent.ok()) {
      Result<HttpClientResponse> resp = ReadResponse();
      if (resp.ok() || attempt == 1) return resp;
    } else if (attempt == 1) {
      return sent;
    }
    Disconnect();
  }
  return Status::Internal("unreachable");
}

Result<HttpClientResponse> HttpClient::Get(
    const std::string& path,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return RoundTrip("GET", path, "", headers);
}

Result<HttpClientResponse> HttpClient::Post(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  return RoundTrip("POST", path, body, headers);
}

}  // namespace net
}  // namespace chronicle
