// Tests for §2.2 detail queries over the retained chronicle window
// (ChronicleDatabase::QueryRecentWindow / NaiveEngine ScanScope).

#include <gtest/gtest.h>

#include "baseline/naive_engine.h"
#include "db/database.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64}, {"minutes", DataType::kInt64}});
}

Tuple Call(int64_t caller, int64_t minutes) {
  return Tuple{Value(caller), Value(minutes)};
}

TEST(WindowQueryTest, SeesOnlyTheRetainedSuffix) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(3)).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(db.Append("calls", {Call(i, i * 10)}).ok());
  }
  CaExprPtr scan = db.ScanChronicle("calls").value();
  std::vector<ChronicleRow> rows = db.QueryRecentWindow(*scan).value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].values[0], Value(7));
  EXPECT_EQ(rows[2].values[0], Value(9));
}

TEST(WindowQueryTest, SupportsSelectionAndSummary) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(5)).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Append("calls", {Call(i % 2, 10)}).ok());
  }
  CaExprPtr plan =
      CaExpr::Select(db.ScanChronicle("calls").value(),
                     Eq(Col("caller"), Lit(Value(int64_t{1}))))
          .value();
  // The last 5 records are callers 15..19 -> caller%2==1 for 15,17,19.
  EXPECT_EQ(db.QueryRecentWindow(*plan).value().size(), 3u);

  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "m")})
                         .value();
  std::vector<Tuple> summary = db.QueryRecentWindowSummary(*plan, spec).value();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0], (Tuple{Value(1), Value(30)}));
}

TEST(WindowQueryTest, EmptyForStreamOnlyChronicles) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None()).ok());
  ASSERT_TRUE(db.Append("calls", {Call(1, 5)}).ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  EXPECT_TRUE(db.QueryRecentWindow(*scan).value().empty());
}

TEST(WindowQueryTest, FullRetentionMatchesOracle) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallSchema(), RetentionPolicy::All()).ok());
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.Append("calls", {Call(i, i)}).ok());
  }
  CaExprPtr scan = db.ScanChronicle("calls").value();
  NaiveEngine oracle(&db.group());
  EXPECT_EQ(db.QueryRecentWindow(*scan).value().size(),
            oracle.Evaluate(*scan).value().size());
}

TEST(WindowQueryTest, WindowScopeVsFullScopePrecondition) {
  // The same plan over a partially-retained chronicle: window scope works,
  // full scope refuses (the relational baseline needs everything).
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(2))
          .value();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(group.Append(id, {Call(i, i)}).ok());
  }
  CaExprPtr scan = CaExpr::Scan(*group.GetChronicle(id).value()).value();

  NaiveEngine window_engine(&group, nullptr, ScanScope::kRetainedWindow);
  EXPECT_EQ(window_engine.Evaluate(*scan).value().size(), 2u);

  NaiveEngine full_engine(&group, nullptr, ScanScope::kFullChronicle);
  EXPECT_TRUE(full_engine.Evaluate(*scan).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace chronicle
