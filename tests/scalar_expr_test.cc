#include "algebra/scalar_expr.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema TestSchema() {
  return Schema({{"a", DataType::kInt64},
                 {"b", DataType::kDouble},
                 {"s", DataType::kString}});
}

Value EvalOn(const ScalarExprPtr& expr, const Tuple& row, SeqNum sn = 0,
             int64_t chronon = 0) {
  EvalRow eval{&row, sn, chronon};
  Result<Value> v = expr->Eval(eval);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value();
}

TEST(ScalarExprTest, ColumnNeedsBinding) {
  ScalarExprPtr expr = Col("a");
  Tuple row{Value(1), Value(2.0), Value("x")};
  EvalRow eval{&row, 0, 0};
  EXPECT_TRUE(expr->Eval(eval).status().IsFailedPrecondition());
  ASSERT_TRUE(expr->Bind(TestSchema()).ok());
  EXPECT_EQ(EvalOn(expr, row), Value(1));
}

TEST(ScalarExprTest, BindUnknownColumnFails) {
  ScalarExprPtr expr = Col("missing");
  EXPECT_TRUE(expr->Bind(TestSchema()).IsNotFound());
}

TEST(ScalarExprTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(EvalOn(Lit(Value(9)), Tuple{}), Value(9));
  EXPECT_EQ(EvalOn(Lit(Value("hi")), Tuple{}), Value("hi"));
}

TEST(ScalarExprTest, SeqNumAndChrononRefs) {
  EXPECT_EQ(EvalOn(ScalarExpr::SeqNumRef(), Tuple{}, 42, 0), Value(42));
  EXPECT_EQ(EvalOn(ScalarExpr::ChrononRef(), Tuple{}, 0, 777), Value(777));
}

TEST(ScalarExprTest, AllComparisonOps) {
  Tuple row;
  auto check = [&](CompareOp op, int64_t a, int64_t b, bool expected) {
    ScalarExprPtr e = ScalarExpr::Compare(op, Lit(Value(a)), Lit(Value(b)));
    EXPECT_EQ(EvalOn(e, row), Value(expected ? 1 : 0))
        << a << " " << CompareOpToString(op) << " " << b;
  };
  check(CompareOp::kEq, 2, 2, true);
  check(CompareOp::kEq, 2, 3, false);
  check(CompareOp::kNe, 2, 3, true);
  check(CompareOp::kLt, 2, 3, true);
  check(CompareOp::kLt, 3, 3, false);
  check(CompareOp::kLe, 3, 3, true);
  check(CompareOp::kGt, 4, 3, true);
  check(CompareOp::kGe, 3, 3, true);
  check(CompareOp::kGe, 2, 3, false);
}

TEST(ScalarExprTest, ComparisonWithNullIsFalse) {
  ScalarExprPtr e = Eq(Lit(Value()), Lit(Value()));
  EXPECT_EQ(EvalOn(e, Tuple{}), Value(int64_t{0}));
  ScalarExprPtr lt = Lt(Lit(Value()), Lit(Value(5)));
  EXPECT_EQ(EvalOn(lt, Tuple{}), Value(int64_t{0}));
}

TEST(ScalarExprTest, BooleanConnectives) {
  auto t = [] { return Lit(Value(1)); };
  auto f = [] { return Lit(Value(int64_t{0})); };
  EXPECT_EQ(EvalOn(ScalarExpr::And(t(), t()), Tuple{}), Value(1));
  EXPECT_EQ(EvalOn(ScalarExpr::And(t(), f()), Tuple{}), Value(int64_t{0}));
  EXPECT_EQ(EvalOn(ScalarExpr::Or(f(), t()), Tuple{}), Value(1));
  EXPECT_EQ(EvalOn(ScalarExpr::Or(f(), f()), Tuple{}), Value(int64_t{0}));
  EXPECT_EQ(EvalOn(ScalarExpr::Not(f()), Tuple{}), Value(1));
  EXPECT_EQ(EvalOn(ScalarExpr::Not(t()), Tuple{}), Value(int64_t{0}));
}

TEST(ScalarExprTest, ShortCircuitSkipsRightSide) {
  // Right side would fail (string as boolean); AND false short-circuits.
  ScalarExprPtr e =
      ScalarExpr::And(Lit(Value(int64_t{0})), Lit(Value("boom")));
  EXPECT_EQ(EvalOn(e, Tuple{}), Value(int64_t{0}));
  ScalarExprPtr o = ScalarExpr::Or(Lit(Value(1)), Lit(Value("boom")));
  EXPECT_EQ(EvalOn(o, Tuple{}), Value(1));
}

TEST(ScalarExprTest, IntegerArithmeticStaysExact) {
  ScalarExprPtr e = ScalarExpr::Arith(
      ArithOp::kAdd, Lit(Value(int64_t{1} << 60)), Lit(Value(1)));
  Value v = EvalOn(e, Tuple{});
  ASSERT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), (int64_t{1} << 60) + 1);
}

TEST(ScalarExprTest, MixedArithmeticWidensToDouble) {
  ScalarExprPtr e = ScalarExpr::Arith(ArithOp::kMul, Lit(Value(3)), Lit(Value(0.5)));
  Value v = EvalOn(e, Tuple{});
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.dbl(), 1.5);
}

TEST(ScalarExprTest, DivisionAlwaysDouble) {
  Value v = EvalOn(ScalarExpr::Arith(ArithOp::kDiv, Lit(Value(7)), Lit(Value(2))),
                   Tuple{});
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.dbl(), 3.5);
}

TEST(ScalarExprTest, DivisionByZeroIsError) {
  ScalarExprPtr e =
      ScalarExpr::Arith(ArithOp::kDiv, Lit(Value(1)), Lit(Value(int64_t{0})));
  EvalRow eval{nullptr, 0, 0};
  Tuple empty;
  eval.values = &empty;
  EXPECT_FALSE(e->Eval(eval).ok());
}

TEST(ScalarExprTest, NullPropagatesThroughArithmetic) {
  ScalarExprPtr e = ScalarExpr::Arith(ArithOp::kAdd, Lit(Value()), Lit(Value(1)));
  EXPECT_TRUE(EvalOn(e, Tuple{}).is_null());
}

TEST(ScalarExprTest, CaseSelectsFirstMatchingBranch) {
  // CASE WHEN a >= 10 THEN "big" WHEN a >= 5 THEN "mid" ELSE "small" END
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches;
  branches.emplace_back(Ge(Col("a"), Lit(Value(10))), Lit(Value("big")));
  branches.emplace_back(Ge(Col("a"), Lit(Value(5))), Lit(Value("mid")));
  ScalarExprPtr e = ScalarExpr::Case(std::move(branches), Lit(Value("small")));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  EXPECT_EQ(EvalOn(e, Tuple{Value(12), Value(0.0), Value("")}), Value("big"));
  EXPECT_EQ(EvalOn(e, Tuple{Value(7), Value(0.0), Value("")}), Value("mid"));
  EXPECT_EQ(EvalOn(e, Tuple{Value(1), Value(0.0), Value("")}), Value("small"));
}

TEST(ScalarExprTest, EvalBoolCoercions) {
  Tuple row;
  EvalRow eval{&row, 0, 0};
  EXPECT_TRUE(Lit(Value(3))->EvalBool(eval).value());
  EXPECT_FALSE(Lit(Value(int64_t{0}))->EvalBool(eval).value());
  EXPECT_FALSE(Lit(Value())->EvalBool(eval).value());
  EXPECT_TRUE(Lit(Value(0.5))->EvalBool(eval).value());
  EXPECT_FALSE(Lit(Value("x"))->EvalBool(eval).ok());
}

TEST(ScalarExprTest, CloneIsDeepAndPreservesBinding) {
  ScalarExprPtr e = ScalarExpr::And(Gt(Col("a"), Lit(Value(5))),
                                    Eq(Col("s"), Lit(Value("x"))));
  ASSERT_TRUE(e->Bind(TestSchema()).ok());
  ScalarExprPtr clone = e->Clone();
  Tuple row{Value(6), Value(0.0), Value("x")};
  EXPECT_EQ(EvalOn(clone, row), Value(1));
  EXPECT_EQ(clone->ToString(), e->ToString());
}

TEST(ScalarExprTest, ToStringRendering) {
  ScalarExprPtr e = ScalarExpr::Or(Gt(Col("a"), Lit(Value(5))),
                                   Le(Col("b"), Lit(Value(1.5))));
  EXPECT_EQ(e->ToString(), "((a > 5) OR (b <= 1.5))");
  EXPECT_EQ(ScalarExpr::SeqNumRef()->ToString(), "$sn");
}

}  // namespace
}  // namespace chronicle
