#include "checkpoint/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "baseline/naive_engine.h"
#include "checkpoint/serde.h"
#include "common/random.h"
#include "workload/call_records.h"

namespace chronicle {
namespace checkpoint {
namespace {

// --- serde ---

TEST(SerdeTest, PrimitiveRoundTrip) {
  Writer w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(uint64_t{1} << 60);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteString("hello");
  w.WriteString("");

  Reader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 7);
  EXPECT_EQ(r.ReadU32().value(), 123456u);
  EXPECT_EQ(r.ReadU64().value(), uint64_t{1} << 60);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadDouble().value(), 3.25);
  EXPECT_EQ(r.ReadString().value(), "hello");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ValueAndTupleRoundTrip) {
  Writer w;
  Tuple original{Value(), Value(-5), Value(2.5), Value("text")};
  w.WriteTuple(original);
  Reader r(w.buffer());
  Tuple decoded = r.ReadTuple().value();
  EXPECT_TRUE(TupleEquals(original, decoded));
}

TEST(SerdeTest, TruncationDetected) {
  Writer w;
  w.WriteU64(5);
  std::string cut = w.buffer().substr(0, 3);
  Reader r(cut);
  EXPECT_TRUE(r.ReadU64().status().IsParseError());
}

TEST(SerdeTest, BadValueTagDetected) {
  std::string bad(1, static_cast<char>(99));
  Reader r(bad);
  EXPECT_TRUE(r.ReadValue().status().IsParseError());
}

// --- full database round-trip ---

Schema CallSchema() { return CallRecordGenerator::RecordSchema(); }

// Applies the reference DDL to a database (the "application code" side of
// the restore protocol).
void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema(),
                                  RetentionPolicy::Window(64))
                  .ok());
  ASSERT_TRUE(db->CreateRelation("cust", CallRecordGenerator::CustomerSchema(),
                                 "acct")
                  .ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  SummarySpec by_caller =
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "total"),
                            AggSpec::Count("n"), AggSpec::Min("minutes", "lo"),
                            AggSpec::Max("minutes", "hi"),
                            AggSpec::Avg("minutes", "mean")})
          .value();
  ASSERT_TRUE(db->CreateView("minutes", scan, by_caller).ok());
  SummarySpec regions =
      SummarySpec::DistinctProjection(scan->schema(), {"region"}).value();
  ASSERT_TRUE(db->CreateView("regions", scan, regions).ok());

  auto monthly = PeriodicCalendar::Make(0, 30).value();
  SummarySpec monthly_spec =
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m")})
          .value();
  ASSERT_TRUE(db->CreatePeriodicView("monthly", scan, monthly_spec, monthly).ok());
  ASSERT_TRUE(db->CreateSlidingView("window", scan, monthly_spec, 0, 5, 6).ok());
}

void Stream(ChronicleDatabase* db, CallRecordGenerator* gen, int ticks,
            Chronon* chronon) {
  for (int i = 0; i < ticks; ++i) {
    ASSERT_TRUE(db->Append("calls", gen->NextBatch(2), ++*chronon).ok());
  }
}

TEST(CheckpointTest, RoundTripPreservesEverything) {
  CallRecordOptions options;
  options.num_accounts = 24;
  CallRecordGenerator gen(options);

  ChronicleDatabase original;
  ApplyDdl(&original);
  for (const Tuple& row : gen.CustomerRows()) {
    ASSERT_TRUE(original.InsertInto("cust", row).ok());
  }
  Chronon chronon = 0;
  Stream(&original, &gen, 200, &chronon);

  std::string image = SaveDatabase(original).value();
  ChronicleDatabase restored;
  ApplyDdl(&restored);
  ASSERT_TRUE(RestoreDatabase(image, &restored).ok());

  // Views identical.
  EXPECT_EQ(restored.ScanView("minutes").value(),
            original.ScanView("minutes").value());
  EXPECT_EQ(restored.ScanView("regions").value(),
            original.ScanView("regions").value());
  // Counters identical.
  EXPECT_EQ(restored.group().last_sn(), original.group().last_sn());
  EXPECT_EQ(restored.group().last_chronon(), original.group().last_chronon());
  EXPECT_EQ(restored.appends_processed(), original.appends_processed());
  // Retained window identical.
  const Chronicle* oc = original.group().GetChronicle(0).value();
  const Chronicle* rc = restored.group().GetChronicle(0).value();
  EXPECT_EQ(oc->total_appended(), rc->total_appended());
  ASSERT_EQ(oc->retained().size(), rc->retained().size());
  for (size_t i = 0; i < oc->retained().size(); ++i) {
    EXPECT_EQ(oc->retained()[i], rc->retained()[i]);
  }
  // Relation identical.
  EXPECT_EQ(original.GetRelation("cust").value()->size(),
            restored.GetRelation("cust").value()->size());
  // Periodic instances identical.
  const PeriodicViewSet* om = original.GetPeriodicView("monthly").value();
  const PeriodicViewSet* rm = restored.GetPeriodicView("monthly").value();
  EXPECT_EQ(om->num_active_instances(), rm->num_active_instances());
  om->VisitInstances([&](int64_t index, const PersistentView& instance) {
    instance.VisitGroups([&](const Tuple& key, const std::vector<AggState>&,
                             int64_t) {
      EXPECT_EQ(rm->Lookup(index, key).value(),
                om->Lookup(index, key).value());
    });
  });
  // Sliding window identical.
  const SlidingWindowView* ow = original.GetSlidingView("window").value();
  const SlidingWindowView* rw = restored.GetSlidingView("window").value();
  EXPECT_EQ(ow->current_pane(), rw->current_pane());
  std::vector<Tuple> ow_rows, rw_rows;
  ASSERT_TRUE(ow->ScanWindow([&](const Tuple& r) { ow_rows.push_back(r); }).ok());
  ASSERT_TRUE(rw->ScanWindow([&](const Tuple& r) { rw_rows.push_back(r); }).ok());
  SortTuples(&ow_rows);
  SortTuples(&rw_rows);
  EXPECT_EQ(ow_rows, rw_rows);
}

TEST(CheckpointTest, RestoredDatabaseContinuesExactly) {
  // The real recovery property: after restore, continued streaming yields
  // the same views as a database that never crashed.
  CallRecordOptions options;
  options.num_accounts = 16;
  options.seed = 77;

  ChronicleDatabase uninterrupted;
  ApplyDdl(&uninterrupted);
  CallRecordGenerator gen_a(options);
  Chronon chronon_a = 0;
  Stream(&uninterrupted, &gen_a, 150, &chronon_a);

  // The "crashing" instance: checkpoint at tick 100, restore, continue.
  ChronicleDatabase before_crash;
  ApplyDdl(&before_crash);
  CallRecordGenerator gen_b(options);
  Chronon chronon_b = 0;
  Stream(&before_crash, &gen_b, 100, &chronon_b);
  std::string image = SaveDatabase(before_crash).value();

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  ASSERT_TRUE(RestoreDatabase(image, &recovered).ok());
  Stream(&recovered, &gen_b, 50, &chronon_b);  // same stream continues

  EXPECT_EQ(recovered.ScanView("minutes").value(),
            uninterrupted.ScanView("minutes").value());
  EXPECT_EQ(recovered.ScanView("regions").value(),
            uninterrupted.ScanView("regions").value());
  EXPECT_EQ(recovered.group().last_sn(), uninterrupted.group().last_sn());

  const SlidingWindowView* uw = uninterrupted.GetSlidingView("window").value();
  const SlidingWindowView* rw = recovered.GetSlidingView("window").value();
  std::vector<Tuple> u_rows, r_rows;
  ASSERT_TRUE(uw->ScanWindow([&](const Tuple& r) { u_rows.push_back(r); }).ok());
  ASSERT_TRUE(rw->ScanWindow([&](const Tuple& r) { r_rows.push_back(r); }).ok());
  SortTuples(&u_rows);
  SortTuples(&r_rows);
  EXPECT_EQ(u_rows, r_rows);
}

TEST(CheckpointTest, RestoreIntoUsedDatabaseRejected) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  Stream(&db, &gen, 5, &chronon);
  std::string image = SaveDatabase(db).value();
  // db itself already processed appends.
  EXPECT_TRUE(RestoreDatabase(image, &db).IsFailedPrecondition());
}

TEST(CheckpointTest, RestoreWithMissingDdlRejected) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  Stream(&db, &gen, 5, &chronon);
  std::string image = SaveDatabase(db).value();

  ChronicleDatabase missing_everything;  // DDL not applied
  EXPECT_FALSE(RestoreDatabase(image, &missing_everything).ok());
}

TEST(CheckpointTest, CorruptImagesRejected) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  std::string image = SaveDatabase(db).value();

  ChronicleDatabase target;
  ApplyDdl(&target);
  EXPECT_TRUE(RestoreDatabase("garbage", &target).IsParseError());
  std::string truncated = image.substr(0, image.size() / 2);
  EXPECT_FALSE(RestoreDatabase(truncated, &target).ok());
  std::string trailing = image + "extra";
  EXPECT_FALSE(RestoreDatabase(trailing, &target).ok());
}

TEST(CheckpointTest, FileRoundTrip) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  CallRecordGenerator gen(CallRecordOptions{});
  Chronon chronon = 0;
  Stream(&db, &gen, 30, &chronon);

  const std::string path = "/tmp/chronicle_checkpoint_test.ckpt";
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  ChronicleDatabase restored;
  ApplyDdl(&restored);
  ASSERT_TRUE(RestoreDatabaseFromFile(path, &restored).ok());
  EXPECT_EQ(restored.ScanView("minutes").value(),
            db.ScanView("minutes").value());
  std::remove(path.c_str());

  ChronicleDatabase other;
  ApplyDdl(&other);
  EXPECT_TRUE(
      RestoreDatabaseFromFile("/tmp/does_not_exist.ckpt", &other).IsNotFound());
}

}  // namespace
}  // namespace checkpoint
}  // namespace chronicle
