// Per-shard durability: a ShardedDatabase with ShardingOptions::wal_dir
// writes one WAL segment stream per shard. After a crash (dropping the
// router), a fresh router replaying DDL -> RecoverFromWal -> AttachWals
// must converge to the exact state of an uncrashed run — merged view
// reads, per-shard engine counters, and continued ingest after recovery.
// A tiered-store variant checks the per-shard <data_dir>/shard-<k>
// directory split survives the same cycle.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "shard/sharded_db.h"

namespace chronicle {
namespace {

namespace fs = std::filesystem;

using shard::ShardedDatabase;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_shard_recovery_" + name + "_" +
               std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

void ApplyDdl(ShardedDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  ASSERT_TRUE(db->CreateRelation("cust",
                                 Schema({{"acct", DataType::kInt64},
                                         {"state", DataType::kString}}),
                                 "acct")
                  .ok());
  ASSERT_TRUE(
      db->CreateView("minutes",
                     [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
                     SummarySpec::GroupBy(CallSchema(), {"caller"},
                                          {AggSpec::Sum("minutes", "m"),
                                           AggSpec::Count("n")})
                         .value())
          .ok());
  ASSERT_TRUE(
      db->CreateView("regions",
                     [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
                     SummarySpec::GroupBy(CallSchema(), {"region"},
                                          {AggSpec::Sum("minutes", "m"),
                                           AggSpec::Max("minutes", "hi")})
                         .value())
          .ok());
}

// Same mutation for the same step index on any router, so crashed and
// uncrashed runs replay tick-for-tick.
void ApplyStep(ShardedDatabase* db, int step) {
  if (step % 7 == 3) {
    ASSERT_TRUE(
        db->InsertInto("cust", Tuple{Value(step), Value("NJ")}).ok());
    return;
  }
  std::vector<Tuple> batch;
  for (int i = 0; i <= step % 4; ++i) {
    batch.push_back(Tuple{Value((step * 5 + i * 3) % 13),
                          Value(i % 2 ? "NJ" : "CA"),
                          Value((step + i) % 9)});
  }
  auto r = db->Append("calls", std::move(batch));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

DatabaseOptions ShardedOptions(size_t num_shards, const std::string& wal_dir,
                               const std::string& data_dir = "") {
  DatabaseOptions options;
  options.sharding.num_shards = num_shards;
  options.sharding.wal_dir = wal_dir;
  if (!data_dir.empty()) {
    options.storage.data_dir = data_dir;
    options.storage.hot_rows = 4;  // tiny hot window: force spills
    options.storage.segment_rows = 4;
  }
  return options;
}

// Runs `steps` with per-shard WALs attached, then drops everything — the
// crash. Only the directories survive.
void RunAndCrash(const DatabaseOptions& options, int steps) {
  auto db = ShardedDatabase::Open(options).value();
  ApplyDdl(db.get());
  ASSERT_TRUE(db->AttachWals().ok());
  for (int step = 0; step < steps; ++step) ApplyStep(db.get(), step);
  ASSERT_TRUE(db->CloseWals().ok());
}

// The uncrashed reference: same options minus durability.
std::unique_ptr<ShardedDatabase> ReferenceAfter(size_t num_shards, int steps) {
  DatabaseOptions options;
  options.sharding.num_shards = num_shards;
  auto db = ShardedDatabase::Open(options).value();
  ApplyDdl(db.get());
  for (int step = 0; step < steps; ++step) ApplyStep(db.get(), step);
  return db;
}

TEST(ShardRecoveryTest, PerShardReplayConvergesWithUncrashedRun) {
  constexpr size_t kShards = 4;
  constexpr int kSteps = 40;
  ScratchDir dir("replay");
  RunAndCrash(ShardedOptions(kShards, dir.path), kSteps);

  // Each shard left its own segment stream behind.
  for (size_t k = 0; k < kShards; ++k) {
    EXPECT_TRUE(fs::exists(dir.path + "/shard-" + std::to_string(k)))
        << "missing WAL dir for shard " << k;
  }

  auto recovered =
      ShardedDatabase::Open(ShardedOptions(kShards, dir.path)).value();
  ApplyDdl(recovered.get());
  auto reports = recovered->RecoverFromWal();
  ASSERT_TRUE(reports.ok()) << reports.status().ToString();
  ASSERT_EQ(reports->size(), kShards);
  ASSERT_TRUE(recovered->AttachWals().ok());

  auto reference = ReferenceAfter(kShards, kSteps);
  EXPECT_EQ(recovered->ScanView("minutes").value(),
            reference->ScanView("minutes").value());
  EXPECT_EQ(recovered->ScanView("regions").value(),
            reference->ScanView("regions").value());
  uint64_t replayed = 0;
  for (size_t k = 0; k < kShards; ++k) {
    SCOPED_TRACE(testing::Message() << "shard=" << k);
    // Shard k replayed exactly its own tick stream: SN and counters match
    // the uncrashed run's shard k.
    EXPECT_EQ(recovered->engine(k).group().last_sn(),
              reference->engine(k).group().last_sn());
    EXPECT_EQ(recovered->engine(k).appends_processed(),
              reference->engine(k).appends_processed());
    replayed += (*reports)[k].replay.records_applied;
  }
  EXPECT_GT(replayed, 0u);

  // The recovered router keeps working — and keeps logging: further steps
  // land in the per-shard WALs and both runs stay identical.
  for (int step = kSteps; step < kSteps + 10; ++step) {
    ApplyStep(recovered.get(), step);
    ApplyStep(reference.get(), step);
  }
  EXPECT_EQ(recovered->ScanView("minutes").value(),
            reference->ScanView("minutes").value());
  ASSERT_TRUE(recovered->CloseWals().ok());

  // Second crash/recover cycle over the longer history.
  auto recovered2 =
      ShardedDatabase::Open(ShardedOptions(kShards, dir.path)).value();
  ApplyDdl(recovered2.get());
  ASSERT_TRUE(recovered2->RecoverFromWal().ok());
  EXPECT_EQ(recovered2->ScanView("minutes").value(),
            reference->ScanView("minutes").value());
}

TEST(ShardRecoveryTest, SingleShardRecoveryIsBitIdenticalToUnsharded) {
  ScratchDir dir("single");
  RunAndCrash(ShardedOptions(1, dir.path), 25);

  auto recovered = ShardedDatabase::Open(ShardedOptions(1, dir.path)).value();
  ApplyDdl(recovered.get());
  ASSERT_TRUE(recovered->RecoverFromWal().ok());

  auto reference = ReferenceAfter(1, 25);
  EXPECT_EQ(recovered->ScanView("minutes").value(),
            reference->ScanView("minutes").value());
  EXPECT_EQ(recovered->engine(0).group().last_sn(),
            reference->engine(0).group().last_sn());
  EXPECT_EQ(recovered->engine(0).group().last_chronon(),
            reference->engine(0).group().last_chronon());
  EXPECT_EQ(recovered->engine(0).appends_processed(),
            reference->engine(0).appends_processed());
}

TEST(ShardRecoveryTest, OrderingGuards) {
  ScratchDir dir("guards");
  auto db = ShardedDatabase::Open(ShardedOptions(2, dir.path)).value();
  ApplyDdl(db.get());
  ASSERT_TRUE(db->AttachWals().ok());
  // Recovery after attach would double-apply: refused.
  EXPECT_FALSE(db->RecoverFromWal().ok());
  ASSERT_TRUE(db->CloseWals().ok());
  // Without a wal_dir there is nothing to recover.
  DatabaseOptions plain;
  plain.sharding.num_shards = 2;
  auto no_wal = ShardedDatabase::Open(plain).value();
  EXPECT_FALSE(no_wal->RecoverFromWal().ok());
  EXPECT_TRUE(no_wal->AttachWals().ok());  // explicit no-op
}

TEST(ShardRecoveryTest, TieredStoreDirectoriesSplitPerShard) {
  constexpr size_t kShards = 2;
  constexpr int kSteps = 30;
  ScratchDir wal_dir("tiered_wal");
  ScratchDir data_dir("tiered_data");
  {
    auto db = ShardedDatabase::Open(
                  ShardedOptions(kShards, wal_dir.path, data_dir.path))
                  .value();
    ASSERT_TRUE(db->CreateChronicle("calls", CallSchema(),
                                    RetentionPolicy::Tiered(4))
                    .ok());
    ASSERT_TRUE(
        db->CreateView(
              "minutes",
              [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
              SummarySpec::GroupBy(CallSchema(), {"caller"},
                                   {AggSpec::Sum("minutes", "m")})
                  .value())
            .ok());
    ASSERT_TRUE(db->AttachWals().ok());
    for (int step = 0; step < kSteps; ++step) {
      std::vector<Tuple> batch;
      for (int i = 0; i < 3; ++i) {
        batch.push_back(Tuple{Value((step * 3 + i) % 11), Value("NJ"),
                              Value(step)});
      }
      ASSERT_TRUE(db->Append("calls", std::move(batch)).ok());
    }
    ASSERT_TRUE(db->CloseWals().ok());
    // Both shards spilled into their own store directory.
    for (size_t k = 0; k < kShards; ++k) {
      EXPECT_TRUE(fs::exists(data_dir.path + "/shard-" + std::to_string(k)))
          << "missing store dir for shard " << k;
    }
  }
  // Recover into fresh per-shard engines over the same directories.
  auto recovered = ShardedDatabase::Open(
                       ShardedOptions(kShards, wal_dir.path, data_dir.path))
                       .value();
  ASSERT_TRUE(recovered
                  ->CreateChronicle("calls", CallSchema(),
                                    RetentionPolicy::Tiered(4))
                  .ok());
  ASSERT_TRUE(
      recovered
          ->CreateView(
              "minutes",
              [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
              SummarySpec::GroupBy(CallSchema(), {"caller"},
                                   {AggSpec::Sum("minutes", "m")})
                  .value())
          .ok());
  ASSERT_TRUE(recovered->RecoverFromWal().ok());

  // Recompute the expected totals directly.
  std::map<int64_t, int64_t> sums;
  for (int step = 0; step < kSteps; ++step) {
    for (int i = 0; i < 3; ++i) sums[(step * 3 + i) % 11] += step;
  }
  std::vector<Tuple> rows = recovered->ScanView("minutes").value();
  ASSERT_EQ(rows.size(), sums.size());
  for (const Tuple& row : rows) {
    EXPECT_EQ(row[1].int64(), sums[row[0].int64()]) << row[0].int64();
  }
}

}  // namespace
}  // namespace chronicle
