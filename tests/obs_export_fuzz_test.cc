// Exporter fuzz: randomized StatsSnapshots — hostile view names (quotes,
// backslashes, control bytes, non-ASCII), extreme counter values, random
// histograms — rendered through RenderJson must always satisfy the
// RFC 8259 grammar (ValidateJson), and the other renderers must at least
// not crash. Seeded via CHRONICLE_FUZZ_SEED (common/random.h FuzzSeed) so
// CI explores a fresh corner every run and failures replay locally.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/export.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace chronicle {
namespace obs {
namespace {

std::string RandomName(Rng* rng) {
  // Half the time a plausible identifier, half the time byte soup that
  // stresses every escape path in the exporters.
  const size_t len = rng->Uniform(24) + 1;
  std::string out;
  out.reserve(len);
  const bool hostile = rng->Uniform(2) == 0;
  for (size_t i = 0; i < len; ++i) {
    if (hostile) {
      out.push_back(static_cast<char>(rng->Uniform(256)));
    } else {
      static const char kAlphabet[] =
          "abcdefghijklmnopqrstuvwxyz_0123456789\"\\\n\t/";
      out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
    }
  }
  return out;
}

uint64_t RandomCount(Rng* rng) {
  // Mix small values with extremes: uint64 max exercises the widest
  // integer rendering.
  switch (rng->Uniform(4)) {
    case 0:
      return 0;
    case 1:
      return rng->Uniform(1000);
    case 2:
      return rng->Uniform(std::numeric_limits<uint64_t>::max());
    default:
      return std::numeric_limits<uint64_t>::max();
  }
}

LatencyHistogram RandomHistogram(Rng* rng) {
  LatencyHistogram h;
  const size_t samples = rng->Uniform(20);
  for (size_t i = 0; i < samples; ++i) {
    // Spread across the full bucket range, including the clamp-to-zero
    // path for negative inputs.
    h.Record(rng->UniformInt(-10, 1) < 0
                 ? -1
                 : static_cast<int64_t>(rng->Uniform(1ull << 40)));
  }
  return h;
}

StatsSnapshot RandomSnapshot(Rng* rng) {
  StatsSnapshot snap;
  snap.appends_processed = RandomCount(rng);
  snap.live_views = rng->Uniform(10);
  snap.delta_cache_hits = RandomCount(rng);
  snap.delta_cache_misses = RandomCount(rng);
  snap.trace_emitted = RandomCount(rng);
  snap.trace_capacity = rng->Uniform(1024);

  const size_t metrics = rng->Uniform(6);
  for (size_t i = 0; i < metrics; ++i) {
    MetricSample m;
    m.name = RandomName(rng);
    m.help = RandomName(rng);
    m.is_histogram = rng->Uniform(2) == 0;
    if (m.is_histogram) {
      m.histogram = RandomHistogram(rng);
    } else {
      m.value = RandomCount(rng);
    }
    snap.metrics.push_back(std::move(m));
  }

  const size_t views = rng->Uniform(5);
  for (size_t i = 0; i < views; ++i) {
    ViewStatsSnapshot v;
    v.name = RandomName(rng);
    v.stats.ticks = RandomCount(rng);
    v.stats.updates = RandomCount(rng);
    v.stats.delta_rows = RandomCount(rng);
    v.stats.compiled_ticks = RandomCount(rng);
    v.stats.interpreted_ticks = RandomCount(rng);
    v.stats.relation_lookups = RandomCount(rng);
    v.stats.max_intermediate_rows = RandomCount(rng);
    v.stats.plan_slots = static_cast<uint32_t>(rng->Uniform(64));
    v.stats.arena_hwm_bytes = RandomCount(rng);
    v.stats.max_dedupe_load = rng->NextDouble();
    v.profiled = rng->Uniform(2) == 0;
    if (v.profiled) v.latency = RandomHistogram(rng);
    snap.views.push_back(std::move(v));
  }

  if (rng->Uniform(2) == 0) {
    snap.wal.attached = true;
    snap.wal.records_logged = RandomCount(rng);
    snap.wal.bytes_logged = RandomCount(rng);
    snap.wal.syncs = RandomCount(rng);
    snap.wal.segments_created = RandomCount(rng);
    snap.wal.segments_removed = RandomCount(rng);
    snap.wal.checkpoints_written = RandomCount(rng);
    snap.wal.group_commits = RandomCount(rng);
    snap.wal.group_commit_ticks = RandomCount(rng);
    snap.wal.fsync_latency = RandomHistogram(rng);
    snap.wal.recovered = rng->Uniform(2) == 0;
    snap.wal.recovery_records_applied = RandomCount(rng);
    snap.wal.recovery_records_skipped = RandomCount(rng);
  }
  return snap;
}

TEST(ObsExportFuzzTest, RenderJsonAlwaysValidates) {
  const uint64_t seed = FuzzSeed(90210);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 300; ++trial) {
    StatsSnapshot snap = RandomSnapshot(&rng);
    const std::string json = RenderJson(snap);
    Status st = ValidateJson(json);
    ASSERT_TRUE(st.ok()) << "trial " << trial << ": " << st.ToString()
                         << "\n"
                         << json;
  }
}

TEST(ObsExportFuzzTest, OtherRenderersNeverCrash) {
  const uint64_t seed = FuzzSeed(777);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 100; ++trial) {
    StatsSnapshot snap = RandomSnapshot(&rng);
    EXPECT_FALSE(RenderText(snap).empty());
    EXPECT_FALSE(RenderPrometheus(snap).empty());

    std::vector<TraceSpan> spans;
    const size_t n = rng.Uniform(8);
    for (size_t i = 0; i < n; ++i) {
      TraceSpan span;
      span.seq = i;
      span.kind = static_cast<SpanKind>(rng.Uniform(5));
      span.worker = static_cast<uint16_t>(rng.Uniform(16));
      span.sn = RandomCount(&rng);
      span.start_ns = static_cast<int64_t>(rng.Uniform(1ull << 40));
      span.duration_ns = static_cast<int64_t>(rng.Uniform(1ull << 30));
      spans.push_back(span);
    }
    EXPECT_FALSE(RenderTraceText(spans, n, 8).empty());
  }
}

TEST(ObsExportFuzzTest, ValidateJsonAgreesWithMutations) {
  // Mutating one byte of valid JSON output must never make the validator
  // crash or loop; it may still accept (many mutations stay valid).
  const uint64_t seed = FuzzSeed(5150);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  StatsSnapshot snap = RandomSnapshot(&rng);
  const std::string json = RenderJson(snap);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = json;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    ValidateJson(mutated).ok();  // must terminate without crashing
  }
}

}  // namespace
}  // namespace obs
}  // namespace chronicle
