#include "cql/parser.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace cql {
namespace {

template <typename T>
T Parse(const std::string& sql) {
  Result<Statement> stmt = ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  const T* typed = std::get_if<T>(&stmt.value());
  EXPECT_NE(typed, nullptr) << "wrong statement type for: " << sql;
  return typed != nullptr ? std::move(*std::get_if<T>(&stmt.value())) : T{};
}

TEST(ParserTest, CreateChronicleWithRetention) {
  auto stmt = Parse<CreateChronicleStmt>(
      "CREATE CHRONICLE calls (caller INT64, region STRING, charge DOUBLE) "
      "RETAIN LAST 1000;");
  EXPECT_EQ(stmt.name, "calls");
  ASSERT_EQ(stmt.columns.size(), 3u);
  EXPECT_EQ(stmt.columns[0].name, "caller");
  EXPECT_EQ(stmt.columns[0].type, DataType::kInt64);
  EXPECT_EQ(stmt.columns[2].type, DataType::kDouble);
  EXPECT_EQ(stmt.retention.kind, RetentionPolicy::Kind::kWindow);
  EXPECT_EQ(stmt.retention.window_rows, 1000u);
}

TEST(ParserTest, RetentionVariants) {
  EXPECT_EQ(Parse<CreateChronicleStmt>("CREATE CHRONICLE c (a INT) RETAIN NONE")
                .retention.kind,
            RetentionPolicy::Kind::kNone);
  EXPECT_EQ(Parse<CreateChronicleStmt>("CREATE CHRONICLE c (a INT) RETAIN ALL")
                .retention.kind,
            RetentionPolicy::Kind::kAll);
  EXPECT_EQ(Parse<CreateChronicleStmt>("CREATE CHRONICLE c (a INT)")
                .retention.kind,
            RetentionPolicy::Kind::kAll);
}

TEST(ParserTest, TypeAliases) {
  auto stmt = Parse<CreateRelationStmt>(
      "CREATE RELATION r (a INT, b BIGINT, c FLOAT, d REAL, e TEXT, f VARCHAR)");
  EXPECT_EQ(stmt.columns[0].type, DataType::kInt64);
  EXPECT_EQ(stmt.columns[1].type, DataType::kInt64);
  EXPECT_EQ(stmt.columns[2].type, DataType::kDouble);
  EXPECT_EQ(stmt.columns[3].type, DataType::kDouble);
  EXPECT_EQ(stmt.columns[4].type, DataType::kString);
  EXPECT_EQ(stmt.columns[5].type, DataType::kString);
}

TEST(ParserTest, CreateRelationWithKey) {
  auto stmt = Parse<CreateRelationStmt>(
      "CREATE RELATION cust (acct INT64, name STRING) KEY acct");
  EXPECT_EQ(stmt.key_column, "acct");
}

TEST(ParserTest, CreateViewFull) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE VIEW mins AS SELECT caller, SUM(minutes) AS total, COUNT(*) "
      "FROM calls JOIN cust ON caller = acct "
      "WHERE minutes > 0 AND region = 'NJ' GROUP BY caller");
  EXPECT_EQ(stmt.name, "mins");
  const SelectQuery& q = stmt.query;
  ASSERT_EQ(q.items.size(), 3u);
  EXPECT_FALSE(q.items[0].is_aggregate);
  EXPECT_EQ(q.items[0].column, "caller");
  EXPECT_TRUE(q.items[1].is_aggregate);
  EXPECT_EQ(q.items[1].agg_kind, AggKind::kSum);
  EXPECT_EQ(q.items[1].alias, "total");
  EXPECT_EQ(q.items[2].agg_kind, AggKind::kCount);
  EXPECT_EQ(q.from, "calls");
  EXPECT_EQ(q.join.kind, JoinClause::Kind::kKey);
  EXPECT_EQ(q.join.relation, "cust");
  EXPECT_EQ(q.join.left_column, "caller");
  EXPECT_EQ(q.join.right_column, "acct");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), ExprKind::kAnd);
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"caller"}));
}

TEST(ParserTest, CrossJoin) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE VIEW v AS SELECT COUNT(*) FROM calls CROSS JOIN cust");
  EXPECT_EQ(stmt.query.join.kind, JoinClause::Kind::kCross);
  EXPECT_EQ(stmt.query.join.relation, "cust");
}

TEST(ParserTest, TieredAggregate) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE VIEW bill AS SELECT caller, TIERED(charge, 10:0.1, 25:0.2) AS owed "
      "FROM calls GROUP BY caller");
  const SelectItem& item = stmt.query.items[1];
  EXPECT_EQ(item.agg_kind, AggKind::kTieredDiscount);
  ASSERT_EQ(item.tiers.size(), 2u);
  EXPECT_DOUBLE_EQ(item.tiers[0].threshold, 10.0);
  EXPECT_DOUBLE_EQ(item.tiers[0].rate, 0.1);
  EXPECT_DOUBLE_EQ(item.tiers[1].threshold, 25.0);
}

TEST(ParserTest, WherePrecedenceOrBelowAnd) {
  auto stmt = Parse<SelectStmt>(
      "SELECT * FROM v WHERE a = 1 OR b = 2 AND c = 3");
  // AND binds tighter: OR(a=1, AND(b=2, c=3)).
  ASSERT_NE(stmt.query.where, nullptr);
  EXPECT_EQ(stmt.query.where->kind(), ExprKind::kOr);
  EXPECT_EQ(stmt.query.where->child(1).kind(), ExprKind::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = Parse<SelectStmt>("SELECT * FROM v WHERE a + b * 2 > 10");
  const ScalarExpr& cmp = *stmt.query.where;
  EXPECT_EQ(cmp.kind(), ExprKind::kCompare);
  const ScalarExpr& lhs = cmp.child(0);
  EXPECT_EQ(lhs.kind(), ExprKind::kArith);
  EXPECT_EQ(lhs.arith_op(), ArithOp::kAdd);
  EXPECT_EQ(lhs.child(1).arith_op(), ArithOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse<SelectStmt>("SELECT * FROM v WHERE (a = 1 OR b = 2) AND c = 3");
  EXPECT_EQ(stmt.query.where->kind(), ExprKind::kAnd);
}

TEST(ParserTest, InsertMultipleRowsWithChronon) {
  auto stmt = Parse<InsertStmt>(
      "INSERT INTO calls VALUES (1, 'NJ', 5), (2, 'NY', -3) AT 77");
  EXPECT_EQ(stmt.target, "calls");
  ASSERT_EQ(stmt.rows.size(), 2u);
  EXPECT_EQ(stmt.rows[0], (Tuple{Value(1), Value("NJ"), Value(5)}));
  EXPECT_EQ(stmt.rows[1][2], Value(-3));
  ASSERT_TRUE(stmt.at.has_value());
  EXPECT_EQ(*stmt.at, 77);
}

TEST(ParserTest, InsertNullLiteral) {
  auto stmt = Parse<InsertStmt>("INSERT INTO r VALUES (NULL, 1.5)");
  EXPECT_TRUE(stmt.rows[0][0].is_null());
  EXPECT_EQ(stmt.rows[0][1], Value(1.5));
}

TEST(ParserTest, UpdateStatement) {
  auto stmt = Parse<UpdateStmt>(
      "UPDATE cust SET state = 'CA', name = 'ann' WHERE acct = 7");
  EXPECT_EQ(stmt.relation, "cust");
  ASSERT_EQ(stmt.sets.size(), 2u);
  EXPECT_EQ(stmt.sets[0].first, "state");
  EXPECT_EQ(stmt.sets[0].second, Value("CA"));
  EXPECT_EQ(stmt.where_column, "acct");
  EXPECT_EQ(stmt.where_value, Value(7));
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = Parse<DeleteStmt>("DELETE FROM cust WHERE acct = 7");
  EXPECT_EQ(stmt.relation, "cust");
  EXPECT_EQ(stmt.where_value, Value(7));
}

TEST(ParserTest, SelectStar) {
  auto stmt = Parse<SelectStmt>("SELECT * FROM balances WHERE acct = 3");
  EXPECT_TRUE(stmt.query.select_star);
  EXPECT_EQ(stmt.query.from, "balances");
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto stmts = ParseScript(
                   "CREATE CHRONICLE c (a INT); INSERT INTO c VALUES (1); "
                   "SELECT * FROM v;")
                   .value();
  EXPECT_EQ(stmts.size(), 3u);
}

TEST(ParserTest, ErrorsMentionOffset) {
  Result<Statement> bad = ParseStatement("CREATE VIEW v AS SELECT FROM c");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsParseError());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("DELETE FROM r WHERE a = 1 garbage").ok());
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseStatement("create chronicle c (a int) retain none").ok());
  EXPECT_TRUE(ParseStatement("Select * From v").ok());
}

}  // namespace
}  // namespace cql
}  // namespace chronicle
