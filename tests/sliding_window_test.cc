#include "periodic/sliding_window.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "periodic/periodic_view.h"

namespace chronicle {
namespace {

Schema TradeSchema() {
  return Schema({{"symbol", DataType::kString}, {"shares", DataType::kInt64}});
}

CaExprPtr ScanTrades() { return CaExpr::Scan(0, "trades", TradeSchema()).value(); }

SummarySpec SharesSpec() {
  return SummarySpec::GroupBy(TradeSchema(), {"symbol"},
                              {AggSpec::Sum("shares", "total"),
                               AggSpec::Count("trades")})
      .value();
}

AppendEvent Trade(SeqNum sn, Chronon chronon, const std::string& symbol,
                  int64_t shares) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = chronon;
  event.inserts.emplace_back(
      0, std::vector<Tuple>{Tuple{Value(symbol), Value(shares)}});
  return event;
}

TEST(SlidingWindowTest, SumsOverCurrentWindow) {
  // 3 panes of width 10 => window 30.
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 3)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 5, "IBM", 100)).ok());   // pane 0
  ASSERT_TRUE(view->ProcessAppend(Trade(2, 15, "IBM", 50)).ok());   // pane 1
  ASSERT_TRUE(view->ProcessAppend(Trade(3, 25, "IBM", 7)).ok());    // pane 2
  Tuple row = view->QueryWindow(Tuple{Value("IBM")}).value();
  EXPECT_EQ(row, (Tuple{Value("IBM"), Value(157), Value(3)}));
}

TEST(SlidingWindowTest, OldPanesSlideOut) {
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 3)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 5, "IBM", 100)).ok());   // pane 0
  ASSERT_TRUE(view->ProcessAppend(Trade(2, 35, "IBM", 1)).ok());    // pane 3
  // Window now covers panes 1..3; pane 0's 100 shares are gone.
  Tuple row = view->QueryWindow(Tuple{Value("IBM")}).value();
  EXPECT_EQ(row[1], Value(1));
}

TEST(SlidingWindowTest, RingSlotReusedAfterWrap) {
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 2)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 5, "A", 1)).ok());    // pane 0, slot 0
  ASSERT_TRUE(view->ProcessAppend(Trade(2, 15, "A", 2)).ok());   // pane 1, slot 1
  ASSERT_TRUE(view->ProcessAppend(Trade(3, 25, "A", 4)).ok());   // pane 2, slot 0 reused
  EXPECT_EQ(view->QueryWindow(Tuple{Value("A")}).value()[1], Value(6));
  EXPECT_EQ(view->current_pane(), 2);
}

TEST(SlidingWindowTest, KeyAbsentFromWindowIsNotFound) {
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 2)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 5, "A", 1)).ok());
  EXPECT_TRUE(view->QueryWindow(Tuple{Value("B")}).status().IsNotFound());
  // After the window slides past pane 0, A is absent too.
  ASSERT_TRUE(view->ProcessAppend(Trade(2, 25, "B", 1)).ok());
  EXPECT_TRUE(view->QueryWindow(Tuple{Value("A")}).status().IsNotFound());
}

TEST(SlidingWindowTest, EventsBeforeOriginIgnored) {
  auto view =
      SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 100, 10, 2)
          .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 50, "A", 1)).ok());
  EXPECT_TRUE(view->QueryWindow(Tuple{Value("A")}).status().IsNotFound());
}

TEST(SlidingWindowTest, ChrononRegressionRejected) {
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 2)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 25, "A", 1)).ok());
  EXPECT_TRUE(view->ProcessAppend(Trade(2, 5, "A", 1)).IsOutOfRange());
}

TEST(SlidingWindowTest, MakeValidation) {
  EXPECT_FALSE(
      SlidingWindowView::Make("w", nullptr, SharesSpec(), 0, 10, 2).ok());
  EXPECT_FALSE(
      SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 0, 2).ok());
  EXPECT_FALSE(
      SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 0).ok());
  SummarySpec distinct =
      SummarySpec::DistinctProjection(TradeSchema(), {"symbol"}).value();
  EXPECT_FALSE(
      SlidingWindowView::Make("w", ScanTrades(), distinct, 0, 10, 2).ok());
}

TEST(SlidingWindowTest, ScanWindowVisitsAllLiveKeys) {
  auto view = SlidingWindowView::Make("w", ScanTrades(), SharesSpec(), 0, 10, 3)
                  .value();
  ASSERT_TRUE(view->ProcessAppend(Trade(1, 5, "A", 1)).ok());
  ASSERT_TRUE(view->ProcessAppend(Trade(2, 15, "B", 2)).ok());
  int rows = 0;
  ASSERT_TRUE(view->ScanWindow([&](const Tuple&) { ++rows; }).ok());
  EXPECT_EQ(rows, 2);
}

TEST(SlidingWindowTest, FirstLastMergeAcrossPanesInChronologicalOrder) {
  // Ring slots are not chronological; the pane merge must sort by pane
  // index or FIRST/LAST would be wrong after the ring wraps.
  Schema schema({{"symbol", DataType::kString}, {"price", DataType::kInt64}});
  CaExprPtr scan = CaExpr::Scan(0, "trades", schema).value();
  SummarySpec spec =
      SummarySpec::GroupBy(schema, {"symbol"},
                           {AggSpec::First("price", "open"),
                            AggSpec::Last("price", "close")})
          .value();
  auto view =
      SlidingWindowView::Make("ohlc", scan, spec, 0, 10, 3).value();

  auto trade = [](SeqNum sn, Chronon t, int64_t price) {
    AppendEvent event;
    event.sn = sn;
    event.chronon = t;
    event.inserts.emplace_back(
        0, std::vector<Tuple>{Tuple{Value("A"), Value(price)}});
    return event;
  };
  // Panes 0..4; after pane 4 the window is panes 2..4 and slot order in
  // the ring is [3(slot 0), 4(slot 1), 2(slot 2)] — scrambled.
  ASSERT_TRUE(view->ProcessAppend(trade(1, 5, 100)).ok());    // pane 0
  ASSERT_TRUE(view->ProcessAppend(trade(2, 15, 200)).ok());   // pane 1
  ASSERT_TRUE(view->ProcessAppend(trade(3, 25, 300)).ok());   // pane 2
  ASSERT_TRUE(view->ProcessAppend(trade(4, 35, 400)).ok());   // pane 3
  ASSERT_TRUE(view->ProcessAppend(trade(5, 45, 500)).ok());   // pane 4

  Tuple row = view->QueryWindow(Tuple{Value("A")}).value();
  EXPECT_EQ(row[1], Value(300));  // open = first in window (pane 2)
  EXPECT_EQ(row[2], Value(500));  // close = last in window (pane 4)
}

// The paper's equivalence: the ring buffer computes exactly what the naive
// overlapping-instances formulation computes. This is the §5.1 optimization
// correctness test.
TEST(SlidingWindowTest, EquivalentToNaivePeriodicViewSet) {
  const Chronon kPane = 10;
  const int64_t kPanes = 30;  // "30 days"
  auto ring =
      SlidingWindowView::Make("ring", ScanTrades(), SharesSpec(), 0, kPane,
                              kPanes)
          .value();
  auto cal = SlidingCalendar::Make(0, kPane * kPanes, kPane).value();
  auto naive =
      PeriodicViewSet::Make("naive", ScanTrades(), SharesSpec(), cal).value();

  Rng rng(2024);
  const char* symbols[] = {"A", "B", "C"};
  Chronon t = 0;
  for (SeqNum sn = 1; sn <= 400; ++sn) {
    t += static_cast<Chronon>(rng.Uniform(7));
    AppendEvent event = Trade(sn, t, symbols[rng.Uniform(3)],
                              static_cast<int64_t>(rng.Uniform(100)));
    ASSERT_TRUE(ring->ProcessAppend(event).ok());
    ASSERT_TRUE(naive->ProcessAppend(event).ok());

    // The ring window [current_pane - 29, current_pane] corresponds to the
    // naive instance k = current_pane - 29 (clamped to 0 is NOT equal; only
    // compare once the window is fully formed).
    const int64_t k = ring->current_pane() - (kPanes - 1);
    if (k < 0) continue;
    for (const char* symbol : symbols) {
      Result<Tuple> ring_row = ring->QueryWindow(Tuple{Value(symbol)});
      Result<Tuple> naive_row = naive->Lookup(k, Tuple{Value(symbol)});
      ASSERT_EQ(ring_row.ok(), naive_row.ok())
          << "sn=" << sn << " symbol=" << symbol << " k=" << k;
      if (ring_row.ok()) {
        EXPECT_EQ(*ring_row, *naive_row) << "sn=" << sn << " symbol=" << symbol;
      }
    }
  }
}

}  // namespace
}  // namespace chronicle
