// Unit tests for the DeltaPlan compiler (src/exec): post-order slot
// assignment, DAG sharing by construction, Theorem 4.3 rejection parity
// with the interpreter, scratch reuse, and the Arena allocator.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/delta_engine.h"
#include "common/arena.h"
#include "exec/plan_compiler.h"
#include "storage/relation.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

AppendEvent Event(SeqNum sn, std::vector<Tuple> tuples) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = static_cast<Chronon>(sn);
  event.inserts.emplace_back(0, std::move(tuples));
  return event;
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

TEST(PlanCompilerTest, PostOrderSlotAssignment) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr select =
      CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(10)))).value();
  CaExprPtr project = CaExpr::Project(select, {"caller"}).value();

  exec::DeltaPlanPtr plan = exec::CompileDeltaPlan(project).value();
  ASSERT_EQ(plan->instructions().size(), 3u);
  EXPECT_EQ(plan->num_slots(), 3u);

  // Children are compiled before parents; slot i is written by
  // instruction i.
  const auto& instrs = plan->instructions();
  EXPECT_EQ(instrs[0].op, exec::PlanOp::kScan);
  EXPECT_EQ(instrs[0].out, 0u);
  EXPECT_EQ(instrs[1].op, exec::PlanOp::kSelect);
  EXPECT_EQ(instrs[1].out, 1u);
  EXPECT_EQ(instrs[1].in0, 0u);
  EXPECT_EQ(instrs[2].op, exec::PlanOp::kProject);
  EXPECT_EQ(instrs[2].out, 2u);
  EXPECT_EQ(instrs[2].in0, 1u);
  EXPECT_EQ(plan->root_slot(), 2u);
  EXPECT_EQ(plan->shared_subexpressions(), 0u);
  // Payload access goes through the original nodes.
  EXPECT_EQ(instrs[2].node, project.get());
}

TEST(PlanCompilerTest, SharedSubexpressionLoweredOnce) {
  // Two projections over one shared selection: the interpreter re-memoizes
  // the selection every tick; the compiler resolves the second edge to the
  // already-assigned slot.
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr select =
      CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(0)))).value();
  CaExprPtr left = CaExpr::Project(select, {"caller"}).value();
  CaExprPtr right = CaExpr::Project(select, {"caller"}).value();
  CaExprPtr plan_expr = CaExpr::Union(left, right).value();

  exec::DeltaPlanPtr plan = exec::CompileDeltaPlan(plan_expr).value();
  // scan, select, project_l, project_r, union — the shared select (and the
  // scan under it) appear exactly once.
  EXPECT_EQ(plan->instructions().size(), 5u);
  EXPECT_EQ(plan->shared_subexpressions(), 1u);
  const auto& instrs = plan->instructions();
  // Both projections read the same slot.
  EXPECT_EQ(instrs[2].in0, instrs[3].in0);
  EXPECT_EQ(instrs[4].op, exec::PlanOp::kUnion);
  EXPECT_EQ(instrs[4].in0, 2u);
  EXPECT_EQ(instrs[4].in1, 3u);

  // Sharing the whole operand (SeqJoin of a node with itself) also counts.
  CaExprPtr self_join = CaExpr::SeqJoin(select, select).value();
  exec::DeltaPlanPtr join_plan = exec::CompileDeltaPlan(self_join).value();
  EXPECT_EQ(join_plan->instructions().size(), 3u);
  EXPECT_EQ(join_plan->shared_subexpressions(), 1u);
  EXPECT_EQ(join_plan->instructions()[2].in0,
            join_plan->instructions()[2].in1);
}

TEST(PlanCompilerTest, Theorem43OpsRejectedWithInterpreterDiagnostics) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  std::vector<CaExprPtr> illegal = {
      CaExpr::ProjectDropSn(scan, {"caller"}).value(),
      CaExpr::GroupByNoSn(scan, {"region"}, {AggSpec::Count("n")}).value(),
      CaExpr::ChronicleCross(scan, scan).value(),
      CaExpr::SeqThetaJoin(scan, scan, CompareOp::kLt).value(),
  };

  DeltaEngine engine;
  AppendEvent event = Event(1, {Call(1, "NJ", 5)});
  for (const CaExprPtr& expr : illegal) {
    SCOPED_TRACE(CaOpToString(expr->op()));
    Result<exec::DeltaPlanPtr> compiled = exec::CompileDeltaPlan(expr);
    ASSERT_FALSE(compiled.ok());
    EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
    // The compile-time diagnostic is the interpreter's runtime diagnostic,
    // verbatim: callers see one error text regardless of engine.
    Result<std::vector<ChronicleRow>> interpreted =
        engine.ComputeDelta(*expr, event, nullptr, nullptr);
    ASSERT_FALSE(interpreted.ok());
    EXPECT_EQ(compiled.status().message(), interpreted.status().message());
  }
}

TEST(PlanCompilerTest, NullRootRejected) {
  EXPECT_FALSE(exec::CompileDeltaPlan(nullptr).ok());
}

TEST(PlanCompilerTest, ToStringRendersProgram) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr select =
      CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(10)))).value();
  exec::DeltaPlanPtr plan = exec::CompileDeltaPlan(select).value();
  const std::string text = plan->ToString();
  EXPECT_NE(text.find("s0 = Scan"), std::string::npos) << text;
  EXPECT_NE(text.find("s1 = Select(s0)"), std::string::npos) << text;
  EXPECT_NE(text.find("root: s1"), std::string::npos) << text;
}

TEST(DeltaPlanTest, ExecuteMatchesInterpreterOnSimplePlan) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr plan_expr =
      CaExpr::GroupBySeq(CaExpr::Select(scan, Ge(Col("minutes"), Lit(Value(3))))
                             .value(),
                         {"region"}, {AggSpec::Sum("minutes", "m")})
          .value();
  exec::DeltaPlanPtr plan = exec::CompileDeltaPlan(plan_expr).value();

  DeltaEngine engine;
  exec::PlanScratch scratch;
  for (SeqNum sn = 1; sn <= 3; ++sn) {
    AppendEvent event = Event(
        sn, {Call(1, "NJ", 2 + static_cast<int64_t>(sn)), Call(2, "NJ", 9),
             Call(3, "NY", 1)});
    std::vector<ChronicleRow> interpreted =
        engine.ComputeDelta(*plan_expr, event, nullptr, nullptr).value();
    const std::vector<ChronicleRow>* compiled =
        plan->ExecuteToRows(event, &scratch, nullptr).value();
    ASSERT_EQ(interpreted.size(), compiled->size());
    for (size_t i = 0; i < interpreted.size(); ++i) {
      EXPECT_EQ(interpreted[i], (*compiled)[i]);
      EXPECT_EQ((*compiled)[i].sn, sn);
    }
  }
}

TEST(DeltaPlanTest, ScratchIsReusedAcrossTicksAndPlans) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr small = CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(0))))
                        .value();
  CaExprPtr big =
      CaExpr::Union(CaExpr::Project(small, {"caller"}).value(),
                    CaExpr::Project(small, {"caller"}).value())
          .value();
  exec::DeltaPlanPtr small_plan = exec::CompileDeltaPlan(small).value();
  exec::DeltaPlanPtr big_plan = exec::CompileDeltaPlan(big).value();

  exec::PlanScratch scratch;
  ASSERT_TRUE(
      small_plan->Execute(Event(1, {Call(1, "NJ", 5)}), &scratch, nullptr)
          .ok());
  EXPECT_EQ(scratch.num_slots(), small_plan->num_slots());
  // A larger plan grows the slot array; a smaller one reuses it as-is.
  ASSERT_TRUE(
      big_plan->Execute(Event(2, {Call(2, "NY", 7)}), &scratch, nullptr).ok());
  EXPECT_EQ(scratch.num_slots(), big_plan->num_slots());
  const std::vector<Tuple>* delta =
      small_plan->Execute(Event(3, {Call(3, "CA", 9)}), &scratch, nullptr)
          .value();
  EXPECT_EQ(scratch.num_slots(), big_plan->num_slots());
  ASSERT_EQ(delta->size(), 1u);
  EXPECT_EQ((*delta)[0][0], Value(3));
}

TEST(DeltaPlanTest, BoundedJoinViolationMatchesInterpreterError) {
  Relation rel =
      Relation::Make("cust",
                     Schema({{"acct", DataType::kInt64},
                             {"state", DataType::kString}}),
                     "acct")
          .value();
  ASSERT_TRUE(rel.CreateSecondaryIndex("state").ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value(int64_t{1}), Value("NJ")}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value(int64_t{2}), Value("NJ")}).ok());

  CaExprPtr scan =
      CaExpr::Scan(0, "calls",
                   Schema({{"state", DataType::kString},
                           {"minutes", DataType::kInt64}}))
          .value();
  // Declared bound 1, but "NJ" matches two relation rows.
  CaExprPtr join =
      CaExpr::RelBoundedJoin(scan, &rel, "state", "state", 1).value();
  exec::DeltaPlanPtr plan = exec::CompileDeltaPlan(join).value();

  AppendEvent event = Event(1, {Tuple{Value("NJ"), Value(int64_t{5})}});
  DeltaEngine engine;
  Result<std::vector<ChronicleRow>> interpreted =
      engine.ComputeDelta(*join, event, nullptr, nullptr);
  exec::PlanScratch scratch;
  Result<const std::vector<Tuple>*> compiled =
      plan->Execute(event, &scratch, nullptr);
  ASSERT_FALSE(interpreted.ok());
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(compiled.status().message(), interpreted.status().message());
}

TEST(ArenaTest, AllocationsAreAlignedAndReset) {
  Arena arena;
  void* a = arena.Allocate(3, 1);
  void* b = arena.Allocate(8, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  int64_t* xs = arena.AllocateArray<int64_t>(16);
  xs[15] = 42;
  EXPECT_GE(arena.bytes_allocated(), 3 + 8 + 16 * sizeof(int64_t));

  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  // Clear-don't-free: the blocks survive the reset...
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // ...and are handed out again.
  void* c = arena.Allocate(3, 1);
  EXPECT_EQ(c, a);
}

TEST(ArenaTest, LargeAllocationsDroppedOnReset) {
  Arena arena;
  // Far beyond max_block_bytes: served by a dedicated oversized block.
  void* big = arena.Allocate(1u << 20, 8);
  ASSERT_NE(big, nullptr);
  const size_t reserved_with_big = arena.bytes_reserved();
  arena.Reset();
  // The oversized block is released so one outlier tick does not pin a
  // high-water footprint forever.
  EXPECT_LT(arena.bytes_reserved(), reserved_with_big);
}

TEST(ArenaTest, ArenaVectorUsesArenaStorage) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v[99], 99);
  EXPECT_GT(arena.bytes_allocated(), 0u);
}

}  // namespace
}  // namespace chronicle
