// End-to-end tests for the live monitoring surface: the embedded HTTP
// server's routes (/metrics /stats.json /trace.json /history.json /healthz
// /views/<name>/explain.json), the stats time-series sampler, the plan
// EXPLAIN profiler, and the slow-tick flight recorder. Requests go through
// a real socket against an ephemeral port (StartMonitoring(0)), so the
// whole chain — accept thread, request parse, obs_mutex_ consistency cut,
// exporters — is exercised exactly as a curl would.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algebra/scalar_expr.h"
#include "db/database.h"
#include "obs/export.h"
#include "obs/history.h"

namespace chronicle {
namespace {

namespace fs = std::filesystem;

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

struct HttpReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

// Sends `raw` to 127.0.0.1:port and parses the reply into `*reply`. The
// server closes after one response (Connection: close), so read-to-EOF is
// the framing. Void so gtest ASSERTs can abort the helper.
void RawRequest(uint16_t port, const std::string& raw, HttpReply* reply) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0) << strerror(errno);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << strerror(errno);
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      FAIL() << "send: " << strerror(errno);
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  ASSERT_EQ(response.rfind("HTTP/1.1 ", 0), 0u) << response.substr(0, 80);
  reply->status = std::atoi(response.c_str() + strlen("HTTP/1.1 "));
  const size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string headers = response.substr(0, header_end);
  const size_t ct = headers.find("Content-Type: ");
  if (ct != std::string::npos) {
    const size_t eol = headers.find("\r\n", ct);
    reply->content_type =
        headers.substr(ct + strlen("Content-Type: "),
                       eol - ct - strlen("Content-Type: "));
  }
  reply->body = response.substr(header_end + 4);
}

HttpReply Raw(uint16_t port, const std::string& raw) {
  HttpReply reply;
  RawRequest(port, raw, &reply);
  return reply;
}

HttpReply Get(uint16_t port, const std::string& path) {
  return Raw(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

// Minimal Prometheus text-format parse: every line is a comment, blank, or
// `name[{labels}] value`. Returns false (with the offending line) on
// anything else.
bool PrometheusParses(const std::string& text, std::string* bad_line) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) {
      *bad_line = line;
      return false;
    }
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    if (end == nullptr || *end != '\0') {
      *bad_line = line;
      return false;
    }
    const std::string name_part = line.substr(0, space);
    if (name_part.empty() ||
        (!std::isalpha(static_cast<unsigned char>(name_part[0])) &&
         name_part[0] != '_')) {
      *bad_line = line;
      return false;
    }
  }
  return true;
}

// Value of an unlabelled counter line, or -1 when absent.
double MetricValue(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
  }
  return -1.0;
}

// Sum of every `"key":<number>` occurrence in a JSON string. Dependency-
// free extraction is fine here: the exporters never emit nested keys with
// the same name.
double SumJsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  double sum = 0.0;
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    sum += std::strtod(json.c_str() + pos, nullptr);
  }
  return sum;
}

// A database with the E13 UnionFan acceptance view (u guarded selections
// over one shared scan, unioned, grouped) so EXPLAIN has a real multi-slot
// plan with shared subexpressions to report on.
void BuildUnionFan(ChronicleDatabase* db, int64_t u = 8) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  CaExprPtr plan =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  for (int64_t i = 1; i < u; ++i) {
    CaExprPtr branch =
        CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(i % 90)))).value();
    plan = CaExpr::Union(plan, branch).value();
  }
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "m")})
                         .value();
  ASSERT_TRUE(db->CreateView("fan", plan, spec).ok());
}

void AppendTicks(ChronicleDatabase* db, int ticks) {
  for (int i = 0; i < ticks; ++i) {
    ASSERT_TRUE(db->Append("calls", {Call(i % 16, "NJ", (i * 7) % 100),
                                     Call(i % 16, "NJ", (i * 13) % 100)})
                    .ok());
  }
}

TEST(ObsHttpTest, MonitoringLifecycle) {
  ChronicleDatabase db;
  EXPECT_FALSE(db.monitoring_active());
  EXPECT_EQ(db.monitoring_port(), 0u);
  ASSERT_TRUE(db.StartMonitoring(0).ok());  // 0 = ephemeral port
  EXPECT_TRUE(db.monitoring_active());
  EXPECT_NE(db.monitoring_port(), 0u);
  // A second server on the same database is a caller bug.
  EXPECT_TRUE(db.StartMonitoring(0).IsFailedPrecondition());
  db.StopMonitoring();
  EXPECT_FALSE(db.monitoring_active());
  db.StopMonitoring();  // idempotent
  // Restartable after a stop.
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  EXPECT_TRUE(db.monitoring_active());
}

TEST(ObsHttpTest, HealthzAndErrorRoutes) {
  ChronicleDatabase db;
  BuildUnionFan(&db);
  AppendTicks(&db, 3);
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  const uint16_t port = db.monitoring_port();

  HttpReply health = Get(port, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.content_type.rfind("application/json", 0), 0u);
  EXPECT_TRUE(obs::ValidateJson(health.body).ok()) << health.body;
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"appends_processed\":3"), std::string::npos);

  EXPECT_EQ(Get(port, "/no/such/route").status, 404);
  EXPECT_EQ(Raw(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").status,
            405);
  EXPECT_EQ(Raw(port, "garbage\r\n\r\n").status, 400);
}

TEST(ObsHttpTest, PrometheusParsesAndCountersAreMonotone) {
  ChronicleDatabase db;
  BuildUnionFan(&db);
  AppendTicks(&db, 5);
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  const uint16_t port = db.monitoring_port();

  HttpReply first = Get(port, "/metrics");
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.content_type.rfind("text/plain", 0), 0u);
  std::string bad;
  EXPECT_TRUE(PrometheusParses(first.body, &bad)) << "bad line: " << bad;
  for (const char* family :
       {"chronicle_appends_processed_total", "chronicle_live_views",
        "chronicle_view_ticks_total", "chronicle_maintenance_tick_ns",
        "chronicle_trace_spans_emitted_total"}) {
    EXPECT_NE(first.body.find(family), std::string::npos)
        << "family missing: " << family;
    EXPECT_NE(first.body.find(std::string("# HELP ") + family),
              std::string::npos)
        << "HELP missing: " << family;
  }

  AppendTicks(&db, 5);
  HttpReply second = Get(port, "/metrics");
  EXPECT_TRUE(PrometheusParses(second.body, &bad)) << "bad line: " << bad;
  const double before =
      MetricValue(first.body, "chronicle_appends_processed_total");
  const double after =
      MetricValue(second.body, "chronicle_appends_processed_total");
  EXPECT_EQ(before, 5.0);
  EXPECT_EQ(after, 10.0);
  EXPECT_LT(before, after);  // the point: counters are monotone
}

TEST(ObsHttpTest, JsonRoutesAreValidJson) {
  ChronicleDatabase db(DatabaseOptions().set_history(16, 1000));
  BuildUnionFan(&db);
  AppendTicks(&db, 4);
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  const uint16_t port = db.monitoring_port();
  // Two off-schedule samples bracket one tick so /history.json has a
  // window without waiting out the sampler interval.
  AppendTicks(&db, 4);
  db.SampleStatsNow();

  for (const char* path : {"/stats.json", "/trace.json", "/history.json"}) {
    HttpReply reply = Get(port, path);
    EXPECT_EQ(reply.status, 200) << path;
    EXPECT_EQ(reply.content_type.rfind("application/json", 0), 0u) << path;
    EXPECT_TRUE(obs::ValidateJson(reply.body).ok())
        << path << ": " << reply.body.substr(0, 200);
  }
  HttpReply stats = Get(port, "/stats.json");
  EXPECT_NE(stats.body.find("\"appends_processed\":8"), std::string::npos);
  EXPECT_NE(stats.body.find("\"fan\""), std::string::npos);
  HttpReply history = Get(port, "/history.json");
  EXPECT_NE(history.body.find("\"windows\":["), std::string::npos);
}

TEST(ObsHttpTest, HistorySamplerProducesWindows) {
  // The sampler takes its first sample at StartMonitoring; SampleStatsNow
  // then closes a window deterministically (no interval sleeping).
  ChronicleDatabase db(DatabaseOptions().set_history(8, 10000));
  BuildUnionFan(&db);
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  ASSERT_NE(db.history(), nullptr);
  AppendTicks(&db, 6);
  db.SampleStatsNow();
  std::vector<obs::HistoryWindow> windows = db.history()->Windows();
  ASSERT_GE(windows.size(), 1u);
  const obs::HistoryWindow& last = windows.back();
  EXPECT_GT(last.view_ticks, 0u);
  EXPECT_GT(last.appends_per_sec, 0.0);
  const std::string json = obs::RenderHistoryJson(
      windows, db.history()->total_samples(), db.history()->capacity());
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json.substr(0, 200);
  EXPECT_FALSE(obs::RenderHistoryText(windows).empty());
}

TEST(ObsHttpTest, ExplainReportsPerSlotSharesSummingToOne) {
  ChronicleDatabase db(DatabaseOptions()
                           .set_profile_plan_slots(true)
                           .set_slot_sample_period(1));
  BuildUnionFan(&db);
  AppendTicks(&db, 8);

  Result<std::string> text = db.ExplainView("fan");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("shared subexpressions"), std::string::npos) << *text;
  EXPECT_NE(text->find("sampled ticks"), std::string::npos) << *text;
  EXPECT_NE(text->find("self"), std::string::npos);

  Result<std::string> json = db.ExplainViewJson("fan");
  ASSERT_TRUE(json.ok());
  ASSERT_TRUE(obs::ValidateJson(*json).ok()) << *json;
  EXPECT_NE(json->find("\"view\":\"fan\""), std::string::npos);
  EXPECT_EQ(json->find("\"sampled_ticks\":0"), std::string::npos)
      << "profiler sampled nothing: " << *json;
  // Self shares partition total self time: they must sum to ~1 (each share
  // is rounded to 4 decimals, so allow slack proportional to slot count).
  const double share_sum = SumJsonField(*json, "self_share");
  EXPECT_NEAR(share_sum, 1.0, 0.01) << *json;
  EXPECT_GT(SumJsonField(*json, "rows"), 0.0);

  // Unknown views are NotFound through both the API and the HTTP route.
  EXPECT_TRUE(db.ExplainView("nope").status().IsNotFound());
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  HttpReply ok_reply = Get(db.monitoring_port(), "/views/fan/explain.json");
  EXPECT_EQ(ok_reply.status, 200);
  EXPECT_TRUE(obs::ValidateJson(ok_reply.body).ok());
  HttpReply missing = Get(db.monitoring_port(), "/views/nope/explain.json");
  EXPECT_EQ(missing.status, 404);
  EXPECT_TRUE(obs::ValidateJson(missing.body).ok()) << missing.body;
}

TEST(ObsHttpTest, ProfilingTogglesAtRuntime) {
  ChronicleDatabase db;
  BuildUnionFan(&db);
  AppendTicks(&db, 2);
  // Off by default: EXPLAIN renders the plan but has no samples.
  Result<std::string> cold = db.ExplainViewJson("fan");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->find("\"self_share\""), std::string::npos) << *cold;
  db.SetPlanProfiling(true);
  AppendTicks(&db, 4);
  Result<std::string> warm = db.ExplainViewJson("fan");
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("\"self_share\""), std::string::npos) << *warm;
}

TEST(ObsHttpTest, FlightRecorderDumpsSlowTicks) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("chronicle_flight_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  {
    // A 1 ns budget makes every maintained tick "slow"; 3 dumps retained.
    ChronicleDatabase db(DatabaseOptions()
                             .set_slow_tick_budget_ns(1)
                             .set_flight_recorder(dir, 3));
    BuildUnionFan(&db);
    AppendTicks(&db, 8);
    EXPECT_GE(db.flight_recorder_dumps(), 8u);
  }
  size_t files = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    ++files;
    std::ifstream in(entry.path());
    std::string dump((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_TRUE(obs::ValidateJson(dump).ok()) << entry.path();
    EXPECT_NE(dump.find("\"sn\":"), std::string::npos);
    EXPECT_NE(dump.find("\"budget_ns\":1"), std::string::npos);
    EXPECT_NE(dump.find("\"snapshot\":"), std::string::npos);
    EXPECT_NE(dump.find("\"explain\":"), std::string::npos);
  }
  // Bounded: oldest dumps were deleted to keep at most max_dumps files.
  EXPECT_LE(files, 3u);
  EXPECT_GE(files, 1u);
  fs::remove_all(dir);
}

TEST(ObsHttpTest, ConcurrentScrapesDuringAppends) {
  // The monitoring endpoint is read while the main thread appends: the
  // obs_mutex_ consistency cut must keep every response well-formed. Under
  // TSan (CI regex includes this test) this is also the race proof for
  // the handler/sampler/maintenance triangle.
  ChronicleDatabase db(DatabaseOptions().set_history(32, 1));
  BuildUnionFan(&db);
  ASSERT_TRUE(db.StartMonitoring(0).ok());
  const uint16_t port = db.monitoring_port();
  std::thread scraper([port] {
    for (int i = 0; i < 20; ++i) {
      HttpReply stats = Get(port, "/stats.json");
      EXPECT_EQ(stats.status, 200);
      EXPECT_TRUE(obs::ValidateJson(stats.body).ok());
      HttpReply metrics = Get(port, "/metrics");
      EXPECT_EQ(metrics.status, 200);
    }
  });
  AppendTicks(&db, 200);
  scraper.join();
  db.StopMonitoring();
}

}  // namespace
}  // namespace chronicle
