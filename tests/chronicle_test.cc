#include "storage/chronicle.h"

#include <gtest/gtest.h>

#include "storage/chronicle_group.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64}, {"minutes", DataType::kInt64}});
}

TEST(ChronicleTest, RetainAllKeepsEverything) {
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::All()).value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group.Append(id, {Tuple{Value(i), Value(i * 2)}}).ok());
  }
  const Chronicle* c = group.GetChronicle(id).value();
  EXPECT_EQ(c->total_appended(), 10u);
  EXPECT_EQ(c->retained().size(), 10u);
  EXPECT_EQ(c->retained().front().values[0], Value(0));
  EXPECT_EQ(c->retained().back().values[0], Value(9));
}

TEST(ChronicleTest, RetainNoneStoresNothingButCounts) {
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
          .value();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(group.Append(id, {Tuple{Value(i), Value(1)}}).ok());
  }
  const Chronicle* c = group.GetChronicle(id).value();
  EXPECT_EQ(c->total_appended(), 5u);
  EXPECT_EQ(c->retained().size(), 0u);
  EXPECT_EQ(c->last_sn(), 5u);
  EXPECT_EQ(c->MemoryFootprint(), 0u);
}

TEST(ChronicleTest, RetainWindowKeepsSuffix) {
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(3))
          .value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(group.Append(id, {Tuple{Value(i), Value(1)}}).ok());
  }
  const Chronicle* c = group.GetChronicle(id).value();
  EXPECT_EQ(c->total_appended(), 10u);
  ASSERT_EQ(c->retained().size(), 3u);
  EXPECT_EQ(c->retained()[0].values[0], Value(7));
  EXPECT_EQ(c->retained()[2].values[0], Value(9));
}

TEST(ChronicleTest, WindowedMemoryIsBounded) {
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(8))
          .value();
  size_t peak = 0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(group.Append(id, {Tuple{Value(i), Value(1)}}).ok());
    peak = std::max(peak, group.GetChronicle(id).value()->MemoryFootprint());
  }
  // Footprint of 8 retained rows, with slack for container overhead.
  const Chronicle* c = group.GetChronicle(id).value();
  EXPECT_EQ(c->retained().size(), 8u);
  EXPECT_LE(c->MemoryFootprint(), peak);
  EXPECT_GT(c->MemoryFootprint(), 0u);
}

TEST(ChronicleTest, ScanRetainedVisitsInOrder) {
  ChronicleGroup group;
  ChronicleId id = group.CreateChronicle("calls", CallSchema()).value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(group.Append(id, {Tuple{Value(i), Value(1)}}).ok());
  }
  std::vector<SeqNum> sns;
  group.GetChronicle(id).value()->ScanRetained(
      [&](const ChronicleRow& row) { sns.push_back(row.sn); });
  EXPECT_EQ(sns, (std::vector<SeqNum>{1, 2, 3, 4}));
}

TEST(ChronicleTest, MultipleTuplesShareOneSn) {
  ChronicleGroup group;
  ChronicleId id = group.CreateChronicle("calls", CallSchema()).value();
  ASSERT_TRUE(
      group.Append(id, {Tuple{Value(1), Value(2)}, Tuple{Value(3), Value(4)}})
          .ok());
  const Chronicle* c = group.GetChronicle(id).value();
  ASSERT_EQ(c->retained().size(), 2u);
  EXPECT_EQ(c->retained()[0].sn, c->retained()[1].sn);
}

}  // namespace
}  // namespace chronicle
