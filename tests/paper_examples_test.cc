// Integration tests that walk through the paper's own running examples,
// asserting the exact behaviors the prose describes.

#include <gtest/gtest.h>

#include "baseline/naive_engine.h"
#include "cql/binder.h"
#include "db/database.h"

namespace chronicle {
namespace {

// Example 2.1: "an airline database for tracking frequent flyer miles...
// one chronicle (mileage transactions), at least one relation (customers),
// at least three persistent views: the mileage balance, the miles actually
// flown, and the premier status of each customer. The language must allow
// for aggregation and joins between the chronicle and the relation."
TEST(PaperExamplesTest, Example21FrequentFlyerDatabase) {
  ChronicleDatabase db;
  Schema flight_schema({{"acct", DataType::kInt64},
                        {"miles", DataType::kInt64},
                        {"bonus", DataType::kInt64}});
  Schema cust_schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
  ASSERT_TRUE(
      db.CreateChronicle("mileage", flight_schema, RetentionPolicy::None()).ok());
  ASSERT_TRUE(db.CreateRelation("customer", cust_schema, "acct").ok());
  ASSERT_TRUE(db.InsertInto("customer", Tuple{Value(1), Value("NJ")}).ok());

  CaExprPtr scan = db.ScanChronicle("mileage").value();

  // View 1: mileage balance (miles + bonuses).
  SummarySpec balance_spec =
      SummarySpec::GroupBy(scan->schema(), {"acct"},
                           {AggSpec::Sum("miles", "flown"),
                            AggSpec::Sum("bonus", "bonus")})
          .value();
  ASSERT_TRUE(db.CreateView("balance", scan, balance_spec).ok());

  // View 2: miles actually flown.
  SummarySpec flown_spec =
      SummarySpec::GroupBy(scan->schema(), {"acct"},
                           {AggSpec::Sum("miles", "flown")})
          .value();
  ASSERT_TRUE(db.CreateView("miles_flown", scan, flown_spec).ok());

  // View 3: premier status, derived from the balance with a CASE.
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches;
  branches.emplace_back(Ge(Col("total"), Lit(Value(50000))), Lit(Value("gold")));
  branches.emplace_back(Ge(Col("total"), Lit(Value(25000))),
                        Lit(Value("silver")));
  std::vector<ComputedColumn> premier;
  premier.push_back(ComputedColumn{
      "status", ScalarExpr::Case(std::move(branches), Lit(Value("bronze")))});
  SummarySpec premier_spec =
      SummarySpec::GroupBy(scan->schema(), {"acct"},
                           {AggSpec::Sum("miles", "total")})
          .value();
  ASSERT_TRUE(
      db.CreateView("premier", scan, premier_spec, std::move(premier)).ok());

  // Fly.
  ASSERT_TRUE(db.Append("mileage", {Tuple{Value(1), Value(20000), Value(0)}}).ok());
  ASSERT_TRUE(db.Append("mileage", {Tuple{Value(1), Value(10000), Value(500)}}).ok());

  EXPECT_EQ(db.QueryView("balance", {Value(1)}).value(),
            (Tuple{Value(1), Value(30000), Value(500)}));
  EXPECT_EQ(db.QueryView("miles_flown", {Value(1)}).value()[1], Value(30000));
  EXPECT_EQ(db.QueryView("premier", {Value(1)}).value()[2], Value("silver"));
}

// Example 2.2: "each customer living in New Jersey gets a bonus of 500
// miles on each flight... A flight tuple qualifies for the bonus only if
// the flight was made during the period of residence in New Jersey. An
// update to the relation is proactive if the address update occurs before
// the associated tuples are appended to the chronicle."
TEST(PaperExamplesTest, Example22NjBonusTemporalJoin) {
  ChronicleDatabase db;
  Schema flight_schema({{"acct", DataType::kInt64}, {"miles", DataType::kInt64}});
  Schema cust_schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
  ASSERT_TRUE(
      db.CreateChronicle("flights", flight_schema, RetentionPolicy::None()).ok());
  ASSERT_TRUE(db.CreateRelation("customer", cust_schema, "acct").ok());
  ASSERT_TRUE(db.InsertInto("customer", Tuple{Value(1), Value("NJ")}).ok());

  Relation* customer = db.GetRelation("customer").value();
  CaExprPtr joined =
      CaExpr::RelKeyJoin(db.ScanChronicle("flights").value(), customer, "acct")
          .value();
  CaExprPtr nj_only =
      CaExpr::Select(joined, Eq(Col("state"), Lit(Value("NJ")))).value();
  SummarySpec bonus_spec =
      SummarySpec::GroupBy(nj_only->schema(), {"acct"},
                           {AggSpec::Count("nj_flights")})
          .value();
  ASSERT_TRUE(db.CreateView("nj_bonus", nj_only, bonus_spec).ok());

  // Flight while resident in NJ: qualifies.
  ASSERT_TRUE(db.Append("flights", {Tuple{Value(1), Value(1000)}}).ok());
  // Proactive move out of NJ, BEFORE the next flight.
  ASSERT_TRUE(
      db.UpdateRelation("customer", Value(1), Tuple{Value(1), Value("CA")}).ok());
  // Flight while resident in CA: does not qualify.
  ASSERT_TRUE(db.Append("flights", {Tuple{Value(1), Value(1000)}}).ok());
  // Move back; qualifies again.
  ASSERT_TRUE(
      db.UpdateRelation("customer", Value(1), Tuple{Value(1), Value("NJ")}).ok());
  ASSERT_TRUE(db.Append("flights", {Tuple{Value(1), Value(1000)}}).ok());

  // 2 of the 3 flights earn the bonus: 1000 bonus miles at 500 each.
  Tuple row = db.QueryView("nj_bonus", {Value(1)}).value();
  EXPECT_EQ(row[1], Value(2));
  const int64_t bonus_miles = 500 * row[1].int64();
  EXPECT_EQ(bonus_miles, 1000);
}

// §1: "a summary query that computes the total number of minutes of calls
// made in the current billing month from a phone number... executed
// whenever a cellular phone is turned on", all in CQL.
TEST(PaperExamplesTest, Section1CellularPowerOnQuery) {
  ChronicleDatabase db;
  auto exec = [&](const std::string& sql) {
    Result<cql::ExecResult> result = cql::Execute(&db, sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status().ToString();
  };
  exec("CREATE CHRONICLE calls (number INT64, minutes INT64) RETAIN NONE");
  exec("CREATE PERIODIC VIEW monthly AS SELECT number, SUM(minutes) AS m "
       "FROM calls GROUP BY number OVER PERIOD 720");  // 720 h = 1 month
  exec("CREATE VIEW since_assigned AS SELECT number, SUM(minutes) AS m "
       "FROM calls GROUP BY number");

  exec("INSERT INTO calls VALUES (5551234, 12) AT 10");
  exec("INSERT INTO calls VALUES (5551234, 8) AT 500");
  exec("INSERT INTO calls VALUES (5551234, 40) AT 900");  // next month

  // Power-on display in month 1.
  const PeriodicViewSet* monthly = db.GetPeriodicView("monthly").value();
  EXPECT_EQ(monthly->Lookup(1, {Value(5551234)}).value()[1], Value(40));
  EXPECT_EQ(monthly->Lookup(0, {Value(5551234)}).value()[1], Value(20));
  // The customer-care query: total since the number was assigned.
  EXPECT_EQ(db.QueryView("since_assigned", {Value(5551234)}).value()[1],
            Value(60));
}

// §5.3's discount plan, checked against a hand-computed bill.
TEST(PaperExamplesTest, Section53TelephoneDiscountPlan) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle(
                    "calls",
                    Schema({{"number", DataType::kInt64},
                            {"charge", DataType::kDouble}}),
                    RetentionPolicy::None())
                  .ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  TieredSchedule plan =
      TieredSchedule::Make({{10.0, 0.10}, {25.0, 0.20}}).value();
  SummarySpec spec =
      SummarySpec::GroupBy(scan->schema(), {"number"},
                           {AggSpec::Sum("charge", "gross"),
                            AggSpec::TieredDiscount("charge", plan, "owed")})
          .value();
  ASSERT_TRUE(db.CreateView("bill", scan, spec).ok());

  auto owed = [&]() {
    return db.QueryView("bill", {Value(1)}).value()[2].dbl();
  };
  ASSERT_TRUE(db.Append("calls", {Tuple{Value(1), Value(8.0)}}).ok());
  EXPECT_DOUBLE_EQ(owed(), 8.0);  // below $10: no discount
  ASSERT_TRUE(db.Append("calls", {Tuple{Value(1), Value(8.0)}}).ok());
  EXPECT_DOUBLE_EQ(owed(), 16.0 * 0.9);  // exceeded $10: 10% off everything
  ASSERT_TRUE(db.Append("calls", {Tuple{Value(1), Value(12.0)}}).ok());
  EXPECT_DOUBLE_EQ(owed(), 28.0 * 0.8);  // exceeded $25: 20% off everything
}

// §3: "the size of the relations is assumed to be much smaller than the
// size of the chronicle" — and the class hierarchy must be reported to
// users so they can see what their view definition costs.
TEST(PaperExamplesTest, Section3ComplexityClassesSurfacedToUsers) {
  ChronicleDatabase db;
  auto exec = [&](const std::string& sql) {
    Result<cql::ExecResult> result = cql::Execute(&db, sql);
    EXPECT_TRUE(result.ok()) << sql;
    return result.ok() ? result->message : "";
  };
  exec("CREATE CHRONICLE c (a INT64, b INT64)");
  exec("CREATE RELATION r (a INT64, x STRING) KEY a");
  EXPECT_NE(exec("CREATE VIEW v1 AS SELECT a, SUM(b) AS s FROM c GROUP BY a")
                .find("IM-Constant"),
            std::string::npos);
  EXPECT_NE(exec("CREATE VIEW v2 AS SELECT x, SUM(b) AS s FROM c "
                 "JOIN r ON a = a GROUP BY x")
                .find("IM-log(R)"),
            std::string::npos);
  EXPECT_NE(exec("CREATE VIEW v3 AS SELECT COUNT(*) AS n FROM c CROSS JOIN r")
                .find("IM-R^k"),
            std::string::npos);
}

}  // namespace
}  // namespace chronicle
