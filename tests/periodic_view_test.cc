#include "periodic/periodic_view.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema TradeSchema() {
  return Schema({{"symbol", DataType::kString}, {"shares", DataType::kInt64}});
}

CaExprPtr ScanTrades() { return CaExpr::Scan(0, "trades", TradeSchema()).value(); }

SummarySpec SharesSpec() {
  return SummarySpec::GroupBy(TradeSchema(), {"symbol"},
                              {AggSpec::Sum("shares", "total")})
      .value();
}

AppendEvent Trade(SeqNum sn, Chronon chronon, const std::string& symbol,
                  int64_t shares) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = chronon;
  event.inserts.emplace_back(
      0, std::vector<Tuple>{Tuple{Value(symbol), Value(shares)}});
  return event;
}

TEST(PeriodicViewTest, MonthlyInstancesAccumulateIndependently) {
  auto cal = PeriodicCalendar::Make(0, 30).value();
  auto set =
      PeriodicViewSet::Make("monthly", ScanTrades(), SharesSpec(), cal).value();

  ASSERT_TRUE(set->ProcessAppend(Trade(1, 5, "IBM", 100)).ok());
  ASSERT_TRUE(set->ProcessAppend(Trade(2, 15, "IBM", 50)).ok());
  ASSERT_TRUE(set->ProcessAppend(Trade(3, 35, "IBM", 7)).ok());  // month 1

  EXPECT_EQ(set->num_active_instances(), 2u);
  EXPECT_EQ(set->Lookup(0, Tuple{Value("IBM")}).value()[1], Value(150));
  EXPECT_EQ(set->Lookup(1, Tuple{Value("IBM")}).value()[1], Value(7));
}

TEST(PeriodicViewTest, InstancesCreatedLazily) {
  auto cal = PeriodicCalendar::Make(0, 10).value();
  auto set =
      PeriodicViewSet::Make("lazy", ScanTrades(), SharesSpec(), cal).value();
  EXPECT_EQ(set->num_active_instances(), 0u);
  // Jump straight to interval 5; intervals 0-4 never materialize.
  ASSERT_TRUE(set->ProcessAppend(Trade(1, 55, "IBM", 1)).ok());
  EXPECT_EQ(set->num_active_instances(), 1u);
  EXPECT_EQ(set->instances_created(), 1u);
  EXPECT_TRUE(set->GetInstance(0).status().IsNotFound());
  EXPECT_TRUE(set->GetInstance(5).ok());
}

TEST(PeriodicViewTest, ExpirationReclaimsClosedInstances) {
  auto cal = PeriodicCalendar::Make(0, 10).value();
  PeriodicViewOptions options;
  options.expire_after = 15;  // keep ~1.5 closed periods
  auto set = PeriodicViewSet::Make("exp", ScanTrades(), SharesSpec(), cal,
                                   options)
                 .value();
  for (SeqNum sn = 1; sn <= 10; ++sn) {
    Chronon t = static_cast<Chronon>((sn - 1) * 10);  // one trade per period
    ASSERT_TRUE(set->ProcessAppend(Trade(sn, t, "IBM", 1)).ok());
  }
  // Now at chronon 90. Periods ending at <= 75 are expired.
  EXPECT_GT(set->instances_expired(), 0u);
  EXPECT_LT(set->num_active_instances(), 10u);
  EXPECT_TRUE(set->GetInstance(0).status().IsNotFound());
  EXPECT_TRUE(set->GetInstance(9).ok());
}

TEST(PeriodicViewTest, NoExpirationByDefault) {
  auto cal = PeriodicCalendar::Make(0, 10).value();
  auto set =
      PeriodicViewSet::Make("keep", ScanTrades(), SharesSpec(), cal).value();
  for (SeqNum sn = 1; sn <= 10; ++sn) {
    ASSERT_TRUE(
        set->ProcessAppend(Trade(sn, static_cast<Chronon>((sn - 1) * 10),
                                 "IBM", 1))
            .ok());
  }
  EXPECT_EQ(set->num_active_instances(), 10u);
  EXPECT_EQ(set->instances_expired(), 0u);
}

TEST(PeriodicViewTest, OverlappingSlidingInstancesEachSeeTheirWindow) {
  // Window 20, slide 10: each trade lands in 2 instances.
  auto cal = SlidingCalendar::Make(0, 20, 10).value();
  auto set =
      PeriodicViewSet::Make("moving", ScanTrades(), SharesSpec(), cal).value();
  ASSERT_TRUE(set->ProcessAppend(Trade(1, 5, "IBM", 10)).ok());   // inst 0
  ASSERT_TRUE(set->ProcessAppend(Trade(2, 15, "IBM", 20)).ok());  // inst 0,1
  ASSERT_TRUE(set->ProcessAppend(Trade(3, 25, "IBM", 40)).ok());  // inst 1,2

  EXPECT_EQ(set->Lookup(0, Tuple{Value("IBM")}).value()[1], Value(30));
  EXPECT_EQ(set->Lookup(1, Tuple{Value("IBM")}).value()[1], Value(60));
  EXPECT_EQ(set->Lookup(2, Tuple{Value("IBM")}).value()[1], Value(40));
}

TEST(PeriodicViewTest, EventOutsideEveryIntervalIsIgnored) {
  FixedCalendar* fixed = new FixedCalendar({{10, 20}});
  std::shared_ptr<const Calendar> cal(fixed);
  auto set =
      PeriodicViewSet::Make("fixed", ScanTrades(), SharesSpec(), cal).value();
  ASSERT_TRUE(set->ProcessAppend(Trade(1, 5, "IBM", 10)).ok());
  EXPECT_EQ(set->num_active_instances(), 0u);
  ASSERT_TRUE(set->ProcessAppend(Trade(2, 15, "IBM", 10)).ok());
  EXPECT_EQ(set->num_active_instances(), 1u);
}

TEST(PeriodicViewTest, MakeValidatesInputs) {
  auto cal = PeriodicCalendar::Make(0, 10).value();
  EXPECT_FALSE(
      PeriodicViewSet::Make("x", nullptr, SharesSpec(), cal).ok());
  EXPECT_FALSE(
      PeriodicViewSet::Make("x", ScanTrades(), SharesSpec(), nullptr).ok());
  CaExprPtr bad = CaExpr::ChronicleCross(ScanTrades(), ScanTrades()).value();
  SummarySpec bad_spec =
      SummarySpec::GroupBy(bad->schema(), {}, {AggSpec::Count()}).value();
  EXPECT_FALSE(PeriodicViewSet::Make("x", bad, bad_spec, cal).ok());
}

TEST(PeriodicViewTest, MemoryFootprintShrinksOnExpiration) {
  auto cal = PeriodicCalendar::Make(0, 10).value();
  PeriodicViewOptions options;
  options.expire_after = 0;  // drop instances the moment their interval ends
  auto set = PeriodicViewSet::Make("mem", ScanTrades(), SharesSpec(), cal,
                                   options)
                 .value();
  ASSERT_TRUE(set->ProcessAppend(Trade(1, 5, "IBM", 1)).ok());
  size_t with_one = set->MemoryFootprint();
  EXPECT_GT(with_one, 0u);
  // Next period: previous instance expires.
  ASSERT_TRUE(set->ProcessAppend(Trade(2, 15, "IBM", 1)).ok());
  EXPECT_EQ(set->num_active_instances(), 1u);
  EXPECT_EQ(set->instances_expired(), 1u);
}

}  // namespace
}  // namespace chronicle
