// Replayable backfill: RegisterViewWithBackfill on a database that has
// already processed appends must produce a view byte-identical to one
// registered before SN 1 — across retention modes (All in memory, Tiered
// with most history in warm segments) and across both execution engines
// (interpreter and compiled delta plans).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "db/database.h"
#include "workload/call_records.h"

namespace chronicle {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_backfill_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

enum class Tiering { kAllInMemory, kTiered };

DatabaseOptions MakeOptions(Tiering tiering, bool compiled,
                            const std::string& dir) {
  DatabaseOptions options;
  options.maintenance.use_compiled_plans = compiled;
  if (tiering == Tiering::kTiered) {
    store::StorageOptions storage;
    storage.data_dir = dir;
    storage.hot_rows = 16;   // tiny hot window: most history lives on disk
    storage.segment_rows = 8;
    options.storage = storage;
  }
  return options;
}

RetentionPolicy PolicyFor(Tiering tiering) {
  return tiering == Tiering::kTiered ? RetentionPolicy::Tiered(16)
                                     : RetentionPolicy::All();
}

void CreateMinutesView(ChronicleDatabase* db) {
  CaExprPtr scan = db->ScanChronicle("calls").value();
  ASSERT_TRUE(db->CreateView("minutes", scan,
                             SummarySpec::GroupBy(scan->schema(), {"caller"},
                                                  {AggSpec::Sum("minutes", "m"),
                                                   AggSpec::Count("n")})
                                 .value())
                  .ok());
}

void AppendWorkload(ChronicleDatabase* db, int ticks) {
  CallRecordGenerator gen;
  for (int i = 0; i < ticks; ++i) {
    // Varying batch sizes exercise multi-row SNs across the tier boundary.
    ASSERT_TRUE(db->Append("calls", gen.NextBatch(1 + i % 3)).ok());
  }
}

// Registered-at-SN-0 reference vs late registration with backfill.
void RunEquivalence(Tiering tiering, bool compiled) {
  ScratchDir ref_dir("ref"), late_dir("late");
  const int kTicks = 120;

  ChronicleDatabase reference(MakeOptions(tiering, compiled, ref_dir.path));
  ASSERT_TRUE(reference
                  .CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                                   PolicyFor(tiering))
                  .ok());
  CreateMinutesView(&reference);
  AppendWorkload(&reference, kTicks);

  ChronicleDatabase late(MakeOptions(tiering, compiled, late_dir.path));
  ASSERT_TRUE(late.CreateChronicle("calls",
                                   CallRecordGenerator::RecordSchema(),
                                   PolicyFor(tiering))
                  .ok());
  AppendWorkload(&late, kTicks);

  CaExprPtr scan = late.ScanChronicle("calls").value();
  auto report = late.RegisterViewWithBackfill(
      "minutes", scan,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->events_replayed, 0u);
  EXPECT_EQ(report->rows_replayed,
            late.group().GetChronicle(0).value()->total_appended());

  EXPECT_EQ(late.ScanView("minutes").value(),
            reference.ScanView("minutes").value());

  // The backfilled view keeps maintaining: more appends stay equivalent.
  AppendWorkload(&reference, 10);
  AppendWorkload(&late, 10);
  EXPECT_EQ(late.ScanView("minutes").value(),
            reference.ScanView("minutes").value());
}

TEST(Backfill, AllRetentionInterpreter) {
  RunEquivalence(Tiering::kAllInMemory, /*compiled=*/false);
}
TEST(Backfill, AllRetentionCompiled) {
  RunEquivalence(Tiering::kAllInMemory, /*compiled=*/true);
}
TEST(Backfill, TieredRetentionInterpreter) {
  RunEquivalence(Tiering::kTiered, /*compiled=*/false);
}
TEST(Backfill, TieredRetentionCompiled) {
  RunEquivalence(Tiering::kTiered, /*compiled=*/true);
}

TEST(Backfill, TieredSpillsActuallyHappened) {
  // Guard against the tiered variants silently degenerating to in-memory:
  // the workload must have pushed most rows into warm segments.
  ScratchDir dir("spillcheck");
  ChronicleDatabase db(MakeOptions(Tiering::kTiered, false, dir.path));
  ASSERT_TRUE(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                                 PolicyFor(Tiering::kTiered))
                  .ok());
  AppendWorkload(&db, 120);
  ASSERT_NE(db.tiered_store(), nullptr);
  EXPECT_GT(db.tiered_store()->WarmRows(0), 100u);

  CaExprPtr scan = db.ScanChronicle("calls").value();
  auto report = db.RegisterViewWithBackfill(
      "minutes", scan,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // Replayed rows came (mostly) from disk, not the hot window.
  EXPECT_GT(report->rows_replayed, db.tiered_store()->WarmRows(0));
}

TEST(Backfill, BackfillOnEmptyChronicleIsANoop) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallRecordGenerator::RecordSchema()).ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  auto report = db.RegisterViewWithBackfill(
      "minutes", scan,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Count("n")})
          .value());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->events_replayed, 0u);
  EXPECT_EQ(report->rows_replayed, 0u);
  EXPECT_TRUE(db.ScanView("minutes").value().empty());
}

TEST(Backfill, DiscardedHistoryFailsButViewStaysRegistered) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                                 RetentionPolicy::Window(5))
                  .ok());
  CallRecordGenerator gen;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(db.Append("calls", gen.NextBatch(1)).ok());
  }
  CaExprPtr scan = db.ScanChronicle("calls").value();
  auto report = db.RegisterViewWithBackfill(
      "minutes", scan,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Count("n")})
          .value());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
  // The view exists and is maintained from now on.
  ASSERT_TRUE(db.ScanView("minutes").ok());
  ASSERT_TRUE(db.Append("calls", gen.NextBatch(2)).ok());
  EXPECT_FALSE(db.ScanView("minutes").value().empty());
}

TEST(Backfill, ReportCountsDeltaRows) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallRecordGenerator::RecordSchema()).ok());
  AppendWorkload(&db, 40);
  CaExprPtr scan = db.ScanChronicle("calls").value();
  auto report = db.RegisterViewWithBackfill(
      "minutes", scan,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m")})
          .value());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->delta_rows_applied, 0u);
  EXPECT_EQ(report->events_replayed, 40u);
}

}  // namespace
}  // namespace chronicle
