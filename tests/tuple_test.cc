#include "types/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace chronicle {
namespace {

TEST(TupleTest, Equality) {
  Tuple a{Value(1), Value("x")};
  Tuple b{Value(1), Value("x")};
  Tuple c{Value(1), Value("y")};
  EXPECT_TRUE(TupleEquals(a, b));
  EXPECT_FALSE(TupleEquals(a, c));
  EXPECT_FALSE(TupleEquals(a, Tuple{Value(1)}));
}

TEST(TupleTest, CompareLexicographic) {
  Tuple a{Value(1), Value(2)};
  Tuple b{Value(1), Value(3)};
  EXPECT_LT(TupleCompare(a, b), 0);
  EXPECT_GT(TupleCompare(b, a), 0);
  EXPECT_EQ(TupleCompare(a, a), 0);
  // Prefix sorts before longer tuple.
  EXPECT_LT(TupleCompare(Tuple{Value(1)}, a), 0);
}

TEST(TupleTest, HashConsistentWithEquality) {
  Tuple a{Value(2), Value("x")};
  Tuple b{Value(2.0), Value("x")};  // cross-type equal
  EXPECT_TRUE(TupleEquals(a, b));
  EXPECT_EQ(TupleHashValue(a), TupleHashValue(b));
}

TEST(TupleTest, WorksInUnorderedSet) {
  std::unordered_set<Tuple, TupleHash, TupleEq> set;
  set.insert(Tuple{Value(1), Value("a")});
  set.insert(Tuple{Value(1), Value("a")});
  set.insert(Tuple{Value(2), Value("a")});
  EXPECT_EQ(set.size(), 2u);
}

TEST(TupleTest, ToStringRendering) {
  EXPECT_EQ(TupleToString(Tuple{Value(1), Value("x")}), "(1, \"x\")");
  EXPECT_EQ(TupleToString(Tuple{}), "()");
}

TEST(ChronicleRowTest, EqualityIncludesSn) {
  ChronicleRow a{1, Tuple{Value(5)}};
  ChronicleRow b{1, Tuple{Value(5)}};
  ChronicleRow c{2, Tuple{Value(5)}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(ChronicleRowTest, ToStringRendering) {
  ChronicleRow row{7, Tuple{Value(42)}};
  EXPECT_EQ(ChronicleRowToString(row), "[sn=7 | (42)]");
}

TEST(ValidateTupleTest, AcceptsMatchingTuple) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_TRUE(ValidateTuple(schema, Tuple{Value(1), Value("x")}).ok());
}

TEST(ValidateTupleTest, AcceptsNulls) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_TRUE(ValidateTuple(schema, Tuple{Value(), Value()}).ok());
}

TEST(ValidateTupleTest, RejectsArityMismatch) {
  Schema schema({{"a", DataType::kInt64}});
  Status st = ValidateTuple(schema, Tuple{Value(1), Value(2)});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ValidateTupleTest, RejectsTypeMismatch) {
  Schema schema({{"a", DataType::kInt64}});
  Status st = ValidateTuple(schema, Tuple{Value("not an int")});
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("'a'"), std::string::npos);
}

TEST(ValidateTupleTest, IntIsNotDouble) {
  Schema schema({{"a", DataType::kDouble}});
  EXPECT_FALSE(ValidateTuple(schema, Tuple{Value(1)}).ok());
  EXPECT_TRUE(ValidateTuple(schema, Tuple{Value(1.0)}).ok());
}

}  // namespace
}  // namespace chronicle
