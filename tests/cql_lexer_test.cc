#include "cql/lexer.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace cql {
namespace {

std::vector<Token> Lex(const std::string& input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? *tokens : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersCarryUppercase) {
  std::vector<Token> tokens = Lex("select Foo_1 $sn");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].text, "Foo_1");
  EXPECT_EQ(tokens[2].text, "$sn");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  std::vector<Token> tokens = Lex("42 3.5 1e3 2.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.025);
}

TEST(LexerTest, StringLiteralsWithEscapedQuotes) {
  std::vector<Token> tokens = Lex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringIsParseError) {
  Result<std::vector<Token>> tokens = Tokenize("'oops");
  ASSERT_FALSE(tokens.ok());
  EXPECT_TRUE(tokens.status().IsParseError());
}

TEST(LexerTest, TwoCharOperators) {
  std::vector<Token> tokens = Lex("<= >= <> !=");
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>");  // != normalizes to <>
}

TEST(LexerTest, SingleCharSymbols) {
  std::vector<Token> tokens = Lex("( ) , ; * = < > + - / : .");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol) << i;
  }
}

TEST(LexerTest, CommentsSkippedToEndOfLine) {
  std::vector<Token> tokens = Lex("a -- this is a comment\n b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, MinusAloneIsSymbol) {
  std::vector<Token> tokens = Lex("a - b");
  EXPECT_EQ(tokens[1].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[1].text, "-");
}

TEST(LexerTest, IllegalCharacterReported) {
  Result<std::vector<Token>> tokens = Tokenize("a # b");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("#"), std::string::npos);
}

TEST(LexerTest, PositionsRecorded) {
  std::vector<Token> tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

}  // namespace
}  // namespace cql
}  // namespace chronicle
