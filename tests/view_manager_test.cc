#include "views/view_manager.h"

#include <gtest/gtest.h>

#include "storage/chronicle_group.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

// A per-region SUM(minutes) view guarded by region = <region>.
std::unique_ptr<PersistentView> RegionView(ViewId id, const std::string& region) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr plan =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value(region)))).value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  return PersistentView::Make(id, "region_" + region, plan, spec).value();
}

// An unguarded view over all calls.
std::unique_ptr<PersistentView> AllCallsView(ViewId id) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  SummarySpec spec =
      SummarySpec::GroupBy(scan->schema(), {}, {AggSpec::Count("n")}).value();
  return PersistentView::Make(id, "all_calls", scan, spec).value();
}

AppendEvent Event(SeqNum sn, std::vector<Tuple> tuples) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = static_cast<Chronon>(sn);
  event.inserts.emplace_back(0, std::move(tuples));
  return event;
}

class RoutingModeTest : public ::testing::TestWithParam<RoutingMode> {};

TEST_P(RoutingModeTest, AllModesProduceIdenticalViewContents) {
  ViewManager manager(GetParam());
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  ASSERT_TRUE(manager.AddView(RegionView(1, "NY")).ok());
  ASSERT_TRUE(manager.AddView(AllCallsView(2)).ok());

  ASSERT_TRUE(manager.ProcessAppend(Event(1, {Call(1, "NJ", 5)})).ok());
  ASSERT_TRUE(manager.ProcessAppend(Event(2, {Call(2, "NY", 7)})).ok());
  ASSERT_TRUE(manager.ProcessAppend(Event(3, {Call(1, "NJ", 3)})).ok());
  ASSERT_TRUE(manager.ProcessAppend(Event(4, {Call(3, "CA", 9)})).ok());

  PersistentView* nj = manager.FindView("region_NJ").value();
  EXPECT_EQ(nj->Lookup(Tuple{Value(1)}).value()[1], Value(8));
  PersistentView* ny = manager.FindView("region_NY").value();
  EXPECT_EQ(ny->Lookup(Tuple{Value(2)}).value()[1], Value(7));
  PersistentView* all = manager.FindView("all_calls").value();
  EXPECT_EQ(all->Lookup(Tuple{}).value()[0], Value(4));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, RoutingModeTest,
    ::testing::Values(RoutingMode::kCheckAll, RoutingMode::kGuards,
                      RoutingMode::kEqIndex),
    [](const ::testing::TestParamInfo<RoutingMode>& info) {
      switch (info.param) {
        case RoutingMode::kCheckAll:
          return "CheckAll";
        case RoutingMode::kGuards:
          return "Guards";
        case RoutingMode::kEqIndex:
          return "EqIndex";
      }
      return "Unknown";
    });

TEST(ViewManagerTest, DuplicateNameRejected) {
  ViewManager manager;
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  EXPECT_TRUE(manager.AddView(RegionView(1, "NJ")).status().IsAlreadyExists());
}

TEST(ViewManagerTest, FindAndGet) {
  ViewManager manager;
  ViewId id = manager.AddView(RegionView(0, "NJ")).value();
  EXPECT_TRUE(manager.GetView(id).ok());
  EXPECT_TRUE(manager.GetView(99).status().IsNotFound());
  EXPECT_TRUE(manager.FindView("region_NJ").ok());
  EXPECT_TRUE(manager.FindView("zzz").status().IsNotFound());
}

TEST(ViewManagerTest, CheckAllConsidersEveryView) {
  ViewManager manager(RoutingMode::kCheckAll);
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  ASSERT_TRUE(manager.AddView(RegionView(1, "NY")).ok());
  MaintenanceReport report =
      manager.ProcessAppend(Event(1, {Call(1, "CA", 5)})).value();
  EXPECT_EQ(report.views_considered, 2u);
  EXPECT_EQ(report.views_updated, 0u);  // CA matches neither guard
  EXPECT_EQ(report.views_skipped, 0u);
}

TEST(ViewManagerTest, GuardsSkipNonMatchingViews) {
  ViewManager manager(RoutingMode::kGuards);
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  ASSERT_TRUE(manager.AddView(RegionView(1, "NY")).ok());
  ASSERT_TRUE(manager.AddView(AllCallsView(2)).ok());

  MaintenanceReport report =
      manager.ProcessAppend(Event(1, {Call(1, "NJ", 5)})).value();
  // NY view skipped by its guard; NJ + all_calls maintained.
  EXPECT_EQ(report.views_considered, 2u);
  EXPECT_EQ(report.views_updated, 2u);
  EXPECT_EQ(report.views_skipped, 1u);
}

TEST(ViewManagerTest, EqIndexProbesOnlyMatchingLiteral) {
  ViewManager manager(RoutingMode::kEqIndex);
  // 50 per-region views; an append to one region must consider ~1.
  const char* regions[] = {"R0", "R1", "R2", "R3", "R4"};
  for (ViewId i = 0; i < 50; ++i) {
    ASSERT_TRUE(manager.AddView(RegionView(i, regions[i % 5] +
                                                  std::string("_") +
                                                  std::to_string(i)))
                    .ok());
  }
  // Views have guards region = "R0_0", "R1_1", ...; append "R1_1".
  MaintenanceReport report =
      manager.ProcessAppend(Event(1, {Call(1, "R1_1", 5)})).value();
  EXPECT_EQ(report.views_considered, 1u);
  EXPECT_EQ(report.views_updated, 1u);
  EXPECT_EQ(report.views_skipped, 49u);
}

TEST(ViewManagerTest, EqIndexStillRoutesUnguardedViews) {
  ViewManager manager(RoutingMode::kEqIndex);
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  ASSERT_TRUE(manager.AddView(AllCallsView(1)).ok());
  MaintenanceReport report =
      manager.ProcessAppend(Event(1, {Call(1, "TX", 5)})).value();
  // The eq-indexed NJ view is not probed; all_calls still maintained.
  EXPECT_EQ(report.views_considered, 1u);
  EXPECT_EQ(report.views_updated, 1u);
}

TEST(ViewManagerTest, EventForUnrelatedChronicleTouchesNothing) {
  ViewManager manager(RoutingMode::kEqIndex);
  ASSERT_TRUE(manager.AddView(RegionView(0, "NJ")).ok());
  AppendEvent event;
  event.sn = 1;
  event.chronon = 1;
  event.inserts.emplace_back(7, std::vector<Tuple>{Call(1, "NJ", 5)});
  MaintenanceReport report = manager.ProcessAppend(event).value();
  EXPECT_EQ(report.views_considered, 0u);
  EXPECT_EQ(report.views_updated, 0u);
}

TEST(ViewManagerTest, MultiScanViewRoutedThroughResidualList) {
  // A union of two selections over the same chronicle is not eq-indexable
  // (two scans); it must still be maintained correctly.
  ViewManager manager(RoutingMode::kEqIndex);
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr nj =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  CaExprPtr ny =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NY")))).value();
  CaExprPtr plan = CaExpr::Union(nj, ny).value();
  SummarySpec spec =
      SummarySpec::GroupBy(plan->schema(), {}, {AggSpec::Count("n")}).value();
  ASSERT_TRUE(
      manager.AddView(PersistentView::Make(0, "nj_ny", plan, spec).value()).ok());

  ASSERT_TRUE(manager.ProcessAppend(Event(1, {Call(1, "NJ", 5)})).ok());
  ASSERT_TRUE(manager.ProcessAppend(Event(2, {Call(2, "TX", 5)})).ok());
  ASSERT_TRUE(manager.ProcessAppend(Event(3, {Call(3, "NY", 5)})).ok());
  PersistentView* view = manager.FindView("nj_ny").value();
  EXPECT_EQ(view->Lookup(Tuple{}).value()[0], Value(2));
}

TEST(ViewManagerTest, GuardSkipsAreCheaperThanDeltas) {
  // Behavioral check on the report: with guards, a non-matching append is
  // skipped without being "considered".
  ViewManager guards(RoutingMode::kGuards);
  ASSERT_TRUE(guards.AddView(RegionView(0, "NJ")).ok());
  MaintenanceReport report =
      guards.ProcessAppend(Event(1, {Call(1, "TX", 5)})).value();
  EXPECT_EQ(report.views_considered, 0u);
  EXPECT_EQ(report.views_skipped, 1u);
}

TEST(ViewManagerTest, MemoryFootprintSumsViews) {
  ViewManager manager;
  ASSERT_TRUE(manager.AddView(AllCallsView(0)).ok());
  size_t before = manager.MemoryFootprint();
  ASSERT_TRUE(manager.ProcessAppend(Event(1, {Call(1, "NJ", 5)})).ok());
  EXPECT_GE(manager.MemoryFootprint(), before);
}

}  // namespace
}  // namespace chronicle
