// Tests for the per-tick DeltaCache (DAG sharing across plans/views).

#include <gtest/gtest.h>

#include "algebra/delta_engine.h"
#include "views/view_manager.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

AppendEvent Event(SeqNum sn, std::vector<Tuple> tuples) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = static_cast<Chronon>(sn);
  event.inserts.emplace_back(0, std::move(tuples));
  return event;
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

TEST(DeltaCacheTest, SharedNodeComputedOncePerTick) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr filtered =
      CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(0)))).value();
  // Two plans sharing `filtered` as a subexpression.
  CaExprPtr plan_a = CaExpr::Project(filtered, {"caller"}).value();
  CaExprPtr plan_b = CaExpr::Project(filtered, {"region"}).value();

  DeltaEngine engine;
  DeltaCache cache;
  AppendEvent event = Event(1, {Call(1, "NJ", 5), Call(2, "NY", 7)});

  ASSERT_TRUE(engine.ComputeDelta(*plan_a, event, nullptr, &cache).ok());
  const uint64_t misses_after_a = cache.misses();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(misses_after_a, 3u);  // scan, select, project_a

  ASSERT_TRUE(engine.ComputeDelta(*plan_b, event, nullptr, &cache).ok());
  // plan_b re-used the select (the memo short-circuits at the highest
  // shared node, so the scan below it is not even consulted); only its own
  // projection was computed.
  EXPECT_EQ(cache.misses(), misses_after_a + 1);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DeltaCacheTest, RepeatedPlanIsFullyCached) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr plan =
      CaExpr::GroupBySeq(scan, {"region"}, {AggSpec::Sum("minutes", "m")})
          .value();
  DeltaEngine engine;
  DeltaCache cache;
  AppendEvent event = Event(1, {Call(1, "NJ", 5)});
  auto first = engine.ComputeDelta(*plan, event, nullptr, &cache).value();
  auto second = engine.ComputeDelta(*plan, event, nullptr, &cache).value();
  EXPECT_EQ(first.size(), second.size());
  // One hit: the root short-circuits, children are never re-visited.
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(DeltaCacheTest, ClearResetsMemoButKeepsCounters) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  DeltaEngine engine;
  DeltaCache cache;
  ASSERT_TRUE(
      engine.ComputeDelta(*scan, Event(1, {Call(1, "NJ", 5)}), nullptr, &cache)
          .ok());
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  // A new tick recomputes rather than serving stale data.
  auto delta = engine
                   .ComputeDelta(*scan, Event(2, {Call(9, "TX", 1)}), nullptr,
                                 &cache)
                   .value();
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].values[0], Value(9));
}

TEST(DeltaCacheTest, StaleCacheWouldServeOldTick) {
  // Documented sharp edge: a cache is only valid for one event. This test
  // pins the contract (and is why ViewManager clears per append).
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  DeltaEngine engine;
  DeltaCache cache;
  ASSERT_TRUE(
      engine.ComputeDelta(*scan, Event(1, {Call(1, "NJ", 5)}), nullptr, &cache)
          .ok());
  // WITHOUT clearing, the next event gets tick 1's payloads.
  auto stale = engine
                   .ComputeDelta(*scan, Event(2, {Call(9, "TX", 1)}), nullptr,
                                 &cache)
                   .value();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].values[0], Value(1));  // tick 1's row, as specified
}

TEST(DeltaCacheTest, ViewManagerSharesScanAcrossViews) {
  // Views registered over the SAME scan node trigger cache hits inside
  // ProcessAppend. Cross-view sharing through DeltaCache is an interpreter
  // mechanism — compiled plans share subexpressions within a plan by slot
  // construction instead — so this test pins the interpreter path.
  ViewManager manager(RoutingMode::kCheckAll);
  MaintenanceOptions interpreted;
  interpreted.use_compiled_plans = false;
  manager.set_maintenance_options(interpreted);
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  for (int i = 0; i < 4; ++i) {
    SummarySpec spec =
        SummarySpec::GroupBy(scan->schema(), {"caller"},
                             {AggSpec::Sum("minutes", "m" + std::to_string(i))})
            .value();
    ASSERT_TRUE(
        manager
            .AddView(PersistentView::Make(static_cast<ViewId>(i),
                                          "v" + std::to_string(i), scan, spec)
                         .value())
            .ok());
  }
  ASSERT_TRUE(manager.ProcessAppend(Event(1, {Call(1, "NJ", 5)})).ok());
  // 4 views over 1 shared scan: 1 miss, 3 hits.
  EXPECT_EQ(manager.delta_cache_misses(), 1u);
  EXPECT_EQ(manager.delta_cache_hits(), 3u);

  // The cache resets between ticks: counts accumulate but stay correct.
  ASSERT_TRUE(manager.ProcessAppend(Event(2, {Call(2, "NY", 7)})).ok());
  EXPECT_EQ(manager.delta_cache_misses(), 2u);
  EXPECT_EQ(manager.delta_cache_hits(), 6u);
  // And the views saw both ticks.
  PersistentView* v0 = manager.FindView("v0").value();
  EXPECT_EQ(v0->ticks_applied(), 2u);
}

}  // namespace
}  // namespace chronicle
