// Tests for the extended CQL surface: periodic and sliding view DDL (§5.1
// declaratively), EXPLAIN VIEW, SHOW, and CHECKPOINT/RESTORE.

#include <gtest/gtest.h>

#include <cstdio>

#include "cql/binder.h"

namespace chronicle {
namespace cql {
namespace {

// --- parser coverage for the new statements ---

template <typename T>
T Parse(const std::string& sql) {
  Result<Statement> stmt = ParseStatement(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  T* typed = stmt.ok() ? std::get_if<T>(&stmt.value()) : nullptr;
  EXPECT_NE(typed, nullptr) << "wrong statement type for: " << sql;
  return typed != nullptr ? std::move(*typed) : T{};
}

TEST(ExtensionParserTest, CreatePeriodicView) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE PERIODIC VIEW monthly AS SELECT caller, SUM(minutes) AS m "
      "FROM calls GROUP BY caller OVER PERIOD 720 ORIGIN 100 EXPIRE AFTER "
      "1440");
  EXPECT_EQ(stmt.target.kind, ViewTarget::Kind::kPeriodic);
  EXPECT_EQ(stmt.target.period, 720);
  EXPECT_EQ(stmt.target.origin, 100);
  EXPECT_EQ(stmt.target.expire_after, 1440);
}

TEST(ExtensionParserTest, PeriodicDefaults) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE PERIODIC VIEW m AS SELECT COUNT(*) AS n FROM c OVER PERIOD 30");
  EXPECT_EQ(stmt.target.origin, 0);
  EXPECT_EQ(stmt.target.expire_after, -1);
}

TEST(ExtensionParserTest, CreateSlidingView) {
  auto stmt = Parse<CreateViewStmt>(
      "CREATE SLIDING VIEW moving AS SELECT symbol, SUM(shares) AS s "
      "FROM trades GROUP BY symbol OVER WINDOW 30 PANES OF 1 ORIGIN 5");
  EXPECT_EQ(stmt.target.kind, ViewTarget::Kind::kSliding);
  EXPECT_EQ(stmt.target.num_panes, 30);
  EXPECT_EQ(stmt.target.pane_width, 1);
  EXPECT_EQ(stmt.target.origin, 5);
}

TEST(ExtensionParserTest, PeriodicRequiresOverClause) {
  EXPECT_FALSE(
      ParseStatement("CREATE PERIODIC VIEW m AS SELECT COUNT(*) AS n FROM c")
          .ok());
}

TEST(ExtensionParserTest, ExplainShowCheckpointRestore) {
  EXPECT_EQ(Parse<ExplainStmt>("EXPLAIN VIEW balances").view, "balances");
  EXPECT_EQ(Parse<ShowStmt>("SHOW CHRONICLES").what,
            ShowStmt::What::kChronicles);
  EXPECT_EQ(Parse<ShowStmt>("SHOW RELATIONS").what, ShowStmt::What::kRelations);
  EXPECT_EQ(Parse<ShowStmt>("SHOW VIEWS").what, ShowStmt::What::kViews);
  EXPECT_EQ(Parse<CheckpointStmt>("CHECKPOINT TO '/tmp/x.ckpt'").path,
            "/tmp/x.ckpt");
  EXPECT_EQ(Parse<RestoreStmt>("RESTORE FROM '/tmp/x.ckpt'").path,
            "/tmp/x.ckpt");
  EXPECT_FALSE(ParseStatement("SHOW TABLES").ok());
  EXPECT_FALSE(ParseStatement("CHECKPOINT TO unquoted").ok());
}

// --- end-to-end execution ---

class ExtensionBinderTest : public ::testing::Test {
 protected:
  void Exec(const std::string& sql) {
    Result<ExecResult> result = Execute(&db_, sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    last_ = std::move(result).value();
  }

  ChronicleDatabase db_;
  ExecResult last_;
};

TEST_F(ExtensionBinderTest, PeriodicViewEndToEnd) {
  Exec("CREATE CHRONICLE calls (caller INT64, minutes INT64) RETAIN NONE");
  Exec("CREATE PERIODIC VIEW monthly AS SELECT caller, SUM(minutes) AS m "
       "FROM calls GROUP BY caller OVER PERIOD 30");
  EXPECT_NE(last_.message.find("periodic view monthly created"),
            std::string::npos);
  Exec("INSERT INTO calls VALUES (1, 10) AT 5");
  Exec("INSERT INTO calls VALUES (1, 20) AT 35");
  const PeriodicViewSet* monthly = db_.GetPeriodicView("monthly").value();
  EXPECT_EQ(monthly->Lookup(0, Tuple{Value(1)}).value()[1], Value(10));
  EXPECT_EQ(monthly->Lookup(1, Tuple{Value(1)}).value()[1], Value(20));
}

TEST_F(ExtensionBinderTest, SlidingViewEndToEnd) {
  Exec("CREATE CHRONICLE trades (symbol STRING, shares INT64) RETAIN NONE");
  Exec("CREATE SLIDING VIEW moving AS SELECT symbol, SUM(shares) AS s "
       "FROM trades GROUP BY symbol OVER WINDOW 3 PANES OF 10");
  Exec("INSERT INTO trades VALUES ('IBM', 100) AT 5");
  Exec("INSERT INTO trades VALUES ('IBM', 50) AT 25");
  const SlidingWindowView* moving = db_.GetSlidingView("moving").value();
  EXPECT_EQ(moving->QueryWindow(Tuple{Value("IBM")}).value()[1], Value(150));
}

TEST_F(ExtensionBinderTest, ExplainViewReportsPlanAndClass) {
  Exec("CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64)");
  Exec("CREATE VIEW nj AS SELECT caller, SUM(minutes) AS m FROM calls "
       "WHERE region = 'NJ' GROUP BY caller");
  Exec("EXPLAIN VIEW nj");
  EXPECT_NE(last_.message.find("Select"), std::string::npos);
  EXPECT_NE(last_.message.find("Scan(calls)"), std::string::npos);
  EXPECT_NE(last_.message.find("IM-Constant"), std::string::npos);
  EXPECT_NE(last_.message.find("GROUPBY"), std::string::npos);

  Result<ExecResult> missing = Execute(&db_, "EXPLAIN VIEW nope");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(ExtensionBinderTest, ExplainCoversPeriodicAndSlidingViews) {
  Exec("CREATE CHRONICLE c (a INT64, b INT64)");
  Exec("CREATE PERIODIC VIEW p AS SELECT a, SUM(b) AS s FROM c GROUP BY a "
       "OVER PERIOD 30");
  Exec("CREATE SLIDING VIEW w AS SELECT a, SUM(b) AS s FROM c GROUP BY a "
       "OVER WINDOW 4 PANES OF 5");
  Exec("EXPLAIN VIEW p");
  EXPECT_NE(last_.message.find("periodic view p"), std::string::npos);
  EXPECT_NE(last_.message.find("period=30"), std::string::npos);
  Exec("EXPLAIN VIEW w");
  EXPECT_NE(last_.message.find("4 panes of 5"), std::string::npos);
  EXPECT_NE(last_.message.find("IM-Constant"), std::string::npos);
}

TEST_F(ExtensionBinderTest, ExplainFlagsNonDefinition41Predicates) {
  Exec("CREATE CHRONICLE c (a INT64, b INT64)");
  // Conjunction is outside the paper's strict predicate grammar.
  Exec("CREATE VIEW strict AS SELECT a, SUM(b) AS s FROM c "
       "WHERE a > 0 GROUP BY a");
  Exec("EXPLAIN VIEW strict");
  EXPECT_EQ(last_.message.find("note:"), std::string::npos);

  Exec("CREATE VIEW loose AS SELECT a, SUM(b) AS s FROM c "
       "WHERE a > 0 AND b > 0 GROUP BY a");
  Exec("EXPLAIN VIEW loose");
  EXPECT_NE(last_.message.find("Definition 4.1"), std::string::npos);
}

TEST_F(ExtensionBinderTest, ShowListsEverything) {
  Exec("CREATE CHRONICLE calls (caller INT64, minutes INT64) RETAIN LAST 10");
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Exec("CREATE VIEW v1 AS SELECT caller, SUM(minutes) AS m FROM calls "
       "GROUP BY caller");
  Exec("CREATE PERIODIC VIEW v2 AS SELECT COUNT(*) AS n FROM calls "
       "OVER PERIOD 30");
  Exec("CREATE SLIDING VIEW v3 AS SELECT caller, COUNT(*) AS n FROM calls "
       "GROUP BY caller OVER WINDOW 4 PANES OF 5");
  Exec("INSERT INTO calls VALUES (1, 5)");

  Exec("SHOW CHRONICLES");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0][0], Value("calls"));
  EXPECT_EQ(last_.rows[0][2], Value(1));  // total_appended

  Exec("SHOW RELATIONS");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0][0], Value("cust"));

  Exec("SHOW VIEWS");
  ASSERT_EQ(last_.rows.size(), 3u);
  EXPECT_EQ(last_.rows[0][1], Value("persistent"));
  EXPECT_EQ(last_.rows[1][1], Value("periodic"));
  EXPECT_EQ(last_.rows[2][1], Value("sliding"));
}

TEST(ExtensionParserTest, CaseExpression) {
  auto stmt = Parse<SelectStmt>(
      "SELECT * FROM v WHERE CASE WHEN a > 10 THEN 1 ELSE 0 END = 1");
  ASSERT_NE(stmt.query.where, nullptr);
  EXPECT_EQ(stmt.query.where->child(0).kind(), ExprKind::kCase);
  // Missing END / empty CASE are rejected.
  EXPECT_FALSE(ParseStatement("SELECT * FROM v WHERE CASE END = 1").ok());
  EXPECT_FALSE(
      ParseStatement("SELECT * FROM v WHERE CASE WHEN a THEN 1 = 1").ok());
}

TEST(ExtensionParserTest, ComputedItemsRequireAlias) {
  EXPECT_TRUE(ParseStatement("SELECT a + b AS s FROM v").ok());
  EXPECT_FALSE(ParseStatement("SELECT a + b FROM v").ok());
}

TEST_F(ExtensionBinderTest, PremierStatusViewInPureCql) {
  // Example 2.1's premier status, fully declarative: a CASE finalizer over
  // the summarized miles total.
  Exec("CREATE CHRONICLE mileage (acct INT64, miles INT64) RETAIN NONE");
  Exec("CREATE VIEW premier AS SELECT acct, SUM(miles) AS total, "
       "CASE WHEN total >= 50000 THEN 'gold' "
       "WHEN total >= 25000 THEN 'silver' ELSE 'bronze' END AS status "
       "FROM mileage GROUP BY acct");
  Exec("INSERT INTO mileage VALUES (1, 60000), (2, 30000), (3, 100)");
  Exec("SELECT status FROM premier WHERE acct = 1");
  EXPECT_EQ(last_.rows[0][0], Value("gold"));
  Exec("SELECT status FROM premier WHERE acct = 2");
  EXPECT_EQ(last_.rows[0][0], Value("silver"));
  Exec("SELECT status FROM premier WHERE acct = 3");
  EXPECT_EQ(last_.rows[0][0], Value("bronze"));
}

TEST_F(ExtensionBinderTest, ComputedItemsInInteractiveSelect) {
  Exec("CREATE RELATION cust (acct INT64, balance DOUBLE) KEY acct");
  Exec("INSERT INTO cust VALUES (1, 150.0), (2, -20.0)");
  Exec("SELECT acct, balance * 2 AS double_balance, "
       "CASE WHEN balance < 0 THEN 'overdrawn' ELSE 'ok' END AS state "
       "FROM cust WHERE acct = 2");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(last_.rows[0][1].dbl(), -40.0);
  EXPECT_EQ(last_.rows[0][2], Value("overdrawn"));
  EXPECT_EQ(last_.schema.field(1).name, "double_balance");
}

TEST_F(ExtensionBinderTest, ComputedItemsRejectedOnPeriodicAndSliding) {
  Exec("CREATE CHRONICLE c (a INT64, b INT64)");
  Result<ExecResult> periodic = Execute(
      &db_,
      "CREATE PERIODIC VIEW p AS SELECT a, SUM(b) AS s, s + 1 AS t FROM c "
      "GROUP BY a OVER PERIOD 10");
  EXPECT_TRUE(periodic.status().IsPlanError());
  Result<ExecResult> sliding = Execute(
      &db_,
      "CREATE SLIDING VIEW w AS SELECT a, SUM(b) AS s, s + 1 AS t FROM c "
      "GROUP BY a OVER WINDOW 4 PANES OF 5");
  EXPECT_TRUE(sliding.status().IsPlanError());
}

TEST_F(ExtensionBinderTest, SelectFromChronicleReadsRetainedWindow) {
  Exec("CREATE CHRONICLE calls (caller INT64, minutes INT64) RETAIN LAST 3");
  Exec("INSERT INTO calls VALUES (1, 10)");
  Exec("INSERT INTO calls VALUES (2, 20)");
  Exec("INSERT INTO calls VALUES (3, 30)");
  Exec("INSERT INTO calls VALUES (4, 40)");

  Exec("SELECT * FROM calls");
  ASSERT_EQ(last_.rows.size(), 3u);  // only the retained suffix
  EXPECT_EQ(last_.rows[0][0], Value(2));

  Exec("SELECT caller FROM calls WHERE minutes >= 30");
  ASSERT_EQ(last_.rows.size(), 2u);

  // Predicates over the sequencing attribute work in window queries.
  Exec("SELECT caller FROM calls WHERE $sn = 4");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0][0], Value(4));
}

TEST_F(ExtensionBinderTest, SelectFromStreamOnlyChronicleIsEmpty) {
  Exec("CREATE CHRONICLE calls (caller INT64, minutes INT64) RETAIN NONE");
  Exec("INSERT INTO calls VALUES (1, 10)");
  Exec("SELECT * FROM calls");
  EXPECT_TRUE(last_.rows.empty());
}

TEST_F(ExtensionBinderTest, CheckpointRestoreCycleThroughCql) {
  const std::string kDdl =
      "CREATE CHRONICLE calls (caller INT64, minutes INT64) RETAIN NONE;"
      "CREATE VIEW totals AS SELECT caller, SUM(minutes) AS m FROM calls "
      "GROUP BY caller";
  ASSERT_TRUE(ExecuteScript(&db_, kDdl).ok());
  Exec("INSERT INTO calls VALUES (1, 5), (2, 7)");
  Exec("INSERT INTO calls VALUES (1, 10)");
  const std::string path = "/tmp/chronicle_cql_ckpt_test.ckpt";
  Exec("CHECKPOINT TO '" + path + "'");

  ChronicleDatabase fresh;
  ASSERT_TRUE(ExecuteScript(&fresh, kDdl).ok());
  Result<ExecResult> restored = Execute(&fresh, "RESTORE FROM '" + path + "'");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(fresh.QueryView("totals", Tuple{Value(1)}).value()[1], Value(15));
  // The restored instance keeps streaming under the right sequence numbers.
  Result<ExecResult> more = Execute(&fresh, "INSERT INTO calls VALUES (1, 1)");
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(fresh.QueryView("totals", Tuple{Value(1)}).value()[1], Value(16));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cql
}  // namespace chronicle
