#include "storage/keyed_table.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

class KeyedTableModeTest : public ::testing::TestWithParam<IndexMode> {};

TEST_P(KeyedTableModeTest, GetOrCreateAndFind) {
  KeyedTable<int> table(GetParam());
  EXPECT_EQ(table.size(), 0u);
  Tuple key{Value(1), Value("a")};
  table.GetOrCreate(key) = 7;
  EXPECT_EQ(table.size(), 1u);
  ASSERT_NE(table.Find(key), nullptr);
  EXPECT_EQ(*table.Find(key), 7);
  EXPECT_EQ(table.Find(Tuple{Value(2), Value("a")}), nullptr);
}

TEST_P(KeyedTableModeTest, GetOrCreateIsIdempotentPerKey) {
  KeyedTable<int> table(GetParam());
  Tuple key{Value(5)};
  table.GetOrCreate(key) += 1;
  table.GetOrCreate(key) += 1;
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.Find(key), 2);
}

TEST_P(KeyedTableModeTest, EraseAndClear) {
  KeyedTable<int> table(GetParam());
  table.GetOrCreate(Tuple{Value(1)}) = 1;
  table.GetOrCreate(Tuple{Value(2)}) = 2;
  EXPECT_TRUE(table.Erase(Tuple{Value(1)}));
  EXPECT_FALSE(table.Erase(Tuple{Value(1)}));
  EXPECT_EQ(table.size(), 1u);
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
}

TEST_P(KeyedTableModeTest, ForEachVisitsAll) {
  KeyedTable<int> table(GetParam());
  for (int i = 0; i < 10; ++i) table.GetOrCreate(Tuple{Value(i)}) = i * i;
  int sum = 0;
  table.ForEach([&](const Tuple& key, const int& v) {
    EXPECT_EQ(key[0].int64() * key[0].int64(), v);
    sum += v;
  });
  EXPECT_EQ(sum, 285);
}

INSTANTIATE_TEST_SUITE_P(BothModes, KeyedTableModeTest,
                         ::testing::Values(IndexMode::kHash, IndexMode::kOrdered),
                         [](const ::testing::TestParamInfo<IndexMode>& info) {
                           return info.param == IndexMode::kHash ? "Hash"
                                                                 : "Ordered";
                         });

TEST(KeyedTableTest, OrderedModeIteratesInKeyOrder) {
  KeyedTable<int> table(IndexMode::kOrdered);
  table.GetOrCreate(Tuple{Value(3)}) = 3;
  table.GetOrCreate(Tuple{Value(1)}) = 1;
  table.GetOrCreate(Tuple{Value(2)}) = 2;
  std::vector<int> order;
  table.ForEach([&](const Tuple&, const int& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(KeyedTableTest, CrossTypeNumericKeysCollide) {
  // Key semantics follow Value equality: 2 and 2.0 are the same group key
  // in both index modes.
  for (IndexMode mode : {IndexMode::kHash, IndexMode::kOrdered}) {
    KeyedTable<int> table(mode);
    table.GetOrCreate(Tuple{Value(2)}) = 1;
    table.GetOrCreate(Tuple{Value(2.0)}) += 1;
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(*table.Find(Tuple{Value(2)}), 2);
  }
}

TEST(KeyedTableTest, EmptyKeyTupleIsValid) {
  // Views with an empty grouping list (global aggregates) key on ().
  KeyedTable<int> table(IndexMode::kHash);
  table.GetOrCreate(Tuple{}) = 42;
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(*table.Find(Tuple{}), 42);
}

}  // namespace
}  // namespace chronicle
