// Robustness fuzzing for checkpoint restore: byte-level corruptions,
// truncations, and splices of a valid image must produce Status errors —
// never crashes or silent partial restores that pass the final checks.

#include <gtest/gtest.h>

#include "checkpoint/checkpoint.h"
#include "common/random.h"
#include "workload/call_records.h"

namespace chronicle {
namespace checkpoint {
namespace {

void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                                  RetentionPolicy::Window(32))
                  .ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  ASSERT_TRUE(db->CreateView("minutes", scan,
                             SummarySpec::GroupBy(
                                 scan->schema(), {"caller"},
                                 {AggSpec::Sum("minutes", "m"),
                                  AggSpec::Last("region", "last_region")})
                                 .value())
                  .ok());
  ASSERT_TRUE(db->CreateSlidingView("window", scan,
                                    SummarySpec::GroupBy(
                                        scan->schema(), {"caller"},
                                        {AggSpec::Count("n")})
                                        .value(),
                                    0, 5, 4)
                  .ok());
}

std::string MakeImage() {
  ChronicleDatabase db;
  ApplyDdl(&db);
  CallRecordOptions options;
  options.num_accounts = 16;
  CallRecordGenerator gen(options);
  Chronon chronon = 0;
  for (int i = 0; i < 60; ++i) {
    EXPECT_TRUE(db.Append("calls", gen.NextBatch(2), ++chronon).ok());
  }
  return SaveDatabase(db).value();
}

TEST(CheckpointFuzzTest, SingleByteCorruptionsNeverCrash) {
  const std::string image = MakeImage();
  const uint64_t seed = FuzzSeed(31337);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  int clean_failures = 0, silent_successes = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string corrupted = image;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.Uniform(256));
    if (corrupted == image) continue;

    ChronicleDatabase target;
    ApplyDdl(&target);
    Status st = RestoreDatabase(corrupted, &target);
    if (st.ok()) {
      // A flipped byte inside a numeric payload can legitimately decode —
      // the structure is intact, only a value changed. Count but accept.
      ++silent_successes;
    } else {
      ++clean_failures;
    }
  }
  // Most corruptions must be caught structurally.
  EXPECT_GT(clean_failures, 0);
}

TEST(CheckpointFuzzTest, TruncationsAtEveryBoundaryFailCleanly) {
  const std::string image = MakeImage();
  for (size_t cut = 0; cut < image.size(); cut += 7) {
    ChronicleDatabase target;
    ApplyDdl(&target);
    Status st = RestoreDatabase(image.substr(0, cut), &target);
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
  }
}

TEST(CheckpointFuzzTest, RandomGarbageImagesFailCleanly) {
  const uint64_t seed = FuzzSeed(777);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(256);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    ChronicleDatabase target;
    ApplyDdl(&target);
    EXPECT_FALSE(RestoreDatabase(garbage, &target).ok());
  }
}

TEST(CheckpointFuzzTest, SplicedLengthFieldsCannotAllocateUnbounded) {
  // Grow length/count prefixes to huge values: the reader must detect the
  // truncation instead of attempting a giant allocation or spinning.
  //
  // Image layout (v2): magic(4) version(4) appends(8) wal_watermark(8)
  // last_sn(8) chronon(8) num_chronicles(4)@40, then the first chronicle's
  // name length u32 @44.
  std::string image = MakeImage();
  // (a) The chronicle-name length prefix.
  {
    std::string spliced = image;
    for (size_t i = 44; i < 48; ++i) spliced[i] = static_cast<char>(0xFF);
    ChronicleDatabase target;
    ApplyDdl(&target);
    EXPECT_FALSE(RestoreDatabase(spliced, &target).ok());
  }
  // (b) The chronicle-count prefix (2^32-1 chronicles "follow").
  {
    std::string spliced = image;
    for (size_t i = 40; i < 44; ++i) spliced[i] = static_cast<char>(0xFF);
    ChronicleDatabase target;
    ApplyDdl(&target);
    EXPECT_FALSE(RestoreDatabase(spliced, &target).ok());
  }
  // (c) Every u64 count field maxed, scanning the whole image: none may
  // crash or hang (outcomes may legitimately be OK when the bytes land in
  // plain numeric payloads).
  for (size_t offset = 16; offset + 8 < image.size(); offset += 97) {
    std::string spliced = image;
    for (size_t i = offset; i < offset + 8; ++i) {
      spliced[i] = static_cast<char>(0xFF);
    }
    ChronicleDatabase target;
    ApplyDdl(&target);
    Status st = RestoreDatabase(spliced, &target);
    (void)st;  // any Status outcome is fine; crashing is not
  }
}

TEST(CheckpointFuzzTest, FailedRestoreLeavesDatabaseOperational) {
  // Restore is not atomic (state may be partially applied before the error)
  // but the database object must remain usable for a fresh-DDL retry flow.
  const std::string image = MakeImage();
  ChronicleDatabase target;
  ApplyDdl(&target);
  ASSERT_FALSE(RestoreDatabase(image.substr(0, image.size() / 2), &target).ok());
  // A brand-new instance restores fine from the intact image.
  ChronicleDatabase fresh;
  ApplyDdl(&fresh);
  EXPECT_TRUE(RestoreDatabase(image, &fresh).ok());
}

}  // namespace
}  // namespace checkpoint
}  // namespace chronicle
