// Parallel maintenance equivalence: with ~200 registered views of mixed
// shapes (eq-guarded, residual-guarded, unguarded, relation-joining), the
// parallel path must produce byte-identical view contents and identical
// MaintenanceReport counters to the serial path at every thread count —
// Theorem 4.2 independence is what makes this a hard guarantee rather than
// a best-effort one. Also covers AppendMany (batched ingest) equivalence
// and its WAL group-commit ordering via crash-free recovery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace chronicle {
namespace {

namespace fs = std::filesystem;

constexpr int kNumViews = 200;
constexpr int kRoutes = 16;

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"route", DataType::kInt64},
                 {"minutes", DataType::kInt64}});
}

// The shared DDL: one chronicle, a keyed relation, and kNumViews views in
// a deterministic mix of shapes.
void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(
      db->CreateChronicle("calls", CallSchema(), RetentionPolicy::None()).ok());
  ASSERT_TRUE(db->CreateRelation("cust",
                                 Schema({{"acct", DataType::kInt64},
                                         {"state", DataType::kString}}),
                                 "acct")
                  .ok());
  for (int64_t acct = 0; acct < 64; ++acct) {
    ASSERT_TRUE(db->InsertInto("cust", Tuple{Value(acct),
                                             Value(acct % 2 ? "NJ" : "CA")})
                    .ok());
  }
  const Relation* cust = db->GetRelation("cust").value();
  CaExprPtr scan = db->ScanChronicle("calls").value();
  for (int64_t v = 0; v < kNumViews; ++v) {
    const std::string name = "view_" + std::to_string(v);
    CaExprPtr plan;
    if (v % 10 == 7) {
      // Unguarded: every append reaches the delta engine.
      plan = scan;
    } else if (v % 10 == 3) {
      // Relation key join: workers do concurrent const lookups into cust.
      plan = CaExpr::RelKeyJoin(
                 CaExpr::Select(scan, Eq(Col("route"),
                                         Lit(Value(v % kRoutes))))
                     .value(),
                 cust, "caller")
                 .value();
    } else {
      // Eq-guarded with a per-view second conjunct (distinct plans, so
      // cross-view DAG sharing cannot hide scheduling differences).
      plan = CaExpr::Select(
                 scan, ScalarExpr::And(Eq(Col("route"), Lit(Value(v % kRoutes))),
                                       Ge(Col("minutes"), Lit(Value(v % 5)))))
                 .value();
    }
    SummarySpec spec =
        SummarySpec::GroupBy(plan->schema(), {"caller"},
                             {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")})
            .value();
    ASSERT_TRUE(db->CreateView(name, plan, spec).ok());
  }
}

std::vector<Tuple> MakeTick(Rng* rng, int tuples) {
  std::vector<Tuple> out;
  out.reserve(tuples);
  for (int i = 0; i < tuples; ++i) {
    out.push_back(Tuple{Value(static_cast<int64_t>(rng->Uniform(64))),
                        Value(static_cast<int64_t>(rng->Uniform(kRoutes))),
                        Value(static_cast<int64_t>(rng->Uniform(100)))});
  }
  return out;
}

// Per-append reports plus final per-view contents.
struct RunResult {
  std::vector<MaintenanceReport> reports;
  std::vector<std::vector<Tuple>> views;  // ScanView output per view
};

RunResult DriveWorkload(ChronicleDatabase* db, int ticks) {
  RunResult result;
  Rng rng(42);  // same seed for every run: identical append sequences
  Chronon chronon = 0;
  for (int t = 0; t < ticks; ++t) {
    Result<AppendResult> r =
        db->Append("calls", MakeTick(&rng, 2 + t % 7), ++chronon);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    result.reports.push_back(r->maintenance);
  }
  for (int64_t v = 0; v < kNumViews; ++v) {
    result.views.push_back(
        db->ScanView("view_" + std::to_string(v)).value());
  }
  return result;
}

void ExpectIdentical(const RunResult& serial, const RunResult& parallel,
                     size_t threads) {
  ASSERT_EQ(serial.reports.size(), parallel.reports.size());
  for (size_t i = 0; i < serial.reports.size(); ++i) {
    SCOPED_TRACE("threads=" + std::to_string(threads) + " tick=" +
                 std::to_string(i));
    EXPECT_EQ(serial.reports[i].views_considered,
              parallel.reports[i].views_considered);
    EXPECT_EQ(serial.reports[i].views_updated,
              parallel.reports[i].views_updated);
    EXPECT_EQ(serial.reports[i].views_skipped,
              parallel.reports[i].views_skipped);
    EXPECT_EQ(serial.reports[i].delta_rows_applied,
              parallel.reports[i].delta_rows_applied);
  }
  ASSERT_EQ(serial.views.size(), parallel.views.size());
  for (size_t v = 0; v < serial.views.size(); ++v) {
    SCOPED_TRACE("threads=" + std::to_string(threads) + " view=" +
                 std::to_string(v));
    EXPECT_EQ(serial.views[v], parallel.views[v]);
  }
}

TEST(ParallelMaintenanceTest, TwoHundredViewsIdenticalAcrossThreadCounts) {
  ChronicleDatabase serial_db;
  ApplyDdl(&serial_db);
  RunResult serial = DriveWorkload(&serial_db, 40);
  // Sanity: the workload actually exercises updates.
  size_t total_updates = 0;
  for (const MaintenanceReport& r : serial.reports) {
    total_updates += r.views_updated;
  }
  ASSERT_GT(total_updates, 0u);

  for (size_t threads : {2u, 8u}) {
    ChronicleDatabase parallel_db;
    ApplyDdl(&parallel_db);
    parallel_db.ReconfigureMaintenance({threads, /*min_views_per_task=*/1});
    RunResult parallel = DriveWorkload(&parallel_db, 40);
    ExpectIdentical(serial, parallel, threads);
  }
}

TEST(ParallelMaintenanceTest, RoutingModesAgreeUnderParallelism) {
  // kCheckAll / kGuards / kEqIndex must keep producing identical contents
  // when the fold is parallel (routing only prunes; it never changes what
  // an affected view receives).
  std::vector<std::vector<std::vector<Tuple>>> contents;
  for (RoutingMode mode :
       {RoutingMode::kCheckAll, RoutingMode::kGuards, RoutingMode::kEqIndex}) {
    ChronicleDatabase db(mode);
    ApplyDdl(&db);
    db.ReconfigureMaintenance({4, /*min_views_per_task=*/1});
    contents.push_back(DriveWorkload(&db, 15).views);
  }
  EXPECT_EQ(contents[0], contents[1]);
  EXPECT_EQ(contents[0], contents[2]);
}

TEST(ParallelMaintenanceTest, AppendManyMatchesAppendLoop) {
  ChronicleDatabase loop_db;
  ApplyDdl(&loop_db);
  ChronicleDatabase batch_db;
  ApplyDdl(&batch_db);
  batch_db.ReconfigureMaintenance({4, /*min_views_per_task=*/1});

  Rng loop_rng(99);
  Chronon chronon = 0;
  for (int t = 0; t < 24; ++t) {
    ASSERT_TRUE(loop_db.Append("calls", MakeTick(&loop_rng, 5), ++chronon).ok());
  }
  Rng batch_rng(99);
  std::vector<std::vector<Tuple>> batches;
  for (int t = 0; t < 24; ++t) batches.push_back(MakeTick(&batch_rng, 5));
  Result<std::vector<AppendResult>> results =
      batch_db.AppendMany("calls", std::move(batches));
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 24u);
  // Same SN/chronon sequence as the loop.
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_EQ((*results)[i].event.sn, i + 1);
    EXPECT_EQ((*results)[i].event.chronon, static_cast<Chronon>(i + 1));
  }
  EXPECT_EQ(loop_db.group().last_sn(), batch_db.group().last_sn());
  EXPECT_EQ(loop_db.appends_processed(), batch_db.appends_processed());
  for (int64_t v = 0; v < kNumViews; ++v) {
    const std::string name = "view_" + std::to_string(v);
    EXPECT_EQ(loop_db.ScanView(name).value(), batch_db.ScanView(name).value())
        << name;
  }
}

TEST(ParallelMaintenanceTest, AppendManyRejectsInvalidTickBeforeLoggingAny) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  const std::string dir =
      (fs::temp_directory_path() /
       ("chronicle_appendmany_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  auto wal = wal::Wal::Open(dir).value();
  wal::WalMutationLog log(wal.get(), &db);
  db.AttachMutationLog(&log);

  Rng rng(7);
  std::vector<std::vector<Tuple>> batches;
  batches.push_back(MakeTick(&rng, 3));
  batches.push_back({Tuple{Value("wrong"), Value("types")}});  // invalid tick
  const uint64_t lsn_before = wal->next_lsn();
  ASSERT_FALSE(db.AppendMany("calls", std::move(batches)).ok());
  // Write-ahead is batch-wide: NOTHING was logged and NOTHING applied.
  EXPECT_EQ(wal->next_lsn(), lsn_before);
  EXPECT_EQ(db.group().last_sn(), 0u);
  db.DetachMutationLog();
  ASSERT_TRUE(wal->Close().ok());
  fs::remove_all(dir);
}

TEST(ParallelMaintenanceTest, AppendManyGroupCommitRecoversExactly) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("chronicle_groupcommit_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);
  {
    ChronicleDatabase db;
    ApplyDdl(&db);
    db.ReconfigureMaintenance({4, /*min_views_per_task=*/1});
    wal::WalOptions options;
    options.fsync = wal::FsyncPolicy::kEveryRecord;
    auto wal = wal::Wal::Open(dir, options).value();
    wal::WalMutationLog log(wal.get(), &db);
    db.AttachMutationLog(&log);
    Rng rng(123);
    std::vector<std::vector<Tuple>> batches;
    for (int t = 0; t < 10; ++t) batches.push_back(MakeTick(&rng, 4));
    ASSERT_TRUE(db.AppendMany("calls", std::move(batches)).ok());
    // Group commit: 10 ticks, ONE sync for the whole batch (plus the syncs
    // Open/Close issue themselves).
    EXPECT_EQ(wal->stats().records_logged, 10u);
    db.DetachMutationLog();
    ASSERT_TRUE(wal->Close().ok());
    // The db is dropped here: recovery below must rebuild it from the log.
  }
  ChronicleDatabase reference;
  ApplyDdl(&reference);
  Rng rng(123);
  Chronon chronon = 0;
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(reference.Append("calls", MakeTick(&rng, 4), ++chronon).ok());
  }
  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<wal::RecoveryReport> report = wal::Recover(dir, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->replay.records_applied, 10u);
  EXPECT_EQ(recovered.group().last_sn(), reference.group().last_sn());
  for (int64_t v = 0; v < kNumViews; ++v) {
    const std::string name = "view_" + std::to_string(v);
    EXPECT_EQ(recovered.ScanView(name).value(),
              reference.ScanView(name).value())
        << name;
  }
  fs::remove_all(dir);
}

TEST(ParallelMaintenanceTest, SmallTicksBypassThePool) {
  // Below 2 * min_views_per_task affected views the serial path runs even
  // with a pool configured; results must (of course) still match.
  ChronicleDatabase db;
  ApplyDdl(&db);
  db.ReconfigureMaintenance({8, /*min_views_per_task=*/1000});
  ChronicleDatabase serial_db;
  ApplyDdl(&serial_db);
  RunResult parallel = DriveWorkload(&db, 10);
  RunResult serial = DriveWorkload(&serial_db, 10);
  ExpectIdentical(serial, parallel, 8);
}

}  // namespace
}  // namespace chronicle
