#include "common/status.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyPreservesError) {
  Status st = Status::OutOfRange("bad sn");
  Status copy = st;
  EXPECT_TRUE(copy.IsOutOfRange());
  EXPECT_EQ(copy.message(), "bad sn");
  // Original unaffected.
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST(StatusTest, AssignmentOverwrites) {
  Status st = Status::Internal("boom");
  st = Status::OK();
  EXPECT_TRUE(st.ok());
  st = Status::ParseError("syntax");
  EXPECT_TRUE(st.IsParseError());
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::PlanError("x").IsPlanError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  // Constructing a Result from an OK status is a bug; it must not silently
  // pretend to hold a value.
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CHRONICLE_ASSIGN_OR_RETURN(int h, Half(x));
  CHRONICLE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status CheckEven(int x) {
  CHRONICLE_RETURN_NOT_OK(Half(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fail = Quarter(6);  // 6/2=3, then odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_TRUE(inner_fail.status().IsInvalidArgument());
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

}  // namespace
}  // namespace chronicle
