// Sharding equivalence fuzz: a ShardedDatabase must be observably
// indistinguishable from one unsharded ChronicleDatabase fed the same
// workload — byte-identical ScanView contents and QueryView answers — for
// every num_shards in {1, 2, 8} and both maintenance engines (compiled
// DeltaPlan and interpreter) on the shards. With num_shards == 1 the
// router forwards verbatim, so the match must extend to engine counters
// (appends_processed, last SN): that is the bit-identical oracle the CI
// gate relies on.
//
// The generator only draws plans from the shard-safe subset (see
// docs/SHARDING.md): per-row operators plus replicated-relation joins,
// always retaining the partition column ("caller") in the output so rows
// that must collide — per-tick dedupe, Difference matching, group
// membership — are guaranteed to colocate. SeqJoin and caller-dropping
// projections are deliberately absent; they do not commute with hash
// partitioning.
//
// Seeded through the CHRONICLE_FUZZ_SEED replay scheme.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "shard/sharded_db.h"

namespace chronicle {
namespace {

using shard::ShardedDatabase;

constexpr int64_t kAccounts = 16;
const char* const kStrings[] = {"NJ", "NY", "CA", "TX"};

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

// A comparison drawn up front as plain data, so the same predicate can be
// rebuilt per engine (the sharded router instantiates one plan per shard).
struct PredParam {
  std::string column;
  int op = 0;  // 0 Eq, 1 Ne, 2 Gt, 3 Le
  Value lit;
};

PredParam RandomPred(Rng* rng) {
  PredParam p;
  switch (rng->Uniform(3)) {
    case 0:
      p.column = "caller";
      p.lit = Value(static_cast<int64_t>(rng->Uniform(kAccounts)));
      p.op = static_cast<int>(rng->Uniform(4));
      break;
    case 1:
      p.column = "region";
      p.lit = Value(kStrings[rng->Uniform(4)]);
      p.op = static_cast<int>(rng->Uniform(2));  // Eq / Ne only
      break;
    default:
      p.column = "minutes";
      p.lit = Value(static_cast<int64_t>(rng->Uniform(20)));
      p.op = static_cast<int>(rng->Uniform(4));
      break;
  }
  return p;
}

ScalarExprPtr BuildPred(const PredParam& p) {
  switch (p.op) {
    case 0: return Eq(Col(p.column), Lit(p.lit));
    case 1: return Ne(Col(p.column), Lit(p.lit));
    case 2: return Gt(Col(p.column), Lit(p.lit));
    default: return Le(Col(p.column), Lit(p.lit));
  }
}

struct AggParam {
  int kind = 0;  // 0 Sum, 1 Count, 2 Min, 3 Max, 4 Avg
  std::string in;
  std::string out;
};

AggSpec BuildAgg(const AggParam& a) {
  switch (a.kind) {
    case 0: return AggSpec::Sum(a.in, a.out);
    case 1: return AggSpec::Count(a.out);
    case 2: return AggSpec::Min(a.in, a.out);
    case 3: return AggSpec::Max(a.in, a.out);
    default: return AggSpec::Avg(a.in, a.out);
  }
}

// One randomized shard-safe view shape, as data: enough to rebuild the
// identical logical plan + spec against any engine.
struct ViewShape {
  std::string name;
  int plan_kind = 0;  // 0 scan, 1 select, 2 rel-key-join, 3 union,
                      // 4 difference, 5 inner GroupBySeq
  PredParam p1, p2;
  int key_kind = 0;    // 0 {caller}, 1 {caller,region}, 2 {region}
  bool distinct = false;  // DistinctProjection instead of GroupBy
  std::vector<AggParam> aggs;
};

ViewShape RandomShape(Rng* rng, int index) {
  ViewShape s;
  s.name = "v" + std::to_string(index);
  s.plan_kind = static_cast<int>(rng->Uniform(6));
  s.p1 = RandomPred(rng);
  s.p2 = RandomPred(rng);
  s.key_kind = static_cast<int>(rng->Uniform(3));
  // DistinctProjection only over the raw-schema shapes; its "plan" is the
  // projection itself, keyed on every output column.
  s.distinct = s.plan_kind <= 1 && rng->Bernoulli(0.25);
  if (!s.distinct) {
    const char* numeric = s.plan_kind == 5 ? "t" : "minutes";
    const size_t n = 1 + rng->Uniform(2);
    for (size_t a = 0; a < n; ++a) {
      AggParam agg;
      agg.kind = static_cast<int>(rng->Uniform(5));
      agg.in = numeric;
      agg.out = "z" + std::to_string(a);
      s.aggs.push_back(agg);
    }
  }
  return s;
}

Result<CaExprPtr> BuildPlan(ChronicleDatabase& db, const ViewShape& s) {
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr scan, db.ScanChronicle("calls"));
  switch (s.plan_kind) {
    case 0:
      return scan;
    case 1:
      return CaExpr::Select(scan, BuildPred(s.p1));
    case 2: {
      // cust is replicated on every shard, so the join is shard-local.
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr guarded,
                                 CaExpr::Select(scan, BuildPred(s.p1)));
      CHRONICLE_ASSIGN_OR_RETURN(Relation * rel, db.GetRelation("cust"));
      return CaExpr::RelKeyJoin(guarded, rel, "caller");
    }
    case 3: {
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr left,
                                 CaExpr::Select(scan, BuildPred(s.p1)));
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr right,
                                 CaExpr::Select(scan, BuildPred(s.p2)));
      return CaExpr::Union(left, right);
    }
    case 4: {
      // Matching rows are full-tuple-equal, hence same caller, hence the
      // same shard: Difference commutes with the partitioning.
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr left,
                                 CaExpr::Select(scan, BuildPred(s.p1)));
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr right,
                                 CaExpr::Select(scan, BuildPred(s.p2)));
      return CaExpr::Difference(left, right);
    }
    default: {
      // Per-tick grouping whose group columns include the partition
      // column: every group's rows share one caller and colocate.
      CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr sel,
                                 CaExpr::Select(scan, BuildPred(s.p1)));
      std::vector<AggSpec> inner;
      inner.push_back(AggSpec::Sum("minutes", "t"));
      return CaExpr::GroupBySeq(sel, {"caller", "region"}, std::move(inner));
    }
  }
}

Result<SummarySpec> BuildSpec(const Schema& plan_schema, const ViewShape& s) {
  if (s.distinct) {
    return SummarySpec::DistinctProjection(plan_schema, {"caller", "region"});
  }
  std::vector<std::string> keys;
  switch (s.key_kind) {
    case 0: keys = {"caller"}; break;
    case 1: keys = {"caller", "region"}; break;
    default: keys = {"region"}; break;
  }
  std::vector<AggSpec> aggs;
  for (const AggParam& a : s.aggs) aggs.push_back(BuildAgg(a));
  return SummarySpec::GroupBy(plan_schema, std::move(keys), std::move(aggs));
}

size_t KeyWidth(const ViewShape& s) {
  if (s.distinct) return 2;
  return s.key_kind == 1 ? 2 : 1;
}

void ApplyBaseDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  ASSERT_TRUE(db->CreateRelation("cust", CustSchema(), "acct").ok());
}

void ApplyBaseDdl(ShardedDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  ASSERT_TRUE(db->CreateRelation("cust", CustSchema(), "acct").ok());
}

void ApplyShapes(ChronicleDatabase* db, const std::vector<ViewShape>& shapes) {
  for (const ViewShape& s : shapes) {
    Result<CaExprPtr> plan = BuildPlan(*db, s);
    ASSERT_TRUE(plan.ok()) << s.name << ": " << plan.status().ToString();
    Result<SummarySpec> spec = BuildSpec(plan.value()->schema(), s);
    ASSERT_TRUE(spec.ok()) << s.name << ": " << spec.status().ToString();
    ASSERT_TRUE(
        db->CreateView(s.name, plan.value(), std::move(spec).value()).ok());
  }
}

void ApplyShapes(ShardedDatabase* db, const std::vector<ViewShape>& shapes) {
  for (const ViewShape& s : shapes) {
    // Probe the logical schema once against shard 0, then hand the router
    // a factory that rebuilds the identical plan per engine.
    Result<CaExprPtr> probe = BuildPlan(db->engine(0), s);
    ASSERT_TRUE(probe.ok()) << s.name << ": " << probe.status().ToString();
    Result<SummarySpec> spec = BuildSpec(probe.value()->schema(), s);
    ASSERT_TRUE(spec.ok()) << s.name << ": " << spec.status().ToString();
    ViewShape copy = s;
    ASSERT_TRUE(db->CreateView(
                      s.name,
                      [copy](ChronicleDatabase& engine) {
                        return BuildPlan(engine, copy);
                      },
                      std::move(spec).value())
                    .ok());
  }
}

std::vector<Tuple> RandomBatch(Rng* rng, uint64_t max_tuples) {
  std::vector<Tuple> out;
  const uint64_t n = rng->Uniform(max_tuples + 1);
  for (uint64_t i = 0; i < n; ++i) {
    out.push_back(Tuple{Value(static_cast<int64_t>(rng->Uniform(kAccounts))),
                        Value(kStrings[rng->Uniform(4)]),
                        Value(static_cast<int64_t>(rng->Uniform(20)))});
  }
  return out;
}

// One deterministic workload step list: append ticks interleaved with
// proactive relation updates, derived from the seed so every engine
// configuration replays the exact same mutations.
struct Step {
  std::vector<Tuple> batch;  // append when non-sentinel
  bool relation_update = false;
  int64_t acct = 0;
  std::string state;
};

std::vector<Step> MakeWorkload(uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> steps;
  for (int64_t acct = 0; acct < kAccounts; ++acct) {
    Step s;
    s.relation_update = true;
    s.acct = acct;
    s.state = kStrings[rng.Uniform(4)];
    steps.push_back(std::move(s));
  }
  for (int tick = 0; tick < 30; ++tick) {
    if (tick > 0 && rng.Bernoulli(0.2)) {
      Step s;
      s.relation_update = true;
      s.acct = static_cast<int64_t>(rng.Uniform(kAccounts));
      s.state = kStrings[rng.Uniform(4)];
      steps.push_back(std::move(s));
    }
    Step s;
    s.batch = RandomBatch(&rng, 6);
    // At least one row per tick so every shape sees delta traffic.
    s.batch.push_back(Tuple{Value(int64_t{tick % kAccounts}),
                            Value(kStrings[tick % 4]), Value(int64_t{tick})});
    steps.push_back(std::move(s));
  }
  return steps;
}

template <typename Db>
void Drive(Db* db, const std::vector<Step>& steps) {
  Chronon chronon = 0;
  bool seeded = false;
  for (const Step& step : steps) {
    if (step.relation_update) {
      // The first kAccounts steps seed the relation; later draws update.
      Tuple row{Value(step.acct), Value(step.state)};
      Status st = seeded ? db->UpdateRelation("cust", Value(step.acct),
                                              std::move(row))
                         : db->InsertInto("cust", std::move(row));
      ASSERT_TRUE(st.ok()) << st.ToString();
      if (!seeded && step.acct == kAccounts - 1) seeded = true;
      continue;
    }
    auto r = db->Append("calls", step.batch, ++chronon);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(ShardedEquivalenceFuzzTest, ShardedMatchesUnshardedAcrossEngines) {
  const uint64_t seed = FuzzSeed(20260809);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);

  std::vector<ViewShape> shapes;
  for (int v = 0; v < 12; ++v) shapes.push_back(RandomShape(&rng, v));
  const std::vector<Step> steps = MakeWorkload(seed ^ 0x9e3779b97f4a7c15ull);

  // Reference: one unsharded engine, interpreter.
  ChronicleDatabase reference;
  ApplyBaseDdl(&reference);
  ApplyShapes(&reference, shapes);
  {
    MaintenanceOptions interpreted;
    interpreted.num_threads = 1;
    interpreted.use_compiled_plans = false;
    reference.ReconfigureMaintenance(interpreted);
  }
  Drive(&reference, steps);
  std::vector<std::vector<Tuple>> expected;
  for (const ViewShape& s : shapes) {
    expected.push_back(reference.ScanView(s.name).value());
  }

  for (size_t num_shards : {1u, 2u, 8u}) {
    for (bool compiled : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "num_shards=" << num_shards << " compiled=" << compiled);
      DatabaseOptions options;
      options.sharding.num_shards = num_shards;
      auto sharded = ShardedDatabase::Open(options).value();
      ApplyBaseDdl(sharded.get());
      ApplyShapes(sharded.get(), shapes);
      for (size_t k = 0; k < sharded->num_shards(); ++k) {
        MaintenanceOptions engine_options;
        engine_options.num_threads = 1;
        engine_options.use_compiled_plans = compiled;
        sharded->engine(k).ReconfigureMaintenance(engine_options);
      }
      Drive(sharded.get(), steps);

      for (size_t v = 0; v < shapes.size(); ++v) {
        SCOPED_TRACE(shapes[v].name);
        std::vector<Tuple> got = sharded->ScanView(shapes[v].name).value();
        ASSERT_EQ(got, expected[v]);
        // Point lookups agree too — both the aligned single-shard route
        // and the merged multi-shard fold.
        const size_t width = KeyWidth(shapes[v]);
        for (size_t i = 0; i < got.size(); i += 3) {
          Tuple key(got[i].begin(), got[i].begin() + width);
          EXPECT_EQ(sharded->QueryView(shapes[v].name, key).value(), got[i]);
        }
      }

      if (num_shards == 1) {
        // The bit-identical oracle: with one shard the router IS the
        // unsharded engine, down to its counters.
        EXPECT_EQ(sharded->engine(0).appends_processed(),
                  reference.appends_processed());
        EXPECT_EQ(sharded->engine(0).group().last_sn(),
                  reference.group().last_sn());
        EXPECT_EQ(sharded->engine(0).group().last_chronon(),
                  reference.group().last_chronon());
      }
    }
  }
}

}  // namespace
}  // namespace chronicle
