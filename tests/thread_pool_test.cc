// ThreadPool contract tests: submit/drain, exception propagation through
// Wait, and destruction with work still queued (queued tasks must RUN, not
// be dropped — the parallel maintenance path relies on never losing a
// batch).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>

namespace chronicle {
namespace {

TEST(ThreadPoolTest, SubmitAndDrain) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted: must not deadlock
  pool.Wait();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossWaits) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&ran] { ++ran; });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception did not take down other tasks or the pool.
  EXPECT_EQ(ran.load(), 20);
  pool.Submit([&ran] { ++ran; });
  pool.Wait();  // error was consumed by the previous Wait: no rethrow
  EXPECT_EQ(ran.load(), 21);
}

TEST(ThreadPoolTest, DestructionRunsQueuedWork) {
  std::atomic<int> counter{0};
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  {
    ThreadPool pool(1);
    // Block the only worker, then pile up work behind it.
    pool.Submit([gate] { gate.wait(); });
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 0);  // everything still queued
    release.set_value();
    // Destructor must drain the 100 queued tasks before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace chronicle
