#include "db/database.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

TEST(DatabaseTest, DdlNameCollisionsRejected) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  ASSERT_TRUE(db.CreateRelation("cust", CustSchema(), "acct").ok());
  EXPECT_TRUE(db.CreateChronicle("cust", CallSchema()).status().IsAlreadyExists());
  EXPECT_TRUE(
      db.CreateRelation("calls", CustSchema(), "acct").status().IsAlreadyExists());
  EXPECT_TRUE(
      db.CreateRelation("cust", CustSchema(), "acct").status().IsAlreadyExists());
}

TEST(DatabaseTest, AppendMaintainsViewsAutomatically) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr plan = db.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  ASSERT_TRUE(db.CreateView("minutes", plan, spec).ok());

  AppendResult result = db.Append("calls", {Call(1, "NJ", 5)}).value();
  EXPECT_EQ(result.event.sn, 1u);
  EXPECT_EQ(result.maintenance.views_updated, 1u);
  ASSERT_TRUE(db.Append("calls", {Call(1, "NJ", 7)}).ok());

  Tuple row = db.QueryView("minutes", Tuple{Value(1)}).value();
  EXPECT_EQ(row, (Tuple{Value(1), Value(12)}));
  EXPECT_EQ(db.appends_processed(), 2u);
}

TEST(DatabaseTest, ScanViewSortsByKey) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr plan = db.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Count("n")})
                         .value();
  ASSERT_TRUE(db.CreateView("counts", plan, spec).ok());
  ASSERT_TRUE(db.Append("calls", {Call(3, "x", 1)}).ok());
  ASSERT_TRUE(db.Append("calls", {Call(1, "x", 1)}).ok());
  ASSERT_TRUE(db.Append("calls", {Call(2, "x", 1)}).ok());
  std::vector<Tuple> rows = db.ScanView("counts").value();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(1));
  EXPECT_EQ(rows[2][0], Value(3));
}

TEST(DatabaseTest, RelationDmlIsProactive) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("flights", CallSchema()).ok());
  ASSERT_TRUE(db.CreateRelation("cust", CustSchema(), "acct").ok());
  ASSERT_TRUE(db.InsertInto("cust", Tuple{Value(1), Value("NJ")}).ok());

  // View: miles per state of residence *at flight time*.
  Relation* cust = db.GetRelation("cust").value();
  CaExprPtr plan =
      CaExpr::RelKeyJoin(db.ScanChronicle("flights").value(), cust, "caller")
          .value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"state"},
                                          {AggSpec::Sum("minutes", "miles")})
                         .value();
  ASSERT_TRUE(db.CreateView("by_state", plan, spec).ok());

  ASSERT_TRUE(db.Append("flights", {Call(1, "x", 100)}).ok());
  // Proactive move to CA: affects only future flights.
  ASSERT_TRUE(db.UpdateRelation("cust", Value(1), Tuple{Value(1), Value("CA")}).ok());
  ASSERT_TRUE(db.Append("flights", {Call(1, "x", 200)}).ok());

  EXPECT_EQ(db.QueryView("by_state", Tuple{Value("NJ")}).value()[1], Value(100));
  EXPECT_EQ(db.QueryView("by_state", Tuple{Value("CA")}).value()[1], Value(200));

  ASSERT_TRUE(db.DeleteFrom("cust", Value(1)).ok());
  // Flights for deleted customers silently drop out of the join.
  ASSERT_TRUE(db.Append("flights", {Call(1, "x", 300)}).ok());
  EXPECT_EQ(db.QueryView("by_state", Tuple{Value("CA")}).value()[1], Value(200));
}

TEST(DatabaseTest, MultiChronicleAppendTick) {
  ChronicleDatabase db;
  Schema s({{"x", DataType::kInt64}});
  ASSERT_TRUE(db.CreateChronicle("a", s).ok());
  ASSERT_TRUE(db.CreateChronicle("b", s).ok());
  AppendResult result =
      db.AppendMulti({{"a", {Tuple{Value(1)}}}, {"b", {Tuple{Value(2)}}}}, 10)
          .value();
  EXPECT_EQ(result.event.inserts.size(), 2u);
  EXPECT_EQ(db.group().last_chronon(), 10);
}

TEST(DatabaseTest, PeriodicViewMaintainedOnAppend) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr plan = db.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  auto cal = PeriodicCalendar::Make(0, 30).value();
  ASSERT_TRUE(db.CreatePeriodicView("monthly", plan, spec, cal).ok());

  ASSERT_TRUE(db.Append("calls", {Call(1, "x", 10)}, /*chronon=*/5).ok());
  ASSERT_TRUE(db.Append("calls", {Call(1, "x", 20)}, /*chronon=*/35).ok());

  const PeriodicViewSet* monthly = db.GetPeriodicView("monthly").value();
  EXPECT_EQ(monthly->Lookup(0, Tuple{Value(1)}).value()[1], Value(10));
  EXPECT_EQ(monthly->Lookup(1, Tuple{Value(1)}).value()[1], Value(20));
  EXPECT_TRUE(db.GetPeriodicView("zzz").status().IsNotFound());
}

TEST(DatabaseTest, SlidingViewMaintainedOnAppend) {
  ChronicleDatabase db;
  ASSERT_TRUE(db.CreateChronicle("trades", CallSchema()).ok());
  CaExprPtr plan = db.ScanChronicle("trades").value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  ASSERT_TRUE(db.CreateSlidingView("moving", plan, spec, 0, 10, 3).ok());
  ASSERT_TRUE(db.Append("trades", {Call(1, "x", 10)}, 5).ok());
  ASSERT_TRUE(db.Append("trades", {Call(1, "x", 20)}, 25).ok());
  const SlidingWindowView* moving = db.GetSlidingView("moving").value();
  EXPECT_EQ(moving->QueryWindow(Tuple{Value(1)}).value()[1], Value(30));
  EXPECT_TRUE(db.GetSlidingView("zzz").status().IsNotFound());
}

TEST(DatabaseTest, QueryUnknownViewFails) {
  ChronicleDatabase db;
  EXPECT_TRUE(db.QueryView("nope", Tuple{}).status().IsNotFound());
  EXPECT_TRUE(db.ScanView("nope").status().IsNotFound());
  EXPECT_TRUE(db.ScanChronicle("nope").status().IsNotFound());
  EXPECT_TRUE(db.GetRelation("nope").status().IsNotFound());
}

TEST(DatabaseTest, ViewOverStreamOnlyChronicle) {
  // The headline property: retention None (nothing stored), yet the view is
  // exact — maintenance never reads the chronicle.
  ChronicleDatabase db;
  ASSERT_TRUE(
      db.CreateChronicle("calls", CallSchema(), RetentionPolicy::None()).ok());
  CaExprPtr plan = db.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  ASSERT_TRUE(db.CreateView("minutes", plan, spec).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.Append("calls", {Call(1, "NJ", 1)}).ok());
  }
  EXPECT_EQ(db.QueryView("minutes", Tuple{Value(1)}).value()[1], Value(100));
  EXPECT_EQ(db.group().MemoryFootprint(), 0u);  // nothing stored
}

}  // namespace
}  // namespace chronicle
