// Unit tests for the vectorized kernels (exec/vector_kernels.{h,cc}) and
// the columnar batch plumbing (exec/column_batch.{h,cc}): empty batches,
// all-selected / none-selected filters (a zero-row selection must NOT
// degenerate into the identity view), string columns, NULL cells, the
// engine-decision rules, and arena block spill on batches far larger than
// the initial arena block.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/ca_expr.h"
#include "common/arena.h"
#include "exec/column_batch.h"
#include "exec/plan_compiler.h"
#include "exec/vector_kernels.h"
#include "storage/relation.h"

namespace chronicle {
namespace exec {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"score", DataType::kDouble}});
}

// Transposes `rows` against `schema` into an arena-backed batch; the
// source vector must outlive the batch (string cells are pointers).
ColumnBatch MakeBatch(const std::vector<Tuple>& rows, const Schema& schema,
                      Arena* arena) {
  ColumnBatch b;
  EXPECT_TRUE(TransposeRows(rows, schema, arena, &b));
  return b;
}

std::vector<Tuple> Rows(const ColumnBatch& b) {
  std::vector<Tuple> out;
  MaterializeRows(b, &out);
  return out;
}

// A predicate bound against `schema` and compiled to column form.
std::unique_ptr<VecPred> Compile(ScalarExprPtr e, const Schema& schema) {
  EXPECT_TRUE(e->Bind(schema).ok());
  return CompileVecPred(*e, schema);
}

TEST(CompileVecPredTest, SupportedShapes) {
  const Schema schema = CallSchema();
  EXPECT_NE(Compile(Eq(Col("caller"), Lit(Value(int64_t{3}))), schema),
            nullptr);
  EXPECT_NE(Compile(Eq(Col("region"), Lit(Value("NJ"))), schema), nullptr);
  EXPECT_NE(Compile(Gt(Col("score"), Lit(Value(1.5))), schema), nullptr);
  EXPECT_NE(Compile(Le(Col("caller"), ScalarExpr::SeqNumRef()), schema),
            nullptr);
  EXPECT_NE(Compile(ScalarExpr::And(
                        Eq(Col("caller"), Lit(Value(int64_t{1}))),
                        ScalarExpr::Not(Ne(Col("region"), Lit(Value("CA"))))),
                    schema),
            nullptr);
  // Int64 column vs double literal: both numeric, widened like
  // Value::Compare.
  EXPECT_NE(Compile(Lt(Col("caller"), Lit(Value(2.5))), schema), nullptr);
}

TEST(CompileVecPredTest, UnsupportedShapesStayOnRowEngine) {
  const Schema schema = CallSchema();
  // Mixed string/numeric comparison: the type-tag ordering arm.
  EXPECT_EQ(Compile(Lt(Col("region"), Lit(Value(int64_t{1}))), schema),
            nullptr);
  // Arithmetic operand.
  EXPECT_EQ(Compile(Eq(ScalarExpr::Arith(ArithOp::kAdd, Col("caller"),
                                         Lit(Value(int64_t{1}))),
                       Lit(Value(int64_t{2}))),
            schema),
            nullptr);
  // Bare column truthiness (no comparison at all).
  ScalarExprPtr bare = Col("caller");
  EXPECT_TRUE(bare->Bind(schema).ok());
  EXPECT_EQ(CompileVecPred(*bare, schema), nullptr);
}

TEST(CompileVecPredTest, NullLiteralIsConstantFalse) {
  const Schema schema = CallSchema();
  auto pred = Compile(Ne(Col("caller"), Lit(Value())), schema);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->kind, VecPred::Kind::kConstFalse);
}

TEST(VecSelectTest, EmptyBatch) {
  Arena arena;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows;
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  auto pred = Compile(Eq(Col("caller"), Lit(Value(int64_t{1}))), schema);
  ColumnBatch out;
  VecSelect(*pred, in, 1, 1, &arena, &out);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_TRUE(Rows(out).empty());
}

TEST(VecSelectTest, NoneSelectedIsNotIdentity) {
  Arena arena;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{1}), Value("NJ"), Value(1.0)},
      Tuple{Value(int64_t{2}), Value("NY"), Value(2.0)},
  };
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  auto pred = Compile(Eq(Col("caller"), Lit(Value(int64_t{99}))), schema);
  ColumnBatch out;
  VecSelect(*pred, in, 1, 1, &arena, &out);
  // Regression: an empty selection must keep a non-null sel pointer —
  // sel == nullptr means identity and would resurrect every physical row.
  EXPECT_NE(out.sel, nullptr);
  EXPECT_EQ(out.size(), 0u);

  // And a select chained onto the empty result stays empty.
  ColumnBatch out2;
  VecSelect(*pred, out, 1, 1, &arena, &out2);
  EXPECT_EQ(out2.size(), 0u);
}

TEST(VecSelectTest, AllSelectedKeepsOrderWithoutCopying) {
  Arena arena;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{5}), Value("NJ"), Value(0.5)},
      Tuple{Value(int64_t{6}), Value("NY"), Value(0.25)},
      Tuple{Value(int64_t{7}), Value("CA"), Value(0.125)},
  };
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  auto pred = Compile(Ge(Col("caller"), Lit(Value(int64_t{0}))), schema);
  ColumnBatch out;
  VecSelect(*pred, in, 1, 1, &arena, &out);
  EXPECT_EQ(Rows(out), rows);
  // Zero data movement: the output shares the input's column arrays.
  EXPECT_EQ(out.cols[0].i64, in.cols[0].i64);
}

TEST(VecSelectTest, StringAndNullSemantics) {
  Arena arena;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{1}), Value("NJ"), Value(1.0)},
      Tuple{Value(int64_t{2}), Value(), Value(2.0)},  // NULL region
      Tuple{Value(int64_t{3}), Value("NJ"), Value(3.0)},
      Tuple{Value(int64_t{4}), Value("NY"), Value(4.0)},
  };
  ColumnBatch in = MakeBatch(rows, schema, &arena);

  ColumnBatch eq;
  VecSelect(*Compile(Eq(Col("region"), Lit(Value("NJ"))), schema), in, 1, 1,
            &arena, &eq);
  EXPECT_EQ(Rows(eq), (std::vector<Tuple>{rows[0], rows[2]}));

  // A comparison involving NULL is false for EVERY operator, kNe included
  // (the row engine's SQL-ish rule) — so NOT(region != "NJ") keeps the
  // NULL row that region == "NJ" drops.
  ColumnBatch ne;
  VecSelect(*Compile(Ne(Col("region"), Lit(Value("NJ"))), schema), in, 1, 1,
            &arena, &ne);
  EXPECT_EQ(Rows(ne), (std::vector<Tuple>{rows[3]}));
  ColumnBatch not_ne;
  VecSelect(*Compile(ScalarExpr::Not(Ne(Col("region"), Lit(Value("NJ")))),
                     schema),
            in, 1, 1, &arena, &not_ne);
  EXPECT_EQ(Rows(not_ne), (std::vector<Tuple>{rows[0], rows[1], rows[2]}));
}

TEST(VecSelectTest, SnAndChrononOperands) {
  Arena arena;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{3}), Value("NJ"), Value(1.0)},
      Tuple{Value(int64_t{8}), Value("NY"), Value(2.0)},
  };
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  ScalarExprPtr e = Lt(Col("caller"), ScalarExpr::SeqNumRef());
  ColumnBatch out;
  VecSelect(*Compile(std::move(e), schema), in, /*sn=*/5, /*chronon=*/9,
            &arena, &out);
  EXPECT_EQ(Rows(out), (std::vector<Tuple>{rows[0]}));
}

TEST(VecProjectTest, FirstSeenDedupeOverProjectedColumns) {
  Arena arena;
  VecScratch vs;
  const Schema schema = CallSchema();
  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{1}), Value("NJ"), Value(1.0)},
      Tuple{Value(int64_t{1}), Value("NY"), Value(2.0)},  // same caller
      Tuple{Value(int64_t{2}), Value("NJ"), Value(3.0)},
      Tuple{Value(int64_t{1}), Value("CA"), Value(4.0)},  // dup again
  };
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  ColumnBatch out;
  VecProject(in, {0}, &vs, &arena, &out);
  EXPECT_EQ(Rows(out), (std::vector<Tuple>{Tuple{Value(int64_t{1})},
                                           Tuple{Value(int64_t{2})}}));

  // Empty input: still a valid (non-identity) empty batch.
  std::vector<Tuple> none;
  ColumnBatch empty_in = MakeBatch(none, schema, &arena);
  ColumnBatch empty_out;
  VecProject(empty_in, {0, 1}, &vs, &arena, &empty_out);
  EXPECT_EQ(empty_out.size(), 0u);
}

TEST(VecUnionTest, DedupesAcrossSidesWithNulls) {
  Arena arena;
  VecScratch vs;
  const Schema schema = CallSchema();
  std::vector<Tuple> lrows = {
      Tuple{Value(int64_t{1}), Value("NJ"), Value(1.0)},
      Tuple{Value(int64_t{2}), Value(), Value(2.0)},
  };
  std::vector<Tuple> rrows = {
      Tuple{Value(int64_t{2}), Value(), Value(2.0)},  // dup of lrows[1]
      Tuple{Value(int64_t{3}), Value("TX"), Value(3.0)},
  };
  ColumnBatch left = MakeBatch(lrows, schema, &arena);
  ColumnBatch right = MakeBatch(rrows, schema, &arena);
  ColumnBatch out;
  VecUnion(left, right, &vs, &arena, &out);
  EXPECT_EQ(Rows(out),
            (std::vector<Tuple>{lrows[0], lrows[1], rrows[1]}));
}

TEST(VecSeqJoinTest, LeftMajorOrderAndEmptySides) {
  Arena arena;
  const Schema schema({{"a", DataType::kInt64}});
  std::vector<Tuple> lrows = {Tuple{Value(int64_t{1})},
                              Tuple{Value(int64_t{2})}};
  std::vector<Tuple> rrows = {Tuple{Value(int64_t{10})},
                              Tuple{Value(int64_t{20})}};
  ColumnBatch left = MakeBatch(lrows, schema, &arena);
  ColumnBatch right = MakeBatch(rrows, schema, &arena);
  ColumnBatch out;
  ASSERT_TRUE(VecSeqJoin(left, right, &arena, &out));
  EXPECT_EQ(Rows(out),
            (std::vector<Tuple>{
                Tuple{Value(int64_t{1}), Value(int64_t{10})},
                Tuple{Value(int64_t{1}), Value(int64_t{20})},
                Tuple{Value(int64_t{2}), Value(int64_t{10})},
                Tuple{Value(int64_t{2}), Value(int64_t{20})}}));

  std::vector<Tuple> none;
  ColumnBatch empty = MakeBatch(none, schema, &arena);
  ColumnBatch empty_out;
  ASSERT_TRUE(VecSeqJoin(left, empty, &arena, &empty_out));
  EXPECT_EQ(empty_out.size(), 0u);
}

// Group-by through the compiled decision path: build the CaExpr node so
// group columns, aggregates, and the output schema come from the same
// factory the executor uses.
TEST(VecGroupByTest, SumCountMinMaxWithNullInputs) {
  Arena arena;
  VecScratch vs;
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr gb =
      CaExpr::GroupBySeq(scan, {"region"},
                         {AggSpec::Sum("caller", "s"),
                          AggSpec::Count("n"),
                          AggSpec::Min("score", "lo"),
                          AggSpec::Max("score", "hi")})
          .value();
  auto info = PlanVectorInstr(*gb);
  ASSERT_NE(info, nullptr);
  ASSERT_EQ(info->aggs.size(), 4u);

  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{4}), Value("NJ"), Value(2.0)},
      Tuple{Value(), Value("NJ"), Value(8.0)},   // NULL caller: SUM skips
      Tuple{Value(int64_t{1}), Value("NY"), Value()},  // NULL score
      Tuple{Value(int64_t{2}), Value("NJ"), Value(1.0)},
      Tuple{Value(), Value("TX"), Value()},  // all-NULL inputs
  };
  ColumnBatch in = MakeBatch(rows, CallSchema(), &arena);
  ColumnBatch out;
  VecGroupBy(in, gb->group_columns(), info->aggs, gb->aggregates(),
             gb->schema(), &vs, &arena, &out);
  // Groups in first-seen order; SUM/MIN/MAX of no non-NULL inputs is NULL,
  // COUNT counts every row.
  EXPECT_EQ(Rows(out),
            (std::vector<Tuple>{
                Tuple{Value("NJ"), Value(int64_t{6}), Value(int64_t{3}),
                      Value(1.0), Value(8.0)},
                Tuple{Value("NY"), Value(int64_t{1}), Value(int64_t{1}),
                      Value(), Value()},
                Tuple{Value("TX"), Value(), Value(int64_t{1}), Value(),
                      Value()}}));
}

TEST(VecGroupByTest, AvgKeepsGroupByOnRowEngine) {
  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr gb = CaExpr::GroupBySeq(scan, {"region"},
                                    {AggSpec::Avg("score", "a")})
                     .value();
  EXPECT_EQ(PlanVectorInstr(*gb), nullptr);
}

TEST(VecRelKeyJoinTest, NumericProbesAndNullKeys) {
  Arena arena;
  Relation rel = Relation::Make("cust", Schema({{"acct", DataType::kInt64},
                                                {"state", DataType::kString}}),
                                "acct")
                     .value();
  ASSERT_TRUE(rel.Insert(Tuple{Value(int64_t{1}), Value("NJ")}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value(int64_t{2}), Value("NY")}).ok());

  CaExprPtr scan = CaExpr::Scan(0, "calls", CallSchema()).value();
  CaExprPtr join = CaExpr::RelKeyJoin(scan, &rel, "caller").value();
  ASSERT_NE(PlanVectorInstr(*join), nullptr);

  std::vector<Tuple> rows = {
      Tuple{Value(int64_t{2}), Value("x"), Value(0.0)},
      Tuple{Value(int64_t{9}), Value("y"), Value(0.0)},  // miss drops out
      Tuple{Value(), Value("z"), Value(0.0)},            // NULL key misses
      Tuple{Value(int64_t{1}), Value("w"), Value(0.0)},
  };
  ColumnBatch in = MakeBatch(rows, CallSchema(), &arena);
  ColumnBatch out;
  ASSERT_TRUE(
      VecRelKeyJoin(in, &rel, join->join_column(), join->schema(), &arena,
                    &out));
  EXPECT_EQ(Rows(out),
            (std::vector<Tuple>{
                Tuple{Value(int64_t{2}), Value("x"), Value(0.0),
                      Value(int64_t{2}), Value("NY")},
                Tuple{Value(int64_t{1}), Value("w"), Value(0.0),
                      Value(int64_t{1}), Value("NJ")}}));

  // String join keys stay on the row engine (whether or not the factory
  // admits the expression at all).
  Result<CaExprPtr> sjoin = CaExpr::RelKeyJoin(scan, &rel, "region");
  if (sjoin.ok()) EXPECT_EQ(PlanVectorInstr(*sjoin.value()), nullptr);
}

TEST(TransposeTest, TypeMismatchFails) {
  Arena arena;
  const Schema schema({{"a", DataType::kInt64}});
  std::vector<Tuple> rows = {Tuple{Value("not an int")}};
  ColumnBatch out;
  EXPECT_FALSE(TransposeRows(rows, schema, &arena, &out));
  // NULL matches any column type (ValidateTuple's rule).
  std::vector<Tuple> nulls = {Tuple{Value()}};
  EXPECT_TRUE(TransposeRows(nulls, schema, &arena, &out));
}

TEST(VecScratchTest, ClearIsGenerational) {
  VecScratch vs;
  auto never = [](uint32_t) { return false; };
  EXPECT_EQ(vs.FindOrInsert(42, 7, never), VecScratch::kNotFound);
  auto always = [](uint32_t) { return true; };
  EXPECT_EQ(vs.FindOrInsert(42, 8, always), 7u);
  vs.Clear();  // O(1): nothing is scanned, the generation advances
  EXPECT_EQ(vs.size(), 0u);
  EXPECT_EQ(vs.FindOrInsert(42, 9, always), VecScratch::kNotFound);
  EXPECT_EQ(vs.FindOrInsert(42, 10, always), 9u);
}

TEST(VecScratchTest, GrowRehashesLiveEntriesOnly) {
  VecScratch vs;
  auto never = [](uint32_t) { return false; };
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(vs.FindOrInsert(i * 0x9e3779b9u, i, never),
              VecScratch::kNotFound);
  }
  EXPECT_EQ(vs.size(), 100u);
  auto always = [](uint32_t) { return true; };
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(vs.FindOrInsert(i * 0x9e3779b9u, 0, always), i);
  }
}

TEST(ArenaSpillTest, BatchLargerThanInitialBlockSpillsAndReuses) {
  // Tiny blocks force every column array onto a dedicated spill block;
  // correctness must not depend on batch-fits-in-block.
  Arena arena(/*initial_block_bytes=*/64, /*max_block_bytes=*/256);
  VecScratch vs;
  const Schema schema({{"a", DataType::kInt64}, {"s", DataType::kString}});
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 4096; ++i) {
    rows.push_back(Tuple{Value(i % 512), Value(std::string(1 + i % 3, 'x'))});
  }
  ColumnBatch in = MakeBatch(rows, schema, &arena);
  ColumnBatch out;
  VecProject(in, {0, 1}, &vs, &arena, &out);
  // (i%512, i%3) cycles with period lcm(512,3) = 1536, and 4096 inputs
  // cover a full cycle: 1536 distinct pairs survive the dedupe.
  EXPECT_EQ(out.size(), 1536u);
  const size_t high_water = arena.bytes_allocated();
  EXPECT_GT(high_water, 64u);  // spilled past the initial block

  // Reset + rerun: same answer through recycled blocks.
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  ColumnBatch in2 = MakeBatch(rows, schema, &arena);
  ColumnBatch out2;
  VecProject(in2, {0, 1}, &vs, &arena, &out2);
  EXPECT_EQ(out2.size(), 1536u);
}

}  // namespace
}  // namespace exec
}  // namespace chronicle
