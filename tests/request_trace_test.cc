// Tests for end-to-end request tracing (src/obs/request_trace.h).
//
// Unit half: the traceparent codec, the sampling decision, the seqlock
// span ring, RequestScope installation, and slow-request dispatch.
//
// Integration half (the acceptance property from the experiment plan):
// concurrent traced /v1/append and /v1/sql against a REAL 4-shard
// WireService over a loopback socket. Sampled requests must yield one
// complete span tree in /requests.json — every stage span parent-linked
// under the request root, queue_wait tagged with the ingest worker and
// maintain tagged with the shard that ran it — and unsampled requests
// must record zero spans. Run under TSan in CI: the emitters are the
// HTTP threads, the ingest worker, and the shard engines concurrently.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cql/session.h"
#include <gtest/gtest.h>
#include "net/http_client.h"
#include "net/wire_service.h"
#include "obs/request_trace.h"

namespace chronicle {
namespace {

using cql::Session;
using net::HttpClient;
using net::NetOptions;
using net::WireService;
using obs::ReqStage;
using obs::RequestScope;
using obs::RequestSpan;
using obs::RequestTracer;
using obs::TraceContext;

// ---------------------------------------------------------------------------
// traceparent codec

TEST(Traceparent, RoundTrip) {
  TraceContext ctx;
  ASSERT_TRUE(obs::ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
  EXPECT_EQ(ctx.trace_hi, 0x4bf92f3577b34da6ull);
  EXPECT_EQ(ctx.trace_lo, 0xa3ce929d0e0e4736ull);
  EXPECT_EQ(ctx.parent_span, 0x00f067aa0ba902b7ull);
  EXPECT_TRUE(ctx.sampled);
  EXPECT_TRUE(ctx.valid());

  EXPECT_EQ(obs::FormatTraceparent(ctx, 0x00f067aa0ba902b7ull),
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
  ctx.sampled = false;
  EXPECT_EQ(obs::FormatTraceparent(ctx, 1),
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000001-00");
}

TEST(Traceparent, RejectsMalformed) {
  TraceContext ctx;
  // Wrong length / structure.
  EXPECT_FALSE(obs::ParseTraceparent("", &ctx));
  EXPECT_FALSE(obs::ParseTraceparent("00-abc-def-01", &ctx));
  // Unsupported version.
  EXPECT_FALSE(obs::ParseTraceparent(
      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
  // Zero trace id / zero span id.
  EXPECT_FALSE(obs::ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &ctx));
  EXPECT_FALSE(obs::ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &ctx));
  // Upper-case hex is invalid per W3C trace-context.
  EXPECT_FALSE(obs::ParseTraceparent(
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", &ctx));
  // Dash in the wrong place.
  EXPECT_FALSE(obs::ParseTraceparent(
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &ctx));
  // An unsampled but otherwise valid header parses with sampled=false.
  ASSERT_TRUE(obs::ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", &ctx));
  EXPECT_FALSE(ctx.sampled);
}

// ---------------------------------------------------------------------------
// sampling

TEST(RequestTracerTest, SampleRateZeroNeverSamples) {
  RequestTracer tracer(64, 0.0, 0);
  for (int i = 0; i < 256; ++i) {
    TraceContext ctx = tracer.Mint();
    EXPECT_TRUE(ctx.valid());
    EXPECT_FALSE(ctx.sampled);
  }
}

TEST(RequestTracerTest, SampleRateOneAlwaysSamples) {
  RequestTracer tracer(64, 1.0, 0);
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(tracer.Mint().sampled);
  }
}

TEST(RequestTracerTest, FractionalRateSamplesApproximately) {
  RequestTracer tracer(64, 0.25, 0);
  int sampled = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (tracer.Mint().sampled) ++sampled;
  }
  EXPECT_GT(sampled, kTrials / 8);      // well above 0
  EXPECT_LT(sampled, kTrials * 3 / 8);  // well below half
}

TEST(RequestTracerTest, DisabledRingForcesUnsampled) {
  RequestTracer tracer(0, 1.0, 0);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.Mint().sampled);
  EXPECT_EQ(tracer.Snapshot().size(), 0u);
}

// ---------------------------------------------------------------------------
// the span ring

TEST(RequestTracerTest, EmitSnapshotRoundTrip) {
  RequestTracer tracer(64, 1.0, 0);
  TraceContext ctx = tracer.Mint();
  const uint64_t root = tracer.NewSpanId();
  tracer.Emit(ctx, root, 0, ReqStage::kRequest, -1, 0, 100, 50, 202);
  tracer.Emit(ctx, tracer.NewSpanId(), root, ReqStage::kMaintain, 3, 1, 110,
              20, 7);

  std::vector<RequestSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, root);
  EXPECT_EQ(spans[0].stage, ReqStage::kRequest);
  EXPECT_EQ(spans[0].detail, 202u);
  EXPECT_EQ(spans[1].parent_span, root);
  EXPECT_EQ(spans[1].stage, ReqStage::kMaintain);
  EXPECT_EQ(spans[1].shard, 3);
  EXPECT_EQ(spans[1].worker, 1);
  EXPECT_EQ(spans[1].start_ns, 110);
  EXPECT_EQ(spans[1].duration_ns, 20);
}

TEST(RequestTracerTest, RingRetainsNewestAtCapacity) {
  RequestTracer tracer(8, 1.0, 0);
  TraceContext ctx = tracer.Mint();
  for (int i = 0; i < 100; ++i) {
    tracer.Emit(ctx, tracer.NewSpanId(), 1, ReqStage::kAppend, -1, 0, i, 1,
                static_cast<uint64_t>(i));
  }
  std::vector<RequestSpan> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), tracer.capacity());
  // Oldest first, and only the newest `capacity` survive.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].detail, 100 - tracer.capacity() + i);
  }
  EXPECT_EQ(tracer.total_emitted(), 100u);
}

TEST(RequestTracerTest, ConcurrentEmittersAreTornFree) {
  RequestTracer tracer(256, 1.0, 0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const RequestSpan& s : tracer.Snapshot()) {
        // Writers always store span_id == detail; a torn read would break
        // the invariant (and TSan would flag the race).
        ASSERT_EQ(s.span_id, s.detail);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      TraceContext ctx = tracer.Mint();
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(t) * kPerThread + static_cast<uint64_t>(i) +
            1;
        tracer.Emit(ctx, id, 1, ReqStage::kAppend, t, static_cast<uint16_t>(t),
                    i, 1, id);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(tracer.total_emitted(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// RequestScope

TEST(RequestScopeTest, InstallsOnlyForSampledContexts) {
  RequestTracer tracer(64, 1.0, 0);
  EXPECT_EQ(RequestScope::Current(), nullptr);

  TraceContext unsampled = tracer.Mint();
  unsampled.sampled = false;
  {
    RequestScope scope(&tracer, unsampled, 1, 0);
    EXPECT_EQ(RequestScope::Current(), nullptr);
  }

  TraceContext sampled = tracer.Mint();
  ASSERT_TRUE(sampled.sampled);
  {
    RequestScope outer(&tracer, sampled, 42, 1);
    ASSERT_NE(RequestScope::Current(), nullptr);
    EXPECT_EQ(RequestScope::Current()->root_span, 42u);
    EXPECT_EQ(RequestScope::Current()->worker, 1);
    {
      RequestScope inner(&tracer, sampled, 43, 2);
      EXPECT_EQ(RequestScope::Current()->root_span, 43u);
    }
    EXPECT_EQ(RequestScope::Current()->root_span, 42u);
  }
  EXPECT_EQ(RequestScope::Current(), nullptr);
}

// ---------------------------------------------------------------------------
// slow-request dispatch

TEST(RequestTracerTest, SlowCaptureFiresOnlyOverBudget) {
  RequestTracer tracer(64, 1.0, 1000);
  uint64_t seen_hi = 0, seen_lo = 0;
  int64_t seen_ns = 0;
  int calls = 0;
  tracer.set_slow_capture([&](uint64_t hi, uint64_t lo, int64_t total) {
    seen_hi = hi;
    seen_lo = lo;
    seen_ns = total;
    ++calls;
  });

  TraceContext ctx = tracer.Mint();
  tracer.MaybeCaptureSlow(ctx, 999);  // under budget
  EXPECT_EQ(calls, 0);
  TraceContext unsampled = ctx;
  unsampled.sampled = false;
  tracer.MaybeCaptureSlow(unsampled, 5000);  // unsampled: no tree to dump
  EXPECT_EQ(calls, 0);
  tracer.MaybeCaptureSlow(ctx, 5000);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_hi, ctx.trace_hi);
  EXPECT_EQ(seen_lo, ctx.trace_lo);
  EXPECT_EQ(seen_ns, 5000);
  EXPECT_EQ(tracer.slow_captures(), 1u);
}

// ---------------------------------------------------------------------------
// the wire: concurrent traced requests against a 4-shard service

constexpr char kDdl[] =
    "CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64, "
    "charge DOUBLE) RETAIN LAST 8;"
    "CREATE VIEW by_caller AS "
    "SELECT caller, SUM(minutes) AS m, COUNT(*) AS n "
    "FROM calls GROUP BY caller;";

// A client traceparent with a recognizable per-request trace id; `flags`
// "01" forces sampling, "00" forces the zero-span path.
std::string ClientTraceparent(int thread, int request, const char* flags) {
  char buf[64];
  snprintf(buf, sizeof(buf), "00-%016x%016x-00f067aa0ba902b7-%s",
           thread + 1, request + 1, flags);
  return buf;
}

std::string ClientTraceId(int thread, int request) {
  char buf[40];
  snprintf(buf, sizeof(buf), "%016x%016x", thread + 1, request + 1);
  return buf;
}

// Extracts the {"trace_id":"<id>",...} object from /requests.json ("" when
// absent). Balanced-brace-free: the object ends at the first "]}" (the
// close of its spans array).
std::string ExtractTrace(const std::string& body, const std::string& id) {
  const size_t at = body.find("{\"trace_id\":\"" + id + "\"");
  if (at == std::string::npos) return "";
  const size_t end = body.find("]}", at);
  return body.substr(at, end == std::string::npos ? std::string::npos
                                                  : end + 2 - at);
}

size_t CountStage(const std::string& trace, const std::string& stage) {
  const std::string needle = "\"stage\":\"" + stage + "\"";
  size_t n = 0;
  for (size_t at = trace.find(needle); at != std::string::npos;
       at = trace.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

class WireTraceTest : public ::testing::Test {
 protected:
  void Start(size_t shards, double sample_rate, size_t capacity = 8192) {
    DatabaseOptions options;
    options.sharding.num_shards = shards;
    options.set_request_trace(capacity, sample_rate);
    auto session = Session::Open(std::move(options));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    session_ = std::move(*session);
    auto ddl = session_->ExecuteScript(kDdl);
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
    service_ = std::make_unique<WireService>(session_.get(), NetOptions{});
    ASSERT_TRUE(service_->Start(0).ok());
  }

  void TearDown() override {
    if (service_ != nullptr) service_->Stop();
  }

  std::string OpenWireSession(HttpClient* client) {
    auto resp = client->Post("/v1/session", "");
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    const std::string marker = "\"session\":\"";
    const size_t at = resp->body.find(marker);
    EXPECT_NE(at, std::string::npos) << resp->body;
    const size_t start = at + marker.size();
    return resp->body.substr(start, resp->body.find('"', start) - start);
  }

  std::unique_ptr<Session> session_;
  std::unique_ptr<WireService> service_;
};

TEST_F(WireTraceTest, ConcurrentTracedRequestsYieldCompleteTrees) {
  Start(/*shards=*/4, /*sample_rate=*/0.0);
  HttpClient setup(service_->port());
  const std::string sid = OpenWireSession(&setup);

  // Two append threads and two SQL threads; even requests forced-sampled
  // via the client flag, odd requests explicitly unsampled. Sample rate 0
  // means the CLIENT decision is the only source of sampling.
  constexpr int kAppendThreads = 2;
  constexpr int kSqlThreads = 2;
  constexpr int kPerThread = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppendThreads; ++t) {
    threads.emplace_back([this, t, sid, &failures] {
      HttpClient client(service_->port());
      for (int i = 0; i < kPerThread; ++i) {
        // Eight distinct caller keys so the router fans across shards.
        std::string body;
        for (int r = 0; r < 8; ++r) {
          body += std::to_string(t * 8 + r) + "\tus\t" + std::to_string(i) +
                  "\t1.5\n";
        }
        auto resp = client.Post(
            "/v1/append?chronicle=calls", body,
            {{"X-Chronicle-Session", sid},
             {"traceparent", ClientTraceparent(t, i, i % 2 == 0 ? "01"
                                                                : "00")}});
        if (!resp.ok() || resp->status != 202) ++failures;
      }
    });
  }
  for (int t = 0; t < kSqlThreads; ++t) {
    threads.emplace_back([this, t, sid, &failures] {
      HttpClient client(service_->port());
      for (int i = 0; i < kPerThread; ++i) {
        auto resp = client.Post(
            "/v1/sql", "SELECT * FROM by_caller;",
            {{"X-Chronicle-Session", sid},
             {"traceparent", ClientTraceparent(kAppendThreads + t, i,
                                               i % 2 == 0 ? "01" : "00")}});
        if (!resp.ok() || resp->status != 200) ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto drained = setup.Post("/v1/drain", "", {{"X-Chronicle-Session", sid}});
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->status, 200) << drained->body;

  auto reqs = setup.Get("/requests.json");
  ASSERT_TRUE(reqs.ok());
  ASSERT_EQ(reqs->status, 200);
  const std::string& body = reqs->body;

  // Every sampled append trace: one complete tree with all seven stages,
  // queue_wait emitted by the ingest worker (worker 1) and maintain tagged
  // with a real shard id, all parent-linked under the request root.
  for (int t = 0; t < kAppendThreads; ++t) {
    for (int i = 0; i < kPerThread; i += 2) {
      const std::string trace = ExtractTrace(body, ClientTraceId(t, i));
      ASSERT_FALSE(trace.empty())
          << "sampled append trace " << ClientTraceId(t, i)
          << " missing from /requests.json: " << body;
      EXPECT_EQ(CountStage(trace, "request"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "parse"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "queue_wait"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "append"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "wal_commit"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "maintain"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "merge"), 1u) << trace;
      EXPECT_GE(CountStage(trace, "respond"), 1u) << trace;

      // Root id, then parent linkage: every non-root span names the root.
      const std::string root_marker = "\"root_span_id\":\"";
      const size_t root_at = trace.find(root_marker);
      ASSERT_NE(root_at, std::string::npos);
      const std::string root =
          trace.substr(root_at + root_marker.size(), 16);
      EXPECT_NE(root, "0000000000000000") << trace;
      const std::string parent_marker = "\"parent_span_id\":\"";
      size_t linked = 0;
      for (size_t at = trace.find(parent_marker); at != std::string::npos;
           at = trace.find(parent_marker, at + parent_marker.size())) {
        const std::string parent =
            trace.substr(at + parent_marker.size(), 16);
        // The root's own parent is the CLIENT's span id; everything else
        // must hang off the root.
        if (parent == "00f067aa0ba902b7") continue;
        EXPECT_EQ(parent, root) << trace;
        ++linked;
      }
      EXPECT_GE(linked, 7u) << trace;

      // queue_wait came from the ingest worker; maintain from a shard.
      EXPECT_NE(trace.find("\"stage\":\"queue_wait\",\"shard\":-1,"
                           "\"worker\":1"),
                std::string::npos)
          << trace;
      bool sharded_maintain = false;
      const std::string maintain_marker = "\"stage\":\"maintain\",\"shard\":";
      for (size_t at = trace.find(maintain_marker); at != std::string::npos;
           at = trace.find(maintain_marker, at + maintain_marker.size())) {
        if (trace[at + maintain_marker.size()] != '-') sharded_maintain = true;
      }
      EXPECT_TRUE(sharded_maintain) << trace;
    }
  }

  // Sampled SQL traces: parse + request present.
  for (int t = 0; t < kSqlThreads; ++t) {
    const std::string trace =
        ExtractTrace(body, ClientTraceId(kAppendThreads + t, 0));
    ASSERT_FALSE(trace.empty()) << body;
    EXPECT_EQ(CountStage(trace, "request"), 1u) << trace;
    EXPECT_GE(CountStage(trace, "parse"), 1u) << trace;
    EXPECT_GE(CountStage(trace, "respond"), 1u) << trace;
  }

  // Unsampled requests (flag 00) recorded ZERO spans.
  for (int t = 0; t < kAppendThreads + kSqlThreads; ++t) {
    for (int i = 1; i < kPerThread; i += 2) {
      EXPECT_EQ(ExtractTrace(body, ClientTraceId(t, i)), "")
          << "unsampled trace leaked spans: " << ClientTraceId(t, i);
    }
  }

  // The merged per-shard trace endpoint and the history endpoint answer.
  auto trace_json = setup.Get("/trace.json");
  ASSERT_TRUE(trace_json.ok());
  EXPECT_EQ(trace_json->status, 200);
  auto history = setup.Get("/history.json");
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->status, 200);
  EXPECT_NE(history->body.find("\"samples\""), std::string::npos);
}

TEST_F(WireTraceTest, TraceparentEchoedOnEveryResponse) {
  Start(/*shards=*/1, /*sample_rate=*/0.0);
  HttpClient client(service_->port());
  const std::string sid = OpenWireSession(&client);

  // No client header: the service mints a context and echoes it.
  auto resp = client.Post("/v1/sql", "SELECT * FROM by_caller;",
                          {{"X-Chronicle-Session", sid}});
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  const std::string* minted = resp->FindHeader("traceparent");
  ASSERT_NE(minted, nullptr);
  obs::TraceContext ctx;
  ASSERT_TRUE(obs::ParseTraceparent(*minted, &ctx)) << *minted;
  EXPECT_FALSE(ctx.sampled);  // rate 0, no client flag

  // Client header: the trace id comes back verbatim.
  auto forced = client.Post(
      "/v1/sql", "SELECT * FROM by_caller;",
      {{"X-Chronicle-Session", sid},
       {"traceparent",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"}});
  ASSERT_TRUE(forced.ok());
  const std::string* echoed = forced->FindHeader("traceparent");
  ASSERT_NE(echoed, nullptr);
  EXPECT_EQ(echoed->substr(0, 36),
            "00-4bf92f3577b34da6a3ce929d0e0e4736-");
  EXPECT_EQ(echoed->substr(53), "01");

  // The sampled request's tree shows up with the client id.
  auto reqs = client.Get("/requests.json");
  ASSERT_TRUE(reqs.ok());
  EXPECT_NE(reqs->body.find("4bf92f3577b34da6a3ce929d0e0e4736"),
            std::string::npos)
      << reqs->body;
}

TEST_F(WireTraceTest, TracerDisabledStillServesPlaceholders) {
  DatabaseOptions options;
  options.set_request_trace(0, 0.0);
  auto session = Session::Open(std::move(options));
  ASSERT_TRUE(session.ok());
  session_ = std::move(*session);
  ASSERT_TRUE(session_->ExecuteScript(kDdl).ok());
  service_ = std::make_unique<WireService>(session_.get(), NetOptions{});
  ASSERT_TRUE(service_->Start(0).ok());

  HttpClient client(service_->port());
  auto reqs = client.Get("/requests.json");
  ASSERT_TRUE(reqs.ok());
  EXPECT_EQ(reqs->status, 200);
  EXPECT_NE(reqs->body.find("\"traces\":[]"), std::string::npos);
  // No echo when no tracer is attached.
  const std::string sid = OpenWireSession(&client);
  auto resp = client.Post("/v1/sql", "SELECT * FROM by_caller;",
                          {{"X-Chronicle-Session", sid}});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->FindHeader("traceparent"), nullptr);
}

}  // namespace
}  // namespace chronicle
