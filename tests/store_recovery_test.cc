// Tiered store × WAL recovery: sealed segments are the checkpoint of the
// chronicle prefix. After a crash — right after a seal, mid-seal (stray
// temp file), or with a vandalized segment — recovery must rebuild state
// identical to a clean uninterrupted run: same views, same retained rows,
// and (because seal boundaries are a pure function of the row stream) the
// same segment files on disk.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "wal/recovery.h"
#include "wal/wal.h"
#include "workload/call_records.h"

namespace chronicle {
namespace wal {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_storerec_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string wal_dir() const { return path + "/wal"; }
  std::string store_dir() const { return path + "/store"; }
  std::string path;
};

DatabaseOptions TieredOptions(const std::string& store_dir) {
  DatabaseOptions options;
  store::StorageOptions storage;
  storage.data_dir = store_dir;
  storage.hot_rows = 8;
  storage.segment_rows = 4;
  options.storage = storage;
  return options;
}

void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                                  RetentionPolicy::Tiered(8))
                  .ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  ASSERT_TRUE(db->CreateView("minutes", scan,
                             SummarySpec::GroupBy(scan->schema(), {"caller"},
                                                  {AggSpec::Sum("minutes", "m"),
                                                   AggSpec::Count("n")})
                                 .value())
                  .ok());
}

void ApplyStep(ChronicleDatabase* db, CallRecordGenerator* gen, int step) {
  ASSERT_TRUE(db->Append("calls", gen->NextBatch(1 + step % 3)).ok());
}

struct Snapshot {
  std::vector<Tuple> minutes;
  std::vector<std::pair<SeqNum, Tuple>> retained;  // warm + hot, merged
  uint64_t last_sn = 0;
  uint64_t num_retained = 0;
  // filename -> size of every sealed segment file.
  std::map<std::string, uint64_t> segments;
};

Snapshot Capture(const ChronicleDatabase& db, const std::string& store_dir) {
  Snapshot snap;
  snap.minutes = db.ScanView("minutes").value();
  const Chronicle* chron = db.group().GetChronicle(0).value();
  EXPECT_TRUE(chron
                  ->ScanRetained([&snap](const ChronicleRow& row) {
                    snap.retained.emplace_back(row.sn, row.values);
                  })
                  .ok());
  snap.last_sn = db.group().last_sn();
  snap.num_retained = chron->num_retained();
  for (const auto& entry : fs::directory_iterator(store_dir + "/calls")) {
    if (entry.path().extension() == ".seg") {
      snap.segments[entry.path().filename().string()] = fs::file_size(entry);
    }
  }
  return snap;
}

void ExpectMatches(const Snapshot& got, const Snapshot& want) {
  EXPECT_EQ(got.minutes, want.minutes);
  EXPECT_EQ(got.retained, want.retained);
  EXPECT_EQ(got.last_sn, want.last_sn);
  EXPECT_EQ(got.num_retained, want.num_retained);
  EXPECT_EQ(got.segments, want.segments);
}

// A clean uninterrupted run of `steps` ticks, tiered but WAL-free.
Snapshot ReferenceAfter(const std::string& store_dir, int steps) {
  ChronicleDatabase db(TieredOptions(store_dir));
  ApplyDdl(&db);
  CallRecordGenerator gen;
  for (int step = 0; step < steps; ++step) ApplyStep(&db, &gen, step);
  return Capture(db, store_dir);
}

// Runs `steps` ticks with WAL + tiered store attached, then "crashes".
void RunAndCrash(const ScratchDir& dir, int steps, int checkpoint_after = -1) {
  auto wal = Wal::Open(dir.wal_dir());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ChronicleDatabase db(TieredOptions(dir.store_dir()));
  ApplyDdl(&db);
  WalMutationLog log(wal->get(), &db);
  db.AttachMutationLog(&log);
  CallRecordGenerator gen;
  for (int step = 0; step < steps; ++step) {
    ApplyStep(&db, &gen, step);
    if (step == checkpoint_after) {
      ASSERT_TRUE((*wal)->WriteCheckpoint(db).ok());
    }
  }
  ASSERT_TRUE((*wal)->Close().ok());
}

Snapshot RecoverAndCapture(const ScratchDir& dir) {
  ChronicleDatabase db(TieredOptions(dir.store_dir()));
  ApplyDdl(&db);
  Result<RecoveryReport> report = Recover(dir.wal_dir(), &db);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return Capture(db, dir.store_dir());
}

TEST(StoreRecovery, KillAfterSealMatchesCleanRun) {
  ScratchDir crash("afterseal"), clean("afterseal_ref");
  const int kSteps = 50;  // plenty of seals at segment_rows = 4
  RunAndCrash(crash, kSteps);
  ExpectMatches(RecoverAndCapture(crash),
                ReferenceAfter(clean.store_dir(), kSteps));
}

TEST(StoreRecovery, KillMidSegmentLeavesTempAndConverges) {
  ScratchDir crash("midseg"), clean("midseg_ref");
  const int kSteps = 40;
  RunAndCrash(crash, kSteps);
  // Simulate dying inside AtomicWriteSegment: a partial temp file survives.
  {
    std::ofstream tmp(crash.store_dir() + "/calls/seg-000.tmp",
                      std::ios::binary);
    tmp << "partial segment image cut off mid-";
  }
  const Snapshot recovered = RecoverAndCapture(crash);
  ExpectMatches(recovered, ReferenceAfter(clean.store_dir(), kSteps));
  // The temp file was swept at attach.
  for (const auto& entry :
       fs::directory_iterator(crash.store_dir() + "/calls")) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST(StoreRecovery, CorruptSegmentFallsBackToWalTail) {
  ScratchDir crash("corrupt"), clean("corrupt_ref");
  const int kSteps = 40;
  RunAndCrash(crash, kSteps);
  // Vandalize the newest segment: the whole warm tier is quarantined and
  // every row must come back from the WAL.
  std::vector<std::string> segs;
  for (const auto& entry :
       fs::directory_iterator(crash.store_dir() + "/calls")) {
    if (entry.path().extension() == ".seg") segs.push_back(entry.path());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_FALSE(segs.empty());
  {
    std::fstream f(segs.back(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('\xff');
  }

  const Snapshot recovered = RecoverAndCapture(crash);
  const Snapshot reference = ReferenceAfter(clean.store_dir(), kSteps);
  // Views and rows match; deterministic seal boundaries mean even the
  // re-sealed segment files match the clean run (quarantined leftovers
  // aside, which keep the .quarantined extension).
  ExpectMatches(recovered, reference);
}

TEST(StoreRecovery, CheckpointPlusSegmentsPlusTail) {
  ScratchDir crash("ckpt"), clean("ckpt_ref");
  const int kSteps = 60;
  RunAndCrash(crash, kSteps, /*checkpoint_after=*/30);
  ExpectMatches(RecoverAndCapture(crash),
                ReferenceAfter(clean.store_dir(), kSteps));
}

TEST(StoreRecovery, RecoverResumeAndRecoverAgain) {
  ScratchDir crash("resume"), clean("resume_ref");
  RunAndCrash(crash, 30);
  {
    ChronicleDatabase db(TieredOptions(crash.store_dir()));
    ApplyDdl(&db);
    ASSERT_TRUE(Recover(crash.wal_dir(), &db).ok());
    auto wal = Wal::Open(crash.wal_dir());
    ASSERT_TRUE(wal.ok());
    WalMutationLog log(wal->get(), &db);
    db.AttachMutationLog(&log);
    CallRecordGenerator gen;
    for (int step = 0; step < 30; ++step) ApplyStep(&db, &gen, step);
    // Note: the generator restarts, so this run's rows differ from a
    // single 60-step run; build the matching reference the same way.
    ASSERT_TRUE((*wal)->Close().ok());
  }
  const Snapshot recovered = RecoverAndCapture(crash);

  ChronicleDatabase ref(TieredOptions(clean.store_dir()));
  ApplyDdl(&ref);
  {
    CallRecordGenerator gen;
    for (int step = 0; step < 30; ++step) ApplyStep(&ref, &gen, step);
  }
  {
    CallRecordGenerator gen;
    for (int step = 0; step < 30; ++step) ApplyStep(&ref, &gen, step);
  }
  ExpectMatches(recovered, Capture(ref, clean.store_dir()));
}

}  // namespace
}  // namespace wal
}  // namespace chronicle
