#include "algebra/validate.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

CaExprPtr Scan() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

TEST(ValidateTest, LegalCaPasses) {
  CaExprPtr plan =
      CaExpr::GroupBySeq(
          CaExpr::Select(Scan(), Gt(Col("minutes"), Lit(Value(0)))).value(),
          {"caller"}, {AggSpec::Sum("minutes")})
          .value();
  EXPECT_TRUE(ValidateChronicleAlgebra(*plan).ok());
}

// Theorem 4.3, part 1: SN-dropping projection is not a chronicle.
TEST(ValidateTest, RejectsProjectDropSn) {
  CaExprPtr plan = CaExpr::ProjectDropSn(Scan(), {"caller"}).value();
  Status st = ValidateChronicleAlgebra(*plan);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("Theorem 4.3"), std::string::npos);
}

// Theorem 4.3, part 2: group-by without SN is not a chronicle.
TEST(ValidateTest, RejectsGroupByNoSn) {
  CaExprPtr plan =
      CaExpr::GroupByNoSn(Scan(), {"caller"}, {AggSpec::Sum("minutes")}).value();
  Status st = ValidateChronicleAlgebra(*plan);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("summarization"), std::string::npos);
}

// Theorem 4.3, part 3: chronicle cross product needs old chronicle tuples.
TEST(ValidateTest, RejectsChronicleCross) {
  CaExprPtr plan = CaExpr::ChronicleCross(Scan(), Scan()).value();
  Status st = ValidateChronicleAlgebra(*plan);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("IM-C^k"), std::string::npos);
}

// Theorem 4.3, part 4: non-equijoin on SN needs old chronicle tuples.
TEST(ValidateTest, RejectsSeqThetaJoin) {
  CaExprPtr plan =
      CaExpr::SeqThetaJoin(Scan(), Scan(), CompareOp::kLt).value();
  Status st = ValidateChronicleAlgebra(*plan);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("IM-C^k"), std::string::npos);
}

TEST(ValidateTest, RejectionDetectedDeepInTree) {
  CaExprPtr bad = CaExpr::ChronicleCross(Scan(), Scan()).value();
  CaExprPtr wrapped =
      CaExpr::Select(bad, Gt(Col("minutes"), Lit(Value(0)))).value();
  EXPECT_FALSE(ValidateChronicleAlgebra(*wrapped).ok());
}

// Definition 4.1 predicate grammar.

TEST(Def41PredicateTest, AtomicComparisonsPass) {
  ScalarExprPtr col_const = Gt(Col("minutes"), Lit(Value(5)));
  EXPECT_TRUE(IsDefinition41Predicate(*col_const));
  ScalarExprPtr col_col = Eq(Col("caller"), Col("minutes"));
  EXPECT_TRUE(IsDefinition41Predicate(*col_col));
}

TEST(Def41PredicateTest, DisjunctionsPass) {
  ScalarExprPtr pred = ScalarExpr::Or(
      Eq(Col("region"), Lit(Value("NJ"))),
      ScalarExpr::Or(Eq(Col("region"), Lit(Value("NY"))),
                     Gt(Col("minutes"), Lit(Value(100)))));
  EXPECT_TRUE(IsDefinition41Predicate(*pred));
}

TEST(Def41PredicateTest, ConjunctionIsOutsideTheGrammar) {
  ScalarExprPtr pred = ScalarExpr::And(Gt(Col("minutes"), Lit(Value(0))),
                                       Eq(Col("region"), Lit(Value("NJ"))));
  EXPECT_FALSE(IsDefinition41Predicate(*pred));
}

TEST(Def41PredicateTest, ArithmeticOperandIsOutsideTheGrammar) {
  ScalarExprPtr pred =
      Gt(ScalarExpr::Arith(ArithOp::kMul, Col("minutes"), Lit(Value(2))),
         Lit(Value(10)));
  EXPECT_FALSE(IsDefinition41Predicate(*pred));
}

TEST(Def41PredicateTest, SeqNumComparisonCountsAsAtomic) {
  ScalarExprPtr pred = Ge(ScalarExpr::SeqNumRef(), Lit(Value(100)));
  EXPECT_TRUE(IsDefinition41Predicate(*pred));
}

TEST(ValidateStrictTest, FlagsNonConformingSelect) {
  ScalarExprPtr strict_pred = Gt(Col("minutes"), Lit(Value(0)));
  CaExprPtr ok_plan = CaExpr::Select(Scan(), std::move(strict_pred)).value();
  EXPECT_TRUE(ValidateStrictPredicates(*ok_plan).ok());

  ScalarExprPtr loose_pred = ScalarExpr::And(
      Gt(Col("minutes"), Lit(Value(0))), Eq(Col("region"), Lit(Value("NJ"))));
  CaExprPtr loose_plan = CaExpr::Select(Scan(), std::move(loose_pred)).value();
  Status st = ValidateStrictPredicates(*loose_plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("Definition 4.1"), std::string::npos);
}

}  // namespace
}  // namespace chronicle
