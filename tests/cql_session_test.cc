// Tests for cql::Session — the shared statement-execution layer the
// shell, the wire service, and these tests all drive. Coverage here is
// about the session contract itself: sharded/unsharded parity for the
// same script, the bulk-ingest entry point, durability plumbing, the
// stats-enricher chain, and the one JSON error shape.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cql/session.h"
#include "workload/call_records.h"

namespace chronicle {
namespace {

namespace fs = std::filesystem;

using cql::ErrorJson;
using cql::Session;

// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_session_test_" + name + "_" +
               std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

constexpr char kDdl[] =
    "CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64, "
    "charge DOUBLE) RETAIN LAST 8;"
    "CREATE VIEW by_caller AS "
    "SELECT caller, SUM(minutes) AS m, COUNT(*) AS n "
    "FROM calls GROUP BY caller;";

constexpr char kDml[] =
    "INSERT INTO calls VALUES (1, 'NJ', 10, 2.0), (2, 'NY', 3, 0.5) AT 1;"
    "INSERT INTO calls VALUES (1, 'NJ', 45, 9.0) AT 30;"
    "INSERT INTO calls VALUES (2, 'NY', 8, 2.0), (3, 'CA', 6, 1.0) AT 100;";

std::unique_ptr<Session> Open(size_t shards) {
  DatabaseOptions options;
  options.sharding.num_shards = shards;
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return std::move(*session);
}

std::vector<std::string> SortedRows(const cql::ExecResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const Tuple& row : result.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ErrorJsonTest, OneShapeForEverySurface) {
  EXPECT_EQ(ErrorJson(Status::NotFound("no such view: x")),
            "{\"error\":{\"code\":\"NotFound\","
            "\"message\":\"no such view: x\"}}");
  // Quotes and control characters in the message are escaped.
  const std::string json =
      ErrorJson(Status::InvalidArgument("bad \"cell\"\n"));
  EXPECT_NE(json.find("\\\"cell\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
}

TEST(CqlSessionTest, ShardedAndUnshardedRunTheSameScript) {
  std::unique_ptr<Session> plain = Open(1);
  std::unique_ptr<Session> sharded = Open(4);
  ASSERT_FALSE(plain->sharded());
  ASSERT_TRUE(sharded->sharded());
  EXPECT_EQ(sharded->num_shards(), 4u);

  for (Session* s : {plain.get(), sharded.get()}) {
    auto ddl = s->ExecuteScript(kDdl);
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
    auto dml = s->ExecuteScript(kDml);
    ASSERT_TRUE(dml.ok()) << dml.status().ToString();
  }

  auto plain_rows = plain->ExecuteSql("SELECT * FROM by_caller;");
  auto sharded_rows = sharded->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(plain_rows.ok()) << plain_rows.status().ToString();
  ASSERT_TRUE(sharded_rows.ok()) << sharded_rows.status().ToString();
  EXPECT_EQ(plain_rows->rows.size(), 3u);
  EXPECT_EQ(SortedRows(*plain_rows), SortedRows(*sharded_rows));
}

TEST(CqlSessionTest, ScriptStopsAtFirstErrorButKeepsPriorEffects) {
  std::unique_ptr<Session> session = Open(1);
  ASSERT_TRUE(session->ExecuteScript(kDdl).ok());

  auto result = session->ExecuteScript(
      "INSERT INTO calls VALUES (9, 'NJ', 1, 1.0) AT 1;"
      "SELECT * FROM no_such_view;"
      "INSERT INTO calls VALUES (10, 'NY', 1, 1.0) AT 2;");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);

  // The first insert committed; the one after the error never ran.
  auto rows = session->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0], Value(9));
}

TEST(CqlSessionTest, AppendRowsIsTheBulkIngestPath) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    std::unique_ptr<Session> session = Open(shards);
    ASSERT_TRUE(session->ExecuteScript(kDdl).ok());

    CallRecordGenerator gen({.num_accounts = 20, .seed = 3});
    std::vector<std::vector<Tuple>> ticks;
    for (int t = 0; t < 4; ++t) ticks.push_back(gen.NextBatch(16));
    auto applied = session->AppendRows("calls", std::move(ticks));
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_EQ(*applied, 64u);

    auto missing = session->AppendRows("no_such_chronicle", {{}});
    EXPECT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

    auto rows = session->ExecuteSql("SELECT * FROM by_caller;");
    ASSERT_TRUE(rows.ok());
    int64_t total = 0;
    for (const Tuple& row : rows->rows) total += row[2].int64();  // n
    EXPECT_EQ(total, 64);
  }
}

TEST(CqlSessionTest, ReconfigureMaintenanceBroadcastsToEveryEngine) {
  std::unique_ptr<Session> session = Open(4);
  MaintenanceOptions m = session->maintenance_options();
  m.use_compiled_plans = true;
  m.use_columnar_kernels = true;
  session->ReconfigureMaintenance(m);
  for (size_t k = 0; k < 4; ++k) {
    const MaintenanceOptions& got =
        session->sharded_db()->engine(k).maintenance_options();
    EXPECT_TRUE(got.use_compiled_plans);
    EXPECT_TRUE(got.use_columnar_kernels);
  }
}

TEST(CqlSessionTest, WalAttachCheckpointRecoverRoundTrip) {
  ScratchDir dir("wal_roundtrip");

  {
    std::unique_ptr<Session> session = Open(1);
    ASSERT_TRUE(session->ExecuteScript(kDdl).ok());

    // Checkpointing without a WAL is a precondition failure, not a crash.
    Status no_wal = session->WriteCheckpoint();
    EXPECT_EQ(no_wal.code(), StatusCode::kFailedPrecondition);

    Status attached = session->AttachWal(dir.path);
    ASSERT_TRUE(attached.ok()) << attached.ToString();
    ASSERT_NE(session->wal(), nullptr);

    ASSERT_TRUE(session->ExecuteScript(kDml).ok());
    Status ckpt = session->WriteCheckpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.ToString();
    // More mutations after the checkpoint: recovery must replay the tail.
    ASSERT_TRUE(session
                    ->ExecuteSql(
                        "INSERT INTO calls VALUES (4, 'TX', 2, 0.2) AT 200;")
                    .ok());
    Status detached = session->DetachWal();
    ASSERT_TRUE(detached.ok()) << detached.ToString();
  }

  // Fresh session, same DDL, recover: checkpoint + log tail.
  std::unique_ptr<Session> recovered = Open(1);
  ASSERT_TRUE(recovered->ExecuteScript(kDdl).ok());
  auto report = recovered->Recover(dir.path);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_restored);
  EXPECT_EQ(report->replay.records_applied, 1u);

  auto rows = recovered->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 4u);

  // Logging resumed: new mutations land in the recovered WAL.
  ASSERT_NE(recovered->wal(), nullptr);
  ASSERT_TRUE(
      recovered->ExecuteSql("INSERT INTO calls VALUES (5, 'WA', 1, 0.1) AT 300;")
          .ok());
}

TEST(CqlSessionTest, EnricherChainMultiplexesTheOneHook) {
  std::unique_ptr<Session> session = Open(1);
  ASSERT_TRUE(session->ExecuteScript(kDdl).ok());

  int first_runs = 0;
  int second_runs = 0;
  const size_t first =
      session->AddStatsEnricher([&](obs::StatsSnapshot*) { ++first_runs; });
  const size_t second =
      session->AddStatsEnricher([&](obs::StatsSnapshot*) { ++second_runs; });
  ASSERT_NE(first, second);

  (void)session->CollectStats();
  EXPECT_EQ(first_runs, 1);
  EXPECT_EQ(second_runs, 1);

  session->RemoveStatsEnricher(first);
  (void)session->CollectStats();
  EXPECT_EQ(first_runs, 1);
  EXPECT_EQ(second_runs, 2);
  session->RemoveStatsEnricher(second);
}

}  // namespace
}  // namespace chronicle
