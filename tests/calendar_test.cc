#include "periodic/calendar.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

std::vector<int64_t> Containing(const Calendar& cal, Chronon t) {
  std::vector<int64_t> out;
  cal.IntervalsContaining(t, &out);
  return out;
}

TEST(IntervalTest, ContainsIsHalfOpen) {
  Interval iv{10, 20};
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_EQ(iv.ToString(), "[10, 20)");
}

TEST(FixedCalendarTest, FindsOverlappingIntervals) {
  FixedCalendar cal({{0, 10}, {5, 15}, {20, 30}});
  EXPECT_EQ(Containing(cal, 3), (std::vector<int64_t>{0}));
  EXPECT_EQ(Containing(cal, 7), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(Containing(cal, 12), (std::vector<int64_t>{1}));
  EXPECT_TRUE(Containing(cal, 17).empty());
  EXPECT_EQ(Containing(cal, 25), (std::vector<int64_t>{2}));
}

TEST(FixedCalendarTest, GetIntervalBounds) {
  FixedCalendar cal({{0, 10}});
  EXPECT_EQ(cal.GetInterval(0).value(), (Interval{0, 10}));
  EXPECT_TRUE(cal.GetInterval(1).status().IsOutOfRange());
  EXPECT_TRUE(cal.GetInterval(-1).status().IsOutOfRange());
}

TEST(PeriodicCalendarTest, TilesTheAxis) {
  auto cal = PeriodicCalendar::Make(100, 30).value();  // billing months
  EXPECT_TRUE(Containing(*cal, 99).empty());  // before origin
  EXPECT_EQ(Containing(*cal, 100), (std::vector<int64_t>{0}));
  EXPECT_EQ(Containing(*cal, 129), (std::vector<int64_t>{0}));
  EXPECT_EQ(Containing(*cal, 130), (std::vector<int64_t>{1}));
  EXPECT_EQ(Containing(*cal, 1000), (std::vector<int64_t>{30}));
  EXPECT_EQ(cal->GetInterval(2).value(), (Interval{160, 190}));
  EXPECT_TRUE(cal->GetInterval(-1).status().IsOutOfRange());
}

TEST(PeriodicCalendarTest, RejectsNonPositivePeriod) {
  EXPECT_FALSE(PeriodicCalendar::Make(0, 0).ok());
  EXPECT_FALSE(PeriodicCalendar::Make(0, -5).ok());
}

TEST(SlidingCalendarTest, OverlapCountIsWindowOverSlide) {
  // 30-day window sliding daily: every instant inside the steady state is
  // covered by exactly 30 intervals.
  auto cal = SlidingCalendar::Make(0, 30, 1).value();
  EXPECT_EQ(Containing(*cal, 100).size(), 30u);
  // Early instants are covered by fewer (indexes start at 0).
  EXPECT_EQ(Containing(*cal, 0), (std::vector<int64_t>{0}));
  EXPECT_EQ(Containing(*cal, 5).size(), 6u);
}

TEST(SlidingCalendarTest, MembershipMatchesGetInterval) {
  auto cal = SlidingCalendar::Make(7, 12, 5).value();
  for (Chronon t = 0; t < 100; ++t) {
    std::vector<int64_t> hits = Containing(*cal, t);
    // Verify exactly the returned intervals contain t.
    for (int64_t k = 0; k < 25; ++k) {
      Interval iv = cal->GetInterval(k).value();
      const bool listed = std::find(hits.begin(), hits.end(), k) != hits.end();
      EXPECT_EQ(iv.Contains(t), listed) << "t=" << t << " k=" << k;
    }
  }
}

TEST(SlidingCalendarTest, NonOverlappingWhenSlideEqualsWindow) {
  auto cal = SlidingCalendar::Make(0, 10, 10).value();
  for (Chronon t = 0; t < 50; ++t) {
    EXPECT_EQ(Containing(*cal, t).size(), 1u) << t;
  }
}

TEST(SlidingCalendarTest, RejectsNonPositiveParameters) {
  EXPECT_FALSE(SlidingCalendar::Make(0, 0, 1).ok());
  EXPECT_FALSE(SlidingCalendar::Make(0, 10, 0).ok());
}

TEST(CalendarTest, ToStringRenderings) {
  auto p = PeriodicCalendar::Make(0, 30).value();
  EXPECT_NE(p->ToString().find("period=30"), std::string::npos);
  auto s = SlidingCalendar::Make(0, 30, 1).value();
  EXPECT_NE(s->ToString().find("window=30"), std::string::npos);
  FixedCalendar f({{0, 1}});
  EXPECT_NE(f.ToString().find("[0, 1)"), std::string::npos);
}

}  // namespace
}  // namespace chronicle
