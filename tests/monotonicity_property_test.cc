// Property tests for Theorem 4.1 (monotonicity) and the Theorem 4.2
// independence claims:
//
//   * Every delta row of a tick carries exactly the tick's fresh SN.
//   * A CA view only GROWS under appends: eval(after) = eval(before) ∪ Δ,
//     and Δ is disjoint from eval(before).
//   * Delta computation never touches the chronicle: results are identical
//     whether the chronicle retains everything or nothing, and the
//     engine's working set does not grow with the number of past ticks.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "algebra/delta_engine.h"
#include "baseline/naive_engine.h"
#include "common/random.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

const char* kRegions[] = {"NJ", "NY", "CA", "TX"};

struct RowKey {
  SeqNum sn;
  std::string repr;
  bool operator<(const RowKey& other) const {
    return sn != other.sn ? sn < other.sn : repr < other.repr;
  }
  bool operator==(const RowKey& other) const {
    return sn == other.sn && repr == other.repr;
  }
};

std::string PlanName(const ::testing::TestParamInfo<size_t>& info) {
  static const char* const kNames[] = {"Scan",       "Select",     "Project",
                                       "Union",      "Difference", "SeqJoin",
                                       "GroupBySeq", "RelKeyJoin", "RelCross"};
  return kNames[info.param];
}

std::set<RowKey> ToSet(const std::vector<ChronicleRow>& rows) {
  std::set<RowKey> out;
  for (const ChronicleRow& row : rows) {
    out.insert(RowKey{row.sn, TupleToString(row.values)});
  }
  return out;
}

// Builds a family of CA plans over the scans and relation.
std::vector<CaExprPtr> Plans(CaExprPtr a, CaExprPtr b, const Relation* rel) {
  std::vector<CaExprPtr> plans;
  plans.push_back(a);
  plans.push_back(CaExpr::Select(a, Gt(Col("minutes"), Lit(Value(50)))).value());
  plans.push_back(CaExpr::Project(a, {"region"}).value());
  plans.push_back(
      CaExpr::Union(
          CaExpr::Select(a, Eq(Col("region"), Lit(Value("NJ")))).value(),
          CaExpr::Select(a, Gt(Col("minutes"), Lit(Value(100)))).value())
          .value());
  plans.push_back(
      CaExpr::Difference(
          a, CaExpr::Select(a, Eq(Col("region"), Lit(Value("NJ")))).value())
          .value());
  plans.push_back(CaExpr::SeqJoin(a, b).value());
  plans.push_back(
      CaExpr::GroupBySeq(a, {"region"}, {AggSpec::Sum("minutes", "m")}).value());
  plans.push_back(CaExpr::RelKeyJoin(a, rel, "caller").value());
  plans.push_back(CaExpr::RelCross(a, rel).value());
  return plans;
}

class MonotonicityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MonotonicityTest, DeltasOnlyAddRowsWithTheNewSn) {
  ChronicleGroup group;
  ChronicleId ca = group.CreateChronicle("a", CallSchema()).value();
  ChronicleId cb = group.CreateChronicle("b", CallSchema()).value();
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple{Value(i), Value("NJ")}).ok());
  }

  CaExprPtr scan_a = CaExpr::Scan(*group.GetChronicle(ca).value()).value();
  CaExprPtr scan_b = CaExpr::Scan(*group.GetChronicle(cb).value()).value();
  CaExprPtr plan = Plans(scan_a, scan_b, &rel)[GetParam()];

  DeltaEngine delta_engine;
  NaiveEngine oracle(&group);
  Rng rng(GetParam() * 7919 + 13);

  std::set<RowKey> materialized = ToSet(oracle.Evaluate(*plan).value());

  for (int tick = 0; tick < 120; ++tick) {
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
    auto random_call = [&]() {
      return Tuple{Value(static_cast<int64_t>(rng.Uniform(8))),
                   Value(kRegions[rng.Uniform(4)]),
                   Value(static_cast<int64_t>(rng.Uniform(150)))};
    };
    inserts.emplace_back(ca, std::vector<Tuple>{random_call(), random_call()});
    if (rng.Bernoulli(0.5)) {
      inserts.emplace_back(cb, std::vector<Tuple>{random_call()});
    }
    AppendEvent event =
        group.AppendMulti(std::move(inserts), static_cast<Chronon>(tick))
            .value();

    std::vector<ChronicleRow> delta =
        delta_engine.ComputeDelta(*plan, event).value();

    // (1) Every delta row carries exactly the tick's fresh SN.
    for (const ChronicleRow& row : delta) {
      ASSERT_EQ(row.sn, event.sn);
    }

    // (2) Monotonic growth: after = before ∪ Δ, Δ disjoint from before.
    std::set<RowKey> delta_set = ToSet(delta);
    for (const RowKey& key : delta_set) {
      ASSERT_EQ(materialized.count(key), 0u)
          << "delta re-derived an existing row at tick " << tick;
    }
    std::set<RowKey> after = ToSet(oracle.Evaluate(*plan).value());
    std::set<RowKey> expected = materialized;
    expected.insert(delta_set.begin(), delta_set.end());
    ASSERT_EQ(after, expected) << "tick " << tick;
    materialized = std::move(after);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPlans, MonotonicityTest,
                         ::testing::Range<size_t>(0, 9), PlanName);

TEST(ChronicleIndependenceTest, DeltaIdenticalWithoutStoredChronicle) {
  // Two groups fed the same stream — one retains everything, one nothing.
  // The delta engine must produce identical results on both, because it
  // never reads the chronicle.
  ChronicleGroup stored, stream;
  ChronicleId cs =
      stored.CreateChronicle("calls", CallSchema(), RetentionPolicy::All())
          .value();
  ChronicleId cn =
      stream.CreateChronicle("calls", CallSchema(), RetentionPolicy::None())
          .value();

  CaExprPtr plan_s =
      CaExpr::Select(CaExpr::Scan(*stored.GetChronicle(cs).value()).value(),
                     Gt(Col("minutes"), Lit(Value(10))))
          .value();
  CaExprPtr plan_n =
      CaExpr::Select(CaExpr::Scan(*stream.GetChronicle(cn).value()).value(),
                     Gt(Col("minutes"), Lit(Value(10))))
          .value();

  DeltaEngine engine;
  Rng rng(55);
  for (int tick = 0; tick < 100; ++tick) {
    Tuple call{Value(static_cast<int64_t>(rng.Uniform(5))),
               Value(kRegions[rng.Uniform(4)]),
               Value(static_cast<int64_t>(rng.Uniform(30)))};
    AppendEvent es = stored.Append(cs, {call}).value();
    AppendEvent en = stream.Append(cn, {call}).value();
    auto ds = engine.ComputeDelta(*plan_s, es).value();
    auto dn = engine.ComputeDelta(*plan_n, en).value();
    ASSERT_EQ(ds.size(), dn.size());
    for (size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(ds[i].values, dn[i].values);
    }
  }
  // The streaming group really stored nothing.
  EXPECT_EQ(stream.GetChronicle(cn).value()->retained().size(), 0u);
}

TEST(ChronicleIndependenceTest, WorkingSetIndependentOfHistoryLength) {
  // Theorem 4.2 space claim: the engine's intermediate sizes depend on the
  // batch and |R|, not on how many ticks happened before.
  ChronicleGroup group;
  ChronicleId calls = group.CreateChronicle("calls", CallSchema(),
                                            RetentionPolicy::None())
                          .value();
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  for (int64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple{Value(i), Value("NJ")}).ok());
  }
  CaExprPtr plan =
      CaExpr::RelKeyJoin(CaExpr::Scan(*group.GetChronicle(calls).value()).value(),
                         &rel, "caller")
          .value();

  DeltaEngine engine;
  size_t early_peak = 0, late_peak = 0;
  for (int tick = 0; tick < 2000; ++tick) {
    AppendEvent event =
        group.Append(calls, {Tuple{Value(tick % 16), Value("NJ"), Value(1)}})
            .value();
    DeltaStats stats;
    ASSERT_TRUE(engine.ComputeDelta(*plan, event, &stats).ok());
    if (tick < 100) {
      early_peak = std::max(early_peak, stats.max_intermediate_rows);
    }
    if (tick >= 1900) {
      late_peak = std::max(late_peak, stats.max_intermediate_rows);
    }
  }
  EXPECT_EQ(early_peak, late_peak);  // no dependence on history length
  EXPECT_LE(late_peak, 1u);          // one row in, at most one row out
}

TEST(ChronicleIndependenceTest, KeyJoinLookupCountMatchesBatchNotRelation) {
  // CA_join: one index lookup per delta tuple, regardless of |R|.
  ChronicleGroup group;
  ChronicleId calls = group.CreateChronicle("calls", CallSchema()).value();
  for (size_t rel_size : {10u, 10000u}) {
    Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
    for (size_t i = 0; i < rel_size; ++i) {
      ASSERT_TRUE(
          rel.Insert(Tuple{Value(static_cast<int64_t>(i)), Value("NJ")}).ok());
    }
    CaExprPtr plan =
        CaExpr::RelKeyJoin(
            CaExpr::Scan(*group.GetChronicle(calls).value()).value(), &rel,
            "caller")
            .value();
    AppendEvent event =
        group
            .Append(calls, {Tuple{Value(1), Value("NJ"), Value(1)},
                            Tuple{Value(2), Value("NJ"), Value(2)},
                            Tuple{Value(3), Value("NJ"), Value(3)}})
            .value();
    DeltaEngine engine;
    DeltaStats stats;
    ASSERT_TRUE(engine.ComputeDelta(*plan, event, &stats).ok());
    EXPECT_EQ(stats.relation_lookups, 3u) << "|R|=" << rel_size;
    EXPECT_EQ(stats.relation_rows_scanned, 0u);
  }
}

}  // namespace
}  // namespace chronicle
