// Tests for the observability subsystem (src/obs) and the DatabaseOptions
// facade: registry sharding and merge-on-read, trace-ring wraparound, the
// thread-count invariance of maintenance metrics (1/2/8 workers must agree
// with the serial run), batch-report alignment (every fan-out task reports
// a batch entry, even an empty one), and the exporter round-trip — the
// per-view counters in the snapshot must be reconstructable from the
// per-tick MaintenanceReports.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

// --- MetricsRegistry ---

TEST(MetricsRegistryTest, CountersMergeAcrossShards) {
  obs::MetricsRegistry registry;
  obs::MetricId ticks = registry.AddCounter("ticks", "test counter");
  obs::MetricId rows = registry.AddCounter("rows", "another counter");
  // Spread increments over more worker indexes than there are shards; the
  // wrap (& kShards-1) must lose nothing.
  for (size_t worker = 0; worker < 3 * obs::MetricsRegistry::kShards;
       ++worker) {
    registry.Count(ticks, 2, worker);
  }
  registry.Count(rows, 7);
  EXPECT_EQ(registry.CounterValue(ticks),
            2 * 3 * obs::MetricsRegistry::kShards);
  EXPECT_EQ(registry.CounterValue(rows), 7u);

  std::vector<obs::MetricSample> samples;
  registry.Snapshot(&samples);
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "ticks");
  EXPECT_FALSE(samples[0].is_histogram);
  EXPECT_EQ(samples[0].value, registry.CounterValue(ticks));
}

TEST(MetricsRegistryTest, HistogramsMergeAcrossShards) {
  obs::MetricsRegistry registry;
  obs::MetricId lat = registry.AddHistogram("lat_ns", "test histogram");
  registry.Observe(lat, 100, /*worker=*/0);
  registry.Observe(lat, 200, /*worker=*/1);
  registry.Observe(lat, 300, /*worker=*/5);
  LatencyHistogram merged = registry.MergedHistogram(lat);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_DOUBLE_EQ(merged.SumNanos(), 600.0);
  EXPECT_EQ(merged.MinNanos(), 100);
  EXPECT_EQ(merged.MaxNanos(), 300);
}

TEST(MetricsRegistryTest, ConcurrentCountsAreLossless) {
  obs::MetricsRegistry registry;
  obs::MetricId id = registry.AddCounter("c", "concurrent counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, id, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        registry.Count(id, 1, static_cast<size_t>(t));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue(id), kThreads * kPerThread);
}

// --- TraceRing ---

TEST(TraceRingTest, WrapsAroundKeepingNewestSpans) {
  obs::TraceRing ring(4);  // already a power of two
  ASSERT_TRUE(ring.enabled());
  ASSERT_EQ(ring.capacity(), 4u);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Emit(obs::SpanKind::kAppendTick, /*worker=*/0, /*sn=*/i,
              /*start_ns=*/static_cast<int64_t>(i * 10),
              /*duration_ns=*/5, /*detail0=*/i);
  }
  EXPECT_EQ(ring.total_emitted(), 10u);
  std::vector<obs::TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first window over the last 4 emissions (seq 6..9).
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].seq, 6 + i);
    EXPECT_EQ(spans[i].sn, 6 + i);
    EXPECT_EQ(spans[i].detail0, 6 + i);
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  obs::TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRingTest, ZeroCapacityDisables) {
  obs::TraceRing ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.Emit(obs::SpanKind::kMerge, 0, 1, 0, 0);  // must be a no-op
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.total_emitted(), 0u);
}

TEST(TraceRingTest, SnapshotRacesEmissionWithoutTearing) {
  // The monitoring endpoint snapshots the ring while appends keep emitting;
  // the per-slot seqlock must hand the reader only coherent spans. Writers
  // stamp every payload field of span i with i, so any cross-slot or
  // mid-overwrite mix is detectable. Run under TSan via the obs_test CI
  // regex, this is also the data-race proof for the seqlock itself.
  obs::TraceRing ring(16);  // small ring = constant overwriting
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const obs::TraceSpan& span : ring.Snapshot()) {
        const uint64_t i = span.sn;
        if (span.detail0 != i || span.detail1 != i ||
            span.start_ns != static_cast<int64_t>(i) ||
            span.duration_ns != static_cast<int64_t>(i)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        ring.Emit(obs::SpanKind::kAppendTick, static_cast<uint16_t>(w),
                  /*sn=*/i, /*start_ns=*/static_cast<int64_t>(i),
                  /*duration_ns=*/static_cast<int64_t>(i),
                  /*detail0=*/i, /*detail1=*/i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(ring.total_emitted(), kWriters * kPerWriter);
  // Quiescent snapshot: full window, globally ordered oldest-first.
  std::vector<obs::TraceSpan> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), ring.capacity());
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].seq, spans[i].seq);
  }
}

// --- DatabaseOptions facade ---

TEST(DatabaseOptionsTest, BuilderChainsAndAggregateAccessAgree) {
  DatabaseOptions options = DatabaseOptions()
                                .set_routing(RoutingMode::kGuards)
                                .set_num_threads(4)
                                .set_use_compiled_plans(false)
                                .set_trace_capacity(32)
                                .set_profile_view_latency(true);
  EXPECT_EQ(options.routing, RoutingMode::kGuards);
  EXPECT_EQ(options.maintenance.num_threads, 4u);
  EXPECT_FALSE(options.maintenance.use_compiled_plans);
  EXPECT_EQ(options.observability.trace_capacity, 32u);
  EXPECT_TRUE(options.observability.profile_view_latency);

  ChronicleDatabase db(options);
  EXPECT_EQ(db.options().maintenance.num_threads, 4u);
  EXPECT_EQ(db.maintenance_options().num_threads, 4u);
  ASSERT_NE(db.trace(), nullptr);
  EXPECT_EQ(db.trace()->capacity(), 32u);
}

TEST(DatabaseOptionsTest, ObservabilityCanBeFullyDisabled) {
  ChronicleDatabase db(
      DatabaseOptions().set_metrics(false).set_trace_capacity(0));
  EXPECT_EQ(db.metrics(), nullptr);
  EXPECT_EQ(db.trace(), nullptr);
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  AppendResult result = db.Append("calls", {Call(1, "NJ", 5)}).value();
  // Without observability the report carries only the seed's aggregate
  // counters; the per-view/per-batch vectors stay empty (zero cost).
  EXPECT_TRUE(result.maintenance.views.empty());
  EXPECT_TRUE(result.maintenance.batches.empty());
  obs::StatsSnapshot snap = db.CollectStats();
  EXPECT_TRUE(snap.metrics.empty());
  EXPECT_EQ(snap.trace_capacity, 0u);
}

TEST(DatabaseOptionsTest, LegacyRoutingCtorAndRuntimeReconfigure) {
  ChronicleDatabase db(RoutingMode::kCheckAll);
  EXPECT_EQ(db.options().routing, RoutingMode::kCheckAll);
  MaintenanceOptions m;
  m.num_threads = 2;
  // The runtime reconfiguration entry points must keep options() in sync —
  // the contract the removed set_* forwarders used to delegate to.
  db.ReconfigureMaintenance(m);
  EXPECT_EQ(db.options().maintenance.num_threads, 2u);
  EXPECT_EQ(db.maintenance_options().num_threads, 2u);
  db.DetachMutationLog();
  EXPECT_EQ(db.options().durability.mutation_log, nullptr);
}

TEST(DatabaseOptionsTest, OpenReturnsConfiguredDatabase) {
  std::unique_ptr<ChronicleDatabase> db =
      ChronicleDatabase::Open(DatabaseOptions().set_num_threads(2));
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->maintenance_options().num_threads, 2u);
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  EXPECT_TRUE(db->Append("calls", {Call(1, "NJ", 5)}).ok());
}

// --- maintenance metrics ---

// Builds a database with `num_views` single-select views over one
// chronicle and appends `ticks` batches; returns the final snapshot.
obs::StatsSnapshot RunMaintenance(size_t num_threads, size_t num_views,
                                  uint64_t ticks,
                                  std::vector<MaintenanceReport>* reports) {
  DatabaseOptions options;
  options.set_num_threads(num_threads);
  options.maintenance.min_views_per_task = 1;  // force the fan-out
  ChronicleDatabase db(options);
  EXPECT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  for (size_t v = 0; v < num_views; ++v) {
    CaExprPtr plan =
        CaExpr::Select(scan, Gt(Col("minutes"), Lit(Value(static_cast<int64_t>(
                                 v % 3)))))
            .value();
    SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                            {AggSpec::Sum("minutes", "m")})
                           .value();
    EXPECT_TRUE(db.CreateView("v" + std::to_string(v), plan, spec).ok());
  }
  for (uint64_t i = 0; i < ticks; ++i) {
    AppendResult result =
        db.Append("calls", {Call(static_cast<int64_t>(i % 7), "NJ", 10)})
            .value();
    if (reports != nullptr) reports->push_back(std::move(result.maintenance));
  }
  return db.CollectStats();
}

uint64_t CounterByName(const obs::StatsSnapshot& snap,
                       const std::string& name) {
  for (const obs::MetricSample& m : snap.metrics) {
    if (m.name == name) return m.value;
  }
  ADD_FAILURE() << "no metric named " << name;
  return 0;
}

TEST(MaintenanceMetricsTest, CountersInvariantAcrossThreadCounts) {
  constexpr size_t kViews = 12;
  constexpr uint64_t kTicks = 40;
  obs::StatsSnapshot serial = RunMaintenance(1, kViews, kTicks, nullptr);
  obs::StatsSnapshot two = RunMaintenance(2, kViews, kTicks, nullptr);
  obs::StatsSnapshot eight = RunMaintenance(8, kViews, kTicks, nullptr);

  for (const obs::StatsSnapshot* snap : {&serial, &two, &eight}) {
    EXPECT_EQ(snap->appends_processed, kTicks);
    EXPECT_EQ(snap->live_views, kViews);
    EXPECT_EQ(CounterByName(*snap, "maintenance_view_ticks_total"),
              kViews * kTicks);
    ASSERT_EQ(snap->views.size(), kViews);
  }
  // Per-view stats must agree exactly: same deltas regardless of the
  // worker count (determinism), and the counters must not lose increments
  // to sharding or concurrency.
  for (size_t v = 0; v < kViews; ++v) {
    EXPECT_EQ(serial.views[v].name, two.views[v].name);
    EXPECT_EQ(serial.views[v].stats.ticks, kTicks);
    EXPECT_EQ(two.views[v].stats.ticks, kTicks);
    EXPECT_EQ(eight.views[v].stats.ticks, kTicks);
    EXPECT_EQ(serial.views[v].stats.delta_rows, two.views[v].stats.delta_rows);
    EXPECT_EQ(serial.views[v].stats.delta_rows,
              eight.views[v].stats.delta_rows);
    EXPECT_EQ(serial.views[v].stats.updates, eight.views[v].stats.updates);
  }
  EXPECT_EQ(CounterByName(serial, "maintenance_delta_rows_total"),
            CounterByName(eight, "maintenance_delta_rows_total"));
  EXPECT_EQ(CounterByName(serial, "maintenance_parallel_ticks_total"), 0u);
  EXPECT_GT(CounterByName(eight, "maintenance_parallel_ticks_total"), 0u);
}

TEST(MaintenanceMetricsTest, BatchesAlignWithWorkersEvenWhenEmpty) {
  std::vector<MaintenanceReport> reports;
  RunMaintenance(/*num_threads=*/4, /*num_views=*/6, /*ticks=*/5, &reports);
  ASSERT_FALSE(reports.empty());
  for (const MaintenanceReport& report : reports) {
    ASSERT_FALSE(report.batches.empty());
    size_t batch_views = 0;
    for (size_t i = 0; i < report.batches.size(); ++i) {
      // Entry i must describe fan-out task i — including zero-view tasks,
      // which older reports silently dropped, shifting every later
      // worker's timing onto the wrong slot.
      EXPECT_EQ(report.batches[i].worker, i);
      EXPECT_GE(report.batches[i].nanos, 0);
      batch_views += report.batches[i].views;
    }
    EXPECT_EQ(batch_views, report.views_considered);
    EXPECT_EQ(report.views.size(), report.views_considered);
  }
}

TEST(MaintenanceMetricsTest, TraceRecordsTickRoutingAndMerge) {
  DatabaseOptions options;
  options.set_num_threads(2).set_trace_capacity(128);
  options.maintenance.min_views_per_task = 1;
  ChronicleDatabase db(options);
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  for (int v = 0; v < 4; ++v) {
    SummarySpec spec = SummarySpec::GroupBy(scan->schema(), {"caller"},
                                            {AggSpec::Count("n")})
                           .value();
    ASSERT_TRUE(db.CreateView("v" + std::to_string(v), scan, spec).ok());
  }
  ASSERT_TRUE(db.Append("calls", {Call(1, "NJ", 5)}).ok());

  ASSERT_NE(db.trace(), nullptr);
  std::vector<obs::TraceSpan> spans = db.trace()->Snapshot();
  std::set<obs::SpanKind> kinds;
  size_t worker_batches = 0;
  for (const obs::TraceSpan& span : spans) {
    kinds.insert(span.kind);
    if (span.kind == obs::SpanKind::kWorkerBatch) ++worker_batches;
    EXPECT_EQ(span.sn, 1u);
    EXPECT_GE(span.duration_ns, 0);
  }
  EXPECT_TRUE(kinds.count(obs::SpanKind::kAppendTick));
  EXPECT_TRUE(kinds.count(obs::SpanKind::kRouting));
  EXPECT_TRUE(kinds.count(obs::SpanKind::kMerge));
  EXPECT_EQ(worker_batches, 2u);  // one span per fan-out task
}

TEST(MaintenanceMetricsTest, ProfilingOptionPopulatesLatencyHistograms) {
  DatabaseOptions options;
  options.set_profile_view_latency(true);
  ChronicleDatabase db(options);
  ASSERT_TRUE(db.CreateChronicle("calls", CallSchema()).ok());
  CaExprPtr scan = db.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(scan->schema(), {"caller"},
                                          {AggSpec::Count("n")})
                         .value();
  ASSERT_TRUE(db.CreateView("v", scan, spec).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.Append("calls", {Call(i, "NJ", 5)}).ok());
  }
  obs::StatsSnapshot snap = db.CollectStats();
  ASSERT_EQ(snap.views.size(), 1u);
  EXPECT_TRUE(snap.views[0].profiled);
  EXPECT_EQ(snap.views[0].latency.count(), 3u);
}

// --- exporter round-trip ---

// The acceptance criterion for the exporters: in a deterministic
// single-threaded run, the per-view counters in the final snapshot must be
// exactly reconstructable from the per-tick MaintenanceReports.
TEST(ExporterRoundTripTest, SnapshotMatchesAccumulatedReports) {
  constexpr size_t kViews = 5;
  constexpr uint64_t kTicks = 30;
  std::vector<MaintenanceReport> reports;
  obs::StatsSnapshot snap = RunMaintenance(1, kViews, kTicks, &reports);

  // Reconstruct per-view ticks / delta_rows / compiled_ticks from the
  // reports. ViewIds are registration-ordered, matching snap.views.
  std::map<ViewId, obs::ViewStats> rebuilt;
  for (const MaintenanceReport& report : reports) {
    for (const MaintenanceViewOutcome& outcome : report.views) {
      obs::ViewStats& s = rebuilt[outcome.view];
      s.ticks += 1;
      s.delta_rows += outcome.delta_rows;
      if (outcome.delta_rows > 0) s.updates += 1;
      if (outcome.compiled) s.compiled_ticks += 1;
    }
  }
  ASSERT_EQ(rebuilt.size(), kViews);
  ASSERT_EQ(snap.views.size(), kViews);
  size_t i = 0;
  uint64_t total_rows = 0;
  for (const auto& [view_id, stats] : rebuilt) {
    SCOPED_TRACE(snap.views[i].name);
    EXPECT_EQ(stats.ticks, snap.views[i].stats.ticks);
    EXPECT_EQ(stats.updates, snap.views[i].stats.updates);
    EXPECT_EQ(stats.delta_rows, snap.views[i].stats.delta_rows);
    EXPECT_EQ(stats.compiled_ticks, snap.views[i].stats.compiled_ticks);
    total_rows += stats.delta_rows;
    ++i;
  }
  // The registry's aggregate counters agree with the same reconstruction.
  EXPECT_EQ(CounterByName(snap, "maintenance_view_ticks_total"),
            kViews * kTicks);
  EXPECT_EQ(CounterByName(snap, "maintenance_delta_rows_total"), total_rows);
}

TEST(ExporterRoundTripTest, RenderersProduceParsableOutput) {
  obs::StatsSnapshot snap = RunMaintenance(2, 3, 10, nullptr);
  snap.wal.attached = true;  // exercise the WAL section too
  snap.wal.records_logged = 10;
  snap.wal.fsync_latency.Record(1500);

  const std::string json = obs::RenderJson(snap);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;

  const std::string prom = obs::RenderPrometheus(snap);
  EXPECT_NE(prom.find("# TYPE chronicle_view_ticks_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("chronicle_view_ticks_total{view=\"v0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("chronicle_appends_processed_total 10"),
            std::string::npos);
  // Histogram series must end with the +Inf bucket equal to _count.
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string text = obs::RenderText(snap);
  EXPECT_NE(text.find("v0"), std::string::npos);
  EXPECT_NE(text.find("wal"), std::string::npos);
}

TEST(ExporterRoundTripTest, ValidateJsonRejectsMalformedInput) {
  EXPECT_TRUE(obs::ValidateJson("{\"a\": [1, 2.5e3, \"x\\n\", null]}").ok());
  EXPECT_TRUE(obs::ValidateJson("-0.5").ok());
  EXPECT_FALSE(obs::ValidateJson("").ok());
  EXPECT_FALSE(obs::ValidateJson("{").ok());
  EXPECT_FALSE(obs::ValidateJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(obs::ValidateJson("[1 2]").ok());
  EXPECT_FALSE(obs::ValidateJson("01").ok());
  EXPECT_FALSE(obs::ValidateJson("\"unterminated").ok());
  EXPECT_FALSE(obs::ValidateJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(obs::ValidateJson("nul").ok());
}

}  // namespace
}  // namespace chronicle
