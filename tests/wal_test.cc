// Unit tests for the WAL building blocks: CRC32C, record serde, segment
// framing, rotation, group commit, the checkpoint + truncation protocol,
// and the fault-injection file wrapper.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "common/crc32.h"
#include "wal/recovery.h"
#include "wal/wal.h"
#include "wal/wal_file.h"
#include "wal/wal_record.h"
#include "workload/call_records.h"

namespace chronicle {
namespace wal {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / ("chronicle_wal_test_" + name +
                                           "_" +
                                           std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C test vector (iSCSI / RFC 3720 appendix).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Incremental form matches one-shot.
  const std::string data = "the quick brown fox";
  uint32_t inc = Crc32cExtend(0, data.data(), 9);
  inc = Crc32cExtend(inc, data.data() + 9, data.size() - 9);
  EXPECT_EQ(inc, Crc32c(data));
}

TEST(WalRecordTest, AppendRoundTrip) {
  WalRecord r = WalRecord::MakeAppend(
      7, 42,
      {{"calls", {Tuple{Value(1), Value("a")}, Tuple{Value(2), Value()}}},
       {"trades", {Tuple{Value(3.5)}}}});
  r.lsn = 99;
  Result<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(*decoded == r);
}

TEST(WalRecordTest, RelationOpsRoundTrip) {
  WalRecord ins = WalRecord::MakeRelationInsert(
      "plans", Tuple{Value(1), Value("basic"), Value(0.1)});
  ins.lsn = 1;
  WalRecord upd = WalRecord::MakeRelationUpdate(
      "plans", Value(1), Tuple{Value(1), Value("gold"), Value(0.2)});
  upd.lsn = 2;
  WalRecord del = WalRecord::MakeRelationDelete("plans", Value("k"));
  del.lsn = 3;
  for (const WalRecord& r : {ins, upd, del}) {
    Result<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == r);
  }
}

TEST(WalRecordTest, TrailingBytesRejected) {
  WalRecord r = WalRecord::MakeRelationDelete("t", Value(1));
  std::string payload = EncodeWalRecord(r);
  payload += "x";
  EXPECT_FALSE(DecodeWalRecord(payload).ok());
}

TEST(WalTest, LogAndReplay) {
  ScratchDir dir("log_replay");
  {
    WalOptions options;
    options.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 1; i <= 5; ++i) {
      Result<uint64_t> lsn = (*wal)->Log(
          WalRecord::MakeRelationInsert("r", Tuple{Value(i)}));
      ASSERT_TRUE(lsn.ok());
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i));
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  std::vector<WalRecord> seen;
  WalReplayStats stats;
  Status st = ReplayWal(
      dir.path, 0,
      [&](const WalRecord& r) {
        seen.push_back(r);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(stats.records_applied, 5u);
  EXPECT_FALSE(stats.tail_truncated);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[2].row[0], Value(3));
}

TEST(WalTest, WatermarkSkipsReplayedPrefix) {
  ScratchDir dir("watermark");
  {
    auto wal = Wal::Open(dir.path);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  WalReplayStats stats;
  uint64_t first_applied = 0;
  ASSERT_TRUE(ReplayWal(dir.path, 4,
                        [&](const WalRecord& r) {
                          if (first_applied == 0) first_applied = r.lsn;
                          return Status::OK();
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(stats.records_applied, 2u);
  EXPECT_EQ(stats.records_skipped, 4u);
  EXPECT_EQ(first_applied, 5u);
}

TEST(WalTest, RotationCreatesSegmentsAndReopenResumesLsns) {
  ScratchDir dir("rotation");
  WalOptions options;
  options.segment_bytes = 128;  // force rotation every few records
  options.fsync = FsyncPolicy::kNever;
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    EXPECT_GT((*wal)->stats().segments_created, 2u);
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // Re-open: the LSN sequence continues past everything on disk.
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->next_lsn(), 21u);
    Result<uint64_t> lsn =
        (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(21)}));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(*lsn, 21u);
    ASSERT_TRUE((*wal)->Close().ok());
  }
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(dir.path, 0,
                        [](const WalRecord&) { return Status::OK(); }, &stats)
                  .ok());
  EXPECT_EQ(stats.records_applied, 21u);
}

TEST(WalTest, FsyncPolicyControlsSyncCount) {
  ScratchDir dir("fsync");
  auto count_syncs = [&](FsyncPolicy policy, uint64_t group_bytes) {
    fs::remove_all(dir.path);
    WalOptions options;
    options.fsync = policy;
    options.group_commit_bytes = group_bytes;
    auto wal = Wal::Open(dir.path, options);
    EXPECT_TRUE(wal.ok());
    for (int i = 0; i < 32; ++i) {
      EXPECT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    const uint64_t syncs = (*wal)->stats().syncs;
    EXPECT_TRUE((*wal)->Close().ok());
    return syncs;
  };
  EXPECT_EQ(count_syncs(FsyncPolicy::kEveryRecord, 1 << 16), 32u);
  EXPECT_LT(count_syncs(FsyncPolicy::kBatch, 1 << 16), 4u);
  EXPECT_EQ(count_syncs(FsyncPolicy::kNever, 1 << 16), 0u);
}

void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema())
                  .ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  ASSERT_TRUE(db->CreateView("minutes", scan,
                             SummarySpec::GroupBy(scan->schema(), {"caller"},
                                                  {AggSpec::Sum("minutes", "m")})
                                 .value())
                  .ok());
}

TEST(WalTest, CheckpointTruncatesObsoleteSegments) {
  ScratchDir dir("truncate");
  WalOptions options;
  options.segment_bytes = 256;
  options.checkpoints_to_keep = 1;
  auto wal = Wal::Open(dir.path, options);
  ASSERT_TRUE(wal.ok());

  ChronicleDatabase db;
  ApplyDdl(&db);
  WalMutationLog log(wal->get(), &db);
  db.AttachMutationLog(&log);

  CallRecordGenerator gen;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Append("calls", gen.NextBatch(2)).ok());
  }
  const uint64_t segments_before =
      ListWalSegments(dir.path).value().size();
  ASSERT_GT(segments_before, 2u);
  ASSERT_TRUE((*wal)->WriteCheckpoint(db).ok());
  // All segments strictly below the watermark are gone; the active one and
  // a checkpoint file remain.
  EXPECT_LE(ListWalSegments(dir.path).value().size(), 2u);
  EXPECT_EQ(ListCheckpoints(dir.path).value().size(), 1u);
  EXPECT_GT((*wal)->stats().segments_removed, 0u);
  ASSERT_TRUE((*wal)->Close().ok());

  // Recovery from checkpoint + (empty) tail reproduces the view.
  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_restored);
  EXPECT_EQ(recovered.ScanView("minutes").value(),
            db.ScanView("minutes").value());
}

TEST(FaultInjectingFileTest, TornWriteKeepsPrefixOnly) {
  ScratchDir dir("torn");
  const std::string path = dir.path + "/f";
  auto base = OpenWritableFile(path);
  ASSERT_TRUE(base.ok());
  FaultPlan plan;
  plan.kind = FaultKind::kTornWrite;
  plan.trigger_offset = 10;
  FaultInjectingFile f(std::move(base).value(), plan);
  ASSERT_TRUE(f.Append("0123456789").ok());   // exactly at the edge
  ASSERT_TRUE(f.Append("abcdef").ok());       // silently dropped
  ASSERT_TRUE(f.Sync().ok());                 // the crash "lies"
  ASSERT_TRUE(f.Close().ok());
  EXPECT_TRUE(f.fault_triggered());
  EXPECT_EQ(ReadFileToString(path).value(), "0123456789");
}

TEST(FaultInjectingFileTest, TornWriteMidAppendKeepsPartialBytes) {
  ScratchDir dir("torn_mid");
  const std::string path = dir.path + "/f";
  auto base = OpenWritableFile(path);
  ASSERT_TRUE(base.ok());
  FaultPlan plan;
  plan.kind = FaultKind::kTornWrite;
  plan.trigger_offset = 4;
  FaultInjectingFile f(std::move(base).value(), plan);
  ASSERT_TRUE(f.Append("0123456789").ok());
  ASSERT_TRUE(f.Close().ok());
  EXPECT_EQ(ReadFileToString(path).value(), "0123");
}

TEST(FaultInjectingFileTest, BitFlipCorruptsOneBit) {
  ScratchDir dir("flip");
  const std::string path = dir.path + "/f";
  auto base = OpenWritableFile(path);
  ASSERT_TRUE(base.ok());
  FaultPlan plan;
  plan.kind = FaultKind::kBitFlip;
  plan.trigger_offset = 2;
  plan.bit = 0;
  FaultInjectingFile f(std::move(base).value(), plan);
  ASSERT_TRUE(f.Append("aaaa").ok());
  ASSERT_TRUE(f.Close().ok());
  EXPECT_EQ(ReadFileToString(path).value(), std::string("aa`a"));
}

TEST(FaultInjectingFileTest, FailSyncReportsDataLoss) {
  ScratchDir dir("failsync");
  auto base = OpenWritableFile(dir.path + "/f");
  ASSERT_TRUE(base.ok());
  FaultPlan plan;
  plan.kind = FaultKind::kFailSync;
  plan.trigger_offset = 0;
  FaultInjectingFile f(std::move(base).value(), plan);
  ASSERT_TRUE(f.Append("x").ok());
  EXPECT_TRUE(f.Sync().IsDataLoss());
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  ScratchDir dir("torn_tail");
  // Write 8 records; the 7th record's frame is torn mid-write.
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  uint64_t torn_at = 0;
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  // Tear the file by hand: chop the last 5 bytes, then append a fresh
  // segment's worth of garbage-free records on reopen — replay must apply
  // 1..5, stop at the torn 6th, and refuse nothing before it.
  {
    auto segments = ListWalSegments(dir.path).value();
    ASSERT_EQ(segments.size(), 1u);
    std::string data = ReadFileToString(segments[0].path).value();
    torn_at = data.size() - 5;
    ASSERT_TRUE(AtomicWriteFile(segments[0].path,
                                std::string_view(data).substr(0, torn_at))
                    .ok());
  }
  std::vector<uint64_t> applied;
  WalReplayStats stats;
  Status st = ReplayWal(
      dir.path, 0,
      [&](const WalRecord& r) {
        applied.push_back(r.lsn);
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.records_applied, 5u);
  ASSERT_FALSE(applied.empty());
  EXPECT_EQ(applied.back(), 5u);
}

TEST(WalTest, CorruptionBeforeNewerSegmentIsDataLoss) {
  ScratchDir dir("mid_corrupt");
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  options.segment_bytes = 128;  // several segments
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto segments = ListWalSegments(dir.path).value();
  ASSERT_GT(segments.size(), 2u);
  // Flip a byte in the middle of the FIRST segment: records were lost in
  // the interior of the log, which replay must refuse to paper over.
  std::string data = ReadFileToString(segments[0].path).value();
  data[data.size() / 2] ^= 0x40;
  ASSERT_TRUE(AtomicWriteFile(segments[0].path, data).ok());
  Status st = ReplayWal(dir.path, 0,
                        [](const WalRecord&) { return Status::OK(); }, nullptr);
  EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
}

TEST(WalTest, FaultInjectedTornWriteThroughTheWriter) {
  ScratchDir dir("injected");
  // Build the WAL through a fault-injecting factory: the 4th record's
  // bytes are torn. Recovery must surface exactly the first 3.
  uint64_t torn_offset = 0;
  {
    // First pass to learn the byte offset of record 4.
    WalOptions probe;
    probe.fsync = FsyncPolicy::kNever;
    auto wal = Wal::Open(dir.path, probe);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    torn_offset = (*wal)->stats().bytes_logged + 16 + 3;  // header + partial
    ASSERT_TRUE((*wal)->Close().ok());
    fs::remove_all(dir.path);
  }
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  options.file_factory = [&](const std::string& path)
      -> Result<std::unique_ptr<WritableFile>> {
    CHRONICLE_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                               OpenWritableFile(path));
    FaultPlan plan;
    plan.kind = FaultKind::kTornWrite;
    plan.trigger_offset = torn_offset;
    return std::unique_ptr<WritableFile>(
        std::make_unique<FaultInjectingFile>(std::move(base), plan));
  };
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(
          (*wal)->Log(WalRecord::MakeRelationInsert("r", Tuple{Value(i)})).ok());
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  WalReplayStats stats;
  Status st = ReplayWal(dir.path, 0,
                        [](const WalRecord&) { return Status::OK(); }, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_EQ(stats.records_applied, 3u);
}

}  // namespace
}  // namespace wal
}  // namespace chronicle
