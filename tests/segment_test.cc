// Segment file format: encoder/reader round-trips, SN delta encoding,
// atomic writes, cursor iteration, and header validation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "store/segment.h"

namespace chronicle {
namespace store {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_segment_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

ChronicleRow MakeRow(SeqNum sn, int64_t a, const std::string& b) {
  return ChronicleRow{sn, Tuple{Value(a), Value(b)}};
}

std::string WriteSegment(const std::string& dir,
                         const std::vector<ChronicleRow>& rows,
                         uint32_t chronicle_id = 7) {
  SegmentEncoder enc(chronicle_id);
  for (const ChronicleRow& row : rows) enc.Add(row);
  const std::string path =
      (fs::path(dir) / SegmentFileName(enc.first_sn())).string();
  EXPECT_TRUE(AtomicWriteSegment(path, enc.Finish()).ok());
  return path;
}

TEST(SegmentFileName, LexicographicOrderIsSnOrder) {
  EXPECT_EQ(SegmentFileName(1), "seg-00000000000000000001.seg");
  EXPECT_LT(SegmentFileName(9), SegmentFileName(10));
  EXPECT_LT(SegmentFileName(999), SegmentFileName(1000));
  EXPECT_LT(SegmentFileName(1), SegmentFileName(1ull << 40));
}

TEST(SegmentEncoder, TracksRowsAndSnRange) {
  SegmentEncoder enc(3);
  enc.Add(MakeRow(10, 1, "a"));
  enc.Add(MakeRow(10, 2, "b"));  // same SN twice (multi-row tick)
  enc.Add(MakeRow(12, 3, "c"));
  EXPECT_EQ(enc.rows(), 3u);
  EXPECT_EQ(enc.first_sn(), 10u);
  EXPECT_EQ(enc.last_sn(), 12u);
}

TEST(SegmentRoundTrip, RowsSurviveExactly) {
  ScratchDir dir("roundtrip");
  std::vector<ChronicleRow> rows;
  for (SeqNum sn = 5; sn < 105; ++sn) {
    rows.push_back(MakeRow(sn, static_cast<int64_t>(sn) * 3, "row-" + std::to_string(sn)));
  }
  const std::string path = WriteSegment(dir.path, rows);

  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->header().chronicle_id, 7u);
  EXPECT_EQ((*reader)->header().row_count, 100u);
  EXPECT_EQ((*reader)->header().base_sn, 5u);
  EXPECT_EQ((*reader)->header().last_sn, 104u);

  std::vector<ChronicleRow> decoded;
  ASSERT_TRUE(
      (*reader)->Scan([&](const ChronicleRow& r) { decoded.push_back(r); })
          .ok());
  ASSERT_EQ(decoded.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(decoded[i].sn, rows[i].sn);
    EXPECT_EQ(decoded[i].values, rows[i].values);
  }
}

TEST(SegmentRoundTrip, RepeatedAndSparseSns) {
  ScratchDir dir("sparse");
  std::vector<ChronicleRow> rows = {
      MakeRow(100, 1, "x"), MakeRow(100, 2, "y"), MakeRow(100, 3, "z"),
      MakeRow(5000, 4, "far"), MakeRow(1ull << 33, 5, "huge-delta")};
  const std::string path = WriteSegment(dir.path, rows);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<SeqNum> sns;
  ASSERT_TRUE(
      (*reader)->Scan([&](const ChronicleRow& r) { sns.push_back(r.sn); })
          .ok());
  EXPECT_EQ(sns, (std::vector<SeqNum>{100, 100, 100, 5000, 1ull << 33}));
}

TEST(SegmentRoundTrip, DenseSnsCostOneByteEach) {
  // The point of delta encoding: a dense append stream pays ~1 byte of SN
  // overhead per row, not 8.
  SegmentEncoder enc(1);
  const size_t kRows = 1000;
  size_t tuple_bytes = 0;
  for (SeqNum sn = 1; sn <= kRows; ++sn) {
    ChronicleRow row = MakeRow(sn, 42, "");
    enc.Add(row);
    if (sn == 1) tuple_bytes = enc.payload_bytes() - 1;  // first delta is 1B
  }
  EXPECT_LE(enc.payload_bytes(), kRows * (tuple_bytes + 1));
}

TEST(SegmentCursor, PullIterationMatchesScan) {
  ScratchDir dir("cursor");
  std::vector<ChronicleRow> rows;
  for (SeqNum sn = 1; sn <= 17; ++sn) rows.push_back(MakeRow(sn, 0, "v"));
  const std::string path = WriteSegment(dir.path, rows);
  auto reader = SegmentReader::Open(path);
  ASSERT_TRUE(reader.ok());

  SegmentReader::Cursor cursor(reader->get());
  ChronicleRow row;
  size_t n = 0;
  while (true) {
    auto more = cursor.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_EQ(row.sn, rows[n].sn);
    ++n;
  }
  EXPECT_EQ(n, rows.size());
  // Next past the end stays at end.
  auto more = cursor.Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(SegmentAtomicWrite, LeavesNoTempFileBehind) {
  ScratchDir dir("atomic");
  WriteSegment(dir.path, {MakeRow(1, 1, "a")});
  size_t tmp = 0, seg = 0;
  for (const auto& entry : fs::directory_iterator(dir.path)) {
    if (entry.path().extension() == kSegmentTempSuffix) ++tmp;
    if (entry.path().extension() == kSegmentSuffix) ++seg;
  }
  EXPECT_EQ(tmp, 0u);
  EXPECT_EQ(seg, 1u);
}

TEST(SegmentOpen, MissingFileFailsClosed) {
  auto reader = SegmentReader::Open("/nonexistent/dir/seg.seg");
  EXPECT_FALSE(reader.ok());
}

TEST(SegmentOpen, EmptyFileFailsClosed) {
  ScratchDir dir("empty");
  const std::string path = (fs::path(dir.path) / "seg.seg").string();
  std::ofstream(path).close();
  auto reader = SegmentReader::Open(path);
  EXPECT_FALSE(reader.ok());
}

TEST(SegmentOpen, BadMagicFailsClosed) {
  ScratchDir dir("magic");
  const std::string path = WriteSegment(dir.path, {MakeRow(1, 1, "a")});
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    data.assign(std::istreambuf_iterator<char>(in), {});
  }
  data[0] = 'X';
  ASSERT_TRUE(AtomicWriteSegment(path, data).ok());
  auto reader = SegmentReader::Open(path);
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace store
}  // namespace chronicle
