#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace chronicle {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NextStringLengthAndAlphabet) {
  Rng rng(19);
  std::string s = rng.NextString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler zipf(10, 0.0, 3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  for (const auto& [value, count] : counts) {
    EXPECT_LT(value, 10u);
    EXPECT_NEAR(count / 20000.0, 0.1, 0.02);
  }
}

TEST(ZipfTest, SkewConcentratesOnHead) {
  ZipfSampler zipf(1000, 1.2, 5);
  int head = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // With s=1.2 the top-10 of 1000 should dominate: well over a third.
  EXPECT_GT(head, kSamples / 3);
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfSampler a(100, 0.9, 21), b(100, 0.9, 21);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace chronicle
