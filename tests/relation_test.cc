#include "storage/relation.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"name", DataType::kString},
                 {"state", DataType::kString}});
}

Tuple Cust(int64_t acct, const std::string& name, const std::string& state) {
  return Tuple{Value(acct), Value(name), Value(state)};
}

class RelationModeTest : public ::testing::TestWithParam<IndexMode> {};

TEST_P(RelationModeTest, InsertLookupDelete) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(2, "bob", "NY")).ok());
  EXPECT_EQ(rel.size(), 2u);

  const Tuple* row = rel.LookupByKey(Value(1)).value();
  EXPECT_EQ((*row)[1], Value("ann"));

  ASSERT_TRUE(rel.DeleteByKey(Value(1)).ok());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.LookupByKey(Value(1)).status().IsNotFound());
  // The surviving row is still reachable after the swap-remove.
  EXPECT_EQ((*rel.LookupByKey(Value(2)).value())[1], Value("bob"));
}

TEST_P(RelationModeTest, DuplicateKeyRejected) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  Status st = rel.Insert(Cust(1, "imposter", "CA"));
  EXPECT_TRUE(st.IsAlreadyExists());
  EXPECT_EQ(rel.size(), 1u);
}

TEST_P(RelationModeTest, UpdateReplacesRow) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  uint64_t v0 = rel.version();
  ASSERT_TRUE(rel.UpdateByKey(Value(1), Cust(1, "ann", "CA")).ok());
  EXPECT_GT(rel.version(), v0);
  EXPECT_EQ((*rel.LookupByKey(Value(1)).value())[2], Value("CA"));
}

TEST_P(RelationModeTest, UpdateCanChangeKey) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  ASSERT_TRUE(rel.UpdateByKey(Value(1), Cust(9, "ann", "NJ")).ok());
  EXPECT_TRUE(rel.LookupByKey(Value(1)).status().IsNotFound());
  EXPECT_TRUE(rel.LookupByKey(Value(9)).ok());
}

TEST_P(RelationModeTest, UpdateToCollidingKeyRejectedAtomically) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(2, "bob", "NY")).ok());
  Status st = rel.UpdateByKey(Value(1), Cust(2, "ann", "NJ"));
  EXPECT_TRUE(st.IsAlreadyExists());
  // Row 1 untouched.
  EXPECT_EQ((*rel.LookupByKey(Value(1)).value())[1], Value("ann"));
  EXPECT_EQ(rel.size(), 2u);
}

TEST_P(RelationModeTest, SwapRemoveKeepsIndexConsistent) {
  Relation rel =
      Relation::Make("cust", CustSchema(), "acct", GetParam()).value();
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(rel.Insert(Cust(i, "n" + std::to_string(i), "NJ")).ok());
  }
  // Delete in a scattered order, checking every survivor after each delete.
  for (int64_t victim : {0, 25, 49, 10, 1, 48}) {
    ASSERT_TRUE(rel.DeleteByKey(Value(victim)).ok());
  }
  EXPECT_EQ(rel.size(), 44u);
  for (int64_t i = 0; i < 50; ++i) {
    bool deleted = i == 0 || i == 25 || i == 49 || i == 10 || i == 1 || i == 48;
    if (deleted) {
      EXPECT_TRUE(rel.LookupByKey(Value(i)).status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(rel.LookupByKey(Value(i)).ok()) << i;
      EXPECT_EQ((*rel.LookupByKey(Value(i)).value())[0], Value(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, RelationModeTest,
                         ::testing::Values(IndexMode::kHash, IndexMode::kOrdered),
                         [](const ::testing::TestParamInfo<IndexMode>& info) {
                           return info.param == IndexMode::kHash ? "Hash"
                                                                 : "Ordered";
                         });

TEST(RelationTest, MakeRejectsUnknownKeyColumn) {
  EXPECT_FALSE(Relation::Make("r", CustSchema(), "missing").ok());
}

TEST(RelationTest, KeylessRelationForbidsKeyOps) {
  Relation rel = Relation::Make("heap", CustSchema()).value();
  EXPECT_FALSE(rel.has_key());
  ASSERT_TRUE(rel.Insert(Cust(1, "a", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(1, "a", "NJ")).ok());  // duplicates allowed
  EXPECT_TRUE(rel.LookupByKey(Value(1)).status().IsFailedPrecondition());
  EXPECT_TRUE(rel.DeleteByKey(Value(1)).IsFailedPrecondition());
}

TEST(RelationTest, NullKeyRejected) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  Status st = rel.Insert(Tuple{Value(), Value("x"), Value("NJ")});
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(rel.size(), 0u);
}

TEST(RelationTest, SchemaViolationRejected) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  EXPECT_FALSE(rel.Insert(Tuple{Value(1), Value(2), Value(3)}).ok());
  EXPECT_FALSE(rel.Insert(Tuple{Value(1)}).ok());
}

TEST(RelationTest, SecondaryIndexLookup) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(2, "bob", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(3, "cyd", "NY")).ok());
  ASSERT_TRUE(rel.CreateSecondaryIndex("state").ok());
  EXPECT_TRUE(rel.HasSecondaryIndex(2));

  Result<std::vector<const Tuple*>> rows = rel.LookupBySecondary(2, Value("NJ"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  rows = rel.LookupBySecondary(2, Value("TX"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(RelationTest, SecondaryIndexTracksMutations) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  ASSERT_TRUE(rel.CreateSecondaryIndex("state").ok());
  ASSERT_TRUE(rel.Insert(Cust(1, "ann", "NJ")).ok());
  ASSERT_TRUE(rel.Insert(Cust(2, "bob", "NJ")).ok());
  ASSERT_TRUE(rel.DeleteByKey(Value(1)).ok());

  Result<std::vector<const Tuple*>> rows = rel.LookupBySecondary(2, Value("NJ"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*(*rows)[0])[0], Value(2));

  // Update moves bob to NY.
  ASSERT_TRUE(rel.UpdateByKey(Value(2), Cust(2, "bob", "NY")).ok());
  rows = rel.LookupBySecondary(2, Value("NJ"));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  rows = rel.LookupBySecondary(2, Value("NY"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(RelationTest, LookupWithoutSecondaryIndexFails) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  EXPECT_TRUE(
      rel.LookupBySecondary(2, Value("NJ")).status().IsFailedPrecondition());
}

TEST(RelationTest, ScanAllVisitsEveryRow) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(rel.Insert(Cust(i, "n", "NJ")).ok());
  }
  int count = 0;
  rel.ScanAll([&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace chronicle
