// Tests for the CQL-over-the-wire front-end (src/net/wire_service.h).
//
// Every test drives a real WireService over a real loopback socket with
// net::HttpClient — the same client bench E16 and tools/net_client use —
// so the coverage includes the HTTP framing, the session protocol, the
// TSV decoder, and the backpressure contract, not just the handlers.
//
// The two acceptance properties from the experiment plan live here:
//   * Backpressure: a saturated session gets 429 + Retry-After while a
//     second session keeps making progress, and after the queue drains
//     the state matches a local oracle exactly (nothing dropped, nothing
//     duplicated).
//   * Equivalence: networked ingest lands byte-identically to local
//     AppendMany across the interpreted, compiled, and columnar delta
//     engines, and on a sharded session.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cql/session.h"
#include <gtest/gtest.h>
#include "net/http_client.h"
#include "net/wire_service.h"
#include "workload/call_records.h"

namespace chronicle {
namespace {

using cql::Session;
using net::HttpClient;
using net::HttpClientResponse;
using net::NetOptions;
using net::WireService;

constexpr char kDdl[] =
    "CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64, "
    "charge DOUBLE) RETAIN LAST 8;"
    "CREATE VIEW by_caller AS "
    "SELECT caller, SUM(minutes) AS m, COUNT(*) AS n "
    "FROM calls GROUP BY caller;";

// One TSV cell in the wire encoding /v1/append decodes. %.17g round-trips
// doubles exactly through strtod, so a networked row is bit-identical to
// the locally appended one.
std::string TsvCell(const Value& v) {
  if (v.is_null()) return "\\N";
  if (v.is_int64()) return std::to_string(v.int64());
  if (v.is_double()) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.17g", v.dbl());
    return buf;
  }
  return v.str();
}

// Encodes ticks as the /v1/append body: one row per line, blank line
// between ticks.
std::string EncodeTicks(const std::vector<std::vector<Tuple>>& ticks) {
  std::string body;
  for (size_t t = 0; t < ticks.size(); ++t) {
    if (t > 0) body += "\n";
    for (const Tuple& row : ticks[t]) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) body += "\t";
        body += TsvCell(row[c]);
      }
      body += "\n";
    }
  }
  return body;
}

// Rows of a SELECT result as sorted strings, so sharded (merge-order
// dependent) and unsharded results compare as multisets.
std::vector<std::string> SortedRows(const cql::ExecResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const Tuple& row : result.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<Session> OpenWithDdl(DatabaseOptions options) {
  auto session = Session::Open(std::move(options));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  auto ddl = (*session)->ExecuteScript(kDdl);
  EXPECT_TRUE(ddl.ok()) << ddl.status().ToString();
  return std::move(*session);
}

class NetServiceTest : public ::testing::Test {
 protected:
  void StartService(DatabaseOptions db_options, NetOptions net_options) {
    session_ = OpenWithDdl(std::move(db_options));
    ASSERT_NE(session_, nullptr);
    service_ = std::make_unique<WireService>(session_.get(), net_options);
    Status started = service_->Start(0);
    ASSERT_TRUE(started.ok()) << started.ToString();
    client_ = std::make_unique<HttpClient>(service_->port());
  }

  void TearDown() override {
    if (service_ != nullptr) service_->Stop();
  }

  // Opens a wire session and returns its id ("s1", ...).
  std::string OpenWireSession(HttpClient* client) {
    auto resp = client->Post("/v1/session", "");
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 200) << resp->body;
    const std::string marker = "\"session\":\"";
    const size_t at = resp->body.find(marker);
    EXPECT_NE(at, std::string::npos) << resp->body;
    const size_t start = at + marker.size();
    return resp->body.substr(start, resp->body.find('"', start) - start);
  }

  static std::vector<std::pair<std::string, std::string>> WithSession(
      const std::string& sid) {
    return {{"X-Chronicle-Session", sid}};
  }

  std::unique_ptr<Session> session_;
  std::unique_ptr<WireService> service_;
  std::unique_ptr<HttpClient> client_;
};

TEST_F(NetServiceTest, SqlAndAppendEndToEnd) {
  StartService(DatabaseOptions(), NetOptions());
  const std::string sid = OpenWireSession(client_.get());

  // DML + SELECT through /v1/sql: rows come back as JSON.
  auto sql = client_->Post(
      "/v1/sql",
      "INSERT INTO calls VALUES (1, 'NJ', 10, 2.0) AT 1;"
      "SELECT * FROM by_caller;",
      WithSession(sid));
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(sql->status, 200) << sql->body;
  EXPECT_NE(sql->body.find("\"rows\":[[1,10,1]]"), std::string::npos)
      << sql->body;
  EXPECT_NE(sql->body.find("\"name\":\"caller\""), std::string::npos)
      << sql->body;

  // Bulk ingest through /v1/append: two ticks, three rows.
  auto append = client_->Post("/v1/append?chronicle=calls",
                              "2\tNY\t5\t1.5\n2\tNY\t3\t0.5\n\n1\tNJ\t7\t1\n",
                              WithSession(sid));
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  EXPECT_EQ(append->status, 202) << append->body;
  EXPECT_NE(append->body.find("\"accepted_ticks\":2"), std::string::npos)
      << append->body;
  EXPECT_NE(append->body.find("\"accepted_rows\":3"), std::string::npos)
      << append->body;

  auto drain = client_->Post("/v1/drain", "", WithSession(sid));
  ASSERT_TRUE(drain.ok()) << drain.status().ToString();
  EXPECT_EQ(drain->status, 200) << drain->body;

  auto after = client_->Post("/v1/sql", "SELECT * FROM by_caller;",
                             WithSession(sid));
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->body.find("[1,17,2]"), std::string::npos) << after->body;
  EXPECT_NE(after->body.find("[2,8,2]"), std::string::npos) << after->body;
}

TEST_F(NetServiceTest, NullCellsDecodeAsNull) {
  StartService(DatabaseOptions(), NetOptions());
  const std::string sid = OpenWireSession(client_.get());

  // Empty cell and \N both decode to NULL (region is NULL here); the row
  // still lands and aggregates by caller.
  auto append = client_->Post("/v1/append?chronicle=calls",
                              "3\t\\N\t7\t0.5\n4\t\t2\t\\N\n",
                              WithSession(sid));
  ASSERT_TRUE(append.ok()) << append.status().ToString();
  EXPECT_EQ(append->status, 202) << append->body;
  ASSERT_EQ(client_->Post("/v1/drain", "", WithSession(sid))->status, 200);

  auto rows = client_->Post("/v1/sql", "SELECT * FROM by_caller;",
                            WithSession(sid));
  EXPECT_NE(rows->body.find("[3,7,1]"), std::string::npos) << rows->body;
  EXPECT_NE(rows->body.find("[4,2,1]"), std::string::npos) << rows->body;
}

TEST_F(NetServiceTest, AuthTokenGatesV1ButNotMonitoring) {
  NetOptions net;
  net.auth_token = "sekrit";
  StartService(DatabaseOptions(), net);

  // No token: 401 with the shared error shape.
  auto denied = client_->Post("/v1/session", "");
  ASSERT_TRUE(denied.ok()) << denied.status().ToString();
  EXPECT_EQ(denied->status, 401);
  EXPECT_NE(denied->body.find("\"code\":\"Unauthenticated\""),
            std::string::npos)
      << denied->body;

  // Wrong token: still 401.
  auto wrong = client_->Post("/v1/session", "",
                             {{"Authorization", "Bearer nope"}});
  EXPECT_EQ(wrong->status, 401);

  // Right token: 200.
  auto ok = client_->Post("/v1/session", "",
                          {{"Authorization", "Bearer sekrit"}});
  EXPECT_EQ(ok->status, 200) << ok->body;

  // The read-only monitoring catalog stays open (loopback bind).
  auto healthz = client_->Get("/healthz");
  EXPECT_EQ(healthz->status, 200);
  auto metrics = client_->Get("/metrics");
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("chronicle_net_rejected_auth_total"),
            std::string::npos);
}

TEST_F(NetServiceTest, SessionResolutionRejections) {
  StartService(DatabaseOptions(), NetOptions());

  // Missing session header.
  auto missing = client_->Post("/v1/sql", "SELECT * FROM by_caller;");
  EXPECT_EQ(missing->status, 401);
  EXPECT_NE(missing->body.find("X-Chronicle-Session"), std::string::npos)
      << missing->body;

  // Unknown session id.
  auto unknown = client_->Post("/v1/sql", "SELECT * FROM by_caller;",
                               WithSession("s999"));
  EXPECT_EQ(unknown->status, 401);
  EXPECT_NE(unknown->body.find("unknown session"), std::string::npos)
      << unknown->body;

  // A closed session rejects new work.
  const std::string sid = OpenWireSession(client_.get());
  auto closed = client_->Post("/v1/session/close", "", WithSession(sid));
  EXPECT_EQ(closed->status, 200) << closed->body;
  auto after_close = client_->Post("/v1/append?chronicle=calls", "1\tNJ\t1\t1\n",
                                   WithSession(sid));
  EXPECT_EQ(after_close->status, 401);
}

TEST_F(NetServiceTest, MalformedAppendBodiesAreRejectedWhole) {
  StartService(DatabaseOptions(), NetOptions());
  const std::string sid = OpenWireSession(client_.get());

  struct Case {
    const char* path;
    const char* body;
    int want_status;
    const char* want_substr;
  };
  const Case kCases[] = {
      {"/v1/append", "1\tNJ\t1\t1\n", 400, "missing ?chronicle="},
      {"/v1/append?chronicle=nope", "1\tNJ\t1\t1\n", 404, "NotFound"},
      {"/v1/append?chronicle=calls", "", 400, "empty append body"},
      {"/v1/append?chronicle=calls", "\n\n\n", 400, "no rows"},
      {"/v1/append?chronicle=calls", "1\tNJ\t5\n", 400, "too few columns"},
      {"/v1/append?chronicle=calls", "1\tNJ\t5\t1.0\textra\n", 400,
       "too many columns"},
      {"/v1/append?chronicle=calls", "x\tNJ\t5\t1.0\n", 400, "not an INT64"},
      {"/v1/append?chronicle=calls", "1\tNJ\t5\tpi\n", 400, "not a DOUBLE"},
      // Out-of-range numerics must be rejected, not silently saturated
      // (strtoll would return LLONG_MAX, strtod HUGE_VAL).
      {"/v1/append?chronicle=calls", "99999999999999999999\tNJ\t5\t1.0\n", 400,
       "INT64 out of range"},
      {"/v1/append?chronicle=calls", "1\tNJ\t5\t1e999\n", 400,
       "DOUBLE out of range"},
      // A bad row anywhere rejects the whole body: the first (valid) line
      // must NOT be applied.
      {"/v1/append?chronicle=calls", "1\tNJ\t5\t1.0\nbad\tNJ\t5\t1.0\n", 400,
       "line 2"},
  };
  for (const Case& c : kCases) {
    auto resp = client_->Post(c.path, c.body, WithSession(sid));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, c.want_status) << c.body << " -> " << resp->body;
    EXPECT_NE(resp->body.find(c.want_substr), std::string::npos)
        << c.body << " -> " << resp->body;
  }

  // Nothing above was half-applied: the view is still empty.
  ASSERT_EQ(client_->Post("/v1/drain", "", WithSession(sid))->status, 200);
  auto rows = client_->Post("/v1/sql", "SELECT * FROM by_caller;",
                            WithSession(sid));
  EXPECT_NE(rows->body.find("\"rows\":[]"), std::string::npos) << rows->body;
}

TEST_F(NetServiceTest, SqlErrorsUseTheSharedShape) {
  StartService(DatabaseOptions(), NetOptions());
  const std::string sid = OpenWireSession(client_.get());

  auto parse = client_->Post("/v1/sql", "SELEC * FRM nothing;",
                             WithSession(sid));
  EXPECT_EQ(parse->status, 400);
  EXPECT_NE(parse->body.find("\"error\":{\"code\":\"ParseError\""),
            std::string::npos)
      << parse->body;

  auto not_found = client_->Post("/v1/sql", "SELECT * FROM nonexistent;",
                                 WithSession(sid));
  EXPECT_EQ(not_found->status, 404) << not_found->body;
  EXPECT_NE(not_found->body.find("\"code\":\"NotFound\""), std::string::npos)
      << not_found->body;

  auto no_route = client_->Post("/v1/frobnicate", "", WithSession(sid));
  EXPECT_EQ(no_route->status, 404);
}

TEST_F(NetServiceTest, OversizedBodyGets413) {
  NetOptions net;
  net.max_body_bytes = 1024;
  StartService(DatabaseOptions(), net);
  const std::string sid = OpenWireSession(client_.get());

  const std::string big(4096, 'x');
  auto resp = client_->Post("/v1/append?chronicle=calls", big,
                            WithSession(sid));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 413);

  // The server closed that connection (the client may have been mid-send);
  // the client transparently reconnects and the service still works.
  auto healthz = client_->Get("/healthz");
  EXPECT_EQ(healthz->status, 200);
}

TEST_F(NetServiceTest, GarbageAndTruncatedRequestsDoNotWedgeTheServer) {
  StartService(DatabaseOptions(), NetOptions());

  auto raw_connect = [&]() -> int {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(service_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };

  // Garbage request line: 400, connection closed (read to EOF works).
  {
    int fd = raw_connect();
    const std::string garbage = "THIS IS NOT HTTP\r\n\r\n";
    ASSERT_EQ(send(fd, garbage.data(), garbage.size(), 0),
              static_cast<ssize_t>(garbage.size()));
    std::string got;
    char buf[512];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
    close(fd);
    EXPECT_NE(got.find("400"), std::string::npos) << got;
  }

  // Truncated body: Content-Length promises 100 bytes, client hangs up
  // after 10. The server must just drop the connection.
  {
    int fd = raw_connect();
    const std::string partial =
        "POST /v1/sql HTTP/1.1\r\nContent-Length: 100\r\n\r\nSELECT * F";
    ASSERT_EQ(send(fd, partial.data(), partial.size(), 0),
              static_cast<ssize_t>(partial.size()));
    close(fd);
  }

  // Truncated head: EOF mid-headers.
  {
    int fd = raw_connect();
    const std::string partial = "POST /v1/sql HTT";
    ASSERT_EQ(send(fd, partial.data(), partial.size(), 0),
              static_cast<ssize_t>(partial.size()));
    close(fd);
  }

  // After all of the above the service still answers.
  auto healthz = client_->Get("/healthz");
  ASSERT_TRUE(healthz.ok()) << healthz.status().ToString();
  EXPECT_EQ(healthz->status, 200);
}

TEST_F(NetServiceTest, QuotaSpendsAndRejectsWith429) {
  NetOptions net;
  net.session_row_quota = 4;
  StartService(DatabaseOptions(), net);
  const std::string sid = OpenWireSession(client_.get());

  auto first = client_->Post("/v1/append?chronicle=calls",
                             "1\tNJ\t1\t1\n2\tNY\t1\t1\n3\tNJ\t1\t1\n",
                             WithSession(sid));
  EXPECT_EQ(first->status, 202) << first->body;

  // 3 of 4 rows spent; a 2-row batch overflows the quota and is rejected
  // whole with the backpressure contract (429 + Retry-After).
  auto over = client_->Post("/v1/append?chronicle=calls",
                            "4\tNJ\t1\t1\n5\tNY\t1\t1\n", WithSession(sid));
  EXPECT_EQ(over->status, 429) << over->body;
  EXPECT_NE(over->body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos)
      << over->body;
  EXPECT_NE(over->body.find("quota"), std::string::npos) << over->body;
  ASSERT_NE(over->FindHeader("retry-after"), nullptr);

  // A 1-row batch still fits. Quota is per-session: a fresh session has a
  // fresh allowance.
  auto fits = client_->Post("/v1/append?chronicle=calls", "4\tNJ\t1\t1\n",
                            WithSession(sid));
  EXPECT_EQ(fits->status, 202) << fits->body;
  const std::string sid2 = OpenWireSession(client_.get());
  auto other = client_->Post("/v1/append?chronicle=calls",
                             "6\tNY\t1\t1\n7\tNJ\t1\t1\n", WithSession(sid2));
  EXPECT_EQ(other->status, 202) << other->body;
}

// A body with more rows than the queue holds even when empty can never be
// accepted — it must be a 400 client error, not a 429, or a Retry-After-
// honoring client (tools/net_client) resends the same body forever.
TEST_F(NetServiceTest, NeverFittingBatchGets400NotRetryable) {
  NetOptions net;
  net.session_queue_rows = 4;
  StartService(DatabaseOptions(), net);
  const std::string sid = OpenWireSession(client_.get());
  service_->SetIngestPaused(true);

  auto never = client_->Post(
      "/v1/append?chronicle=calls",
      "1\tNJ\t1\t1\n2\tNY\t1\t1\n3\tNJ\t1\t1\n4\tNY\t1\t1\n5\tNJ\t1\t1\n",
      WithSession(sid));
  ASSERT_TRUE(never.ok()) << never.status().ToString();
  EXPECT_EQ(never->status, 400) << never->body;
  EXPECT_NE(never->body.find("\"code\":\"InvalidArgument\""),
            std::string::npos)
      << never->body;
  EXPECT_NE(never->body.find("queue capacity"), std::string::npos)
      << never->body;
  EXPECT_EQ(never->FindHeader("retry-after"), nullptr);

  // A batch of exactly the queue capacity fits while the queue is empty...
  auto exact = client_->Post("/v1/append?chronicle=calls",
                             "1\tNJ\t1\t1\n2\tNY\t1\t1\n3\tNJ\t1\t1\n4\tNY\t1\t1\n",
                             WithSession(sid));
  EXPECT_EQ(exact->status, 202) << exact->body;

  // ...and with the queue now full, a 1-row batch is genuine backpressure:
  // 429 + Retry-After, worth resending after the drain.
  auto full = client_->Post("/v1/append?chronicle=calls", "6\tNJ\t1\t1\n",
                            WithSession(sid));
  EXPECT_EQ(full->status, 429) << full->body;
  ASSERT_NE(full->FindHeader("retry-after"), nullptr);

  service_->SetIngestPaused(false);
  EXPECT_EQ(client_->Post("/v1/drain", "", WithSession(sid))->status, 200);
}

// The session table must stay bounded: /v1/session refuses beyond the
// open-session cap, and a closed session's state is erased (not exported
// forever) once its queue drains.
TEST_F(NetServiceTest, SessionCapAndClosedSessionErasure) {
  NetOptions net;
  net.max_open_sessions = 2;
  StartService(DatabaseOptions(), net);

  const std::string s1 = OpenWireSession(client_.get());
  const std::string s2 = OpenWireSession(client_.get());
  auto third = client_->Post("/v1/session", "");
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->status, 429) << third->body;
  EXPECT_NE(third->body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos)
      << third->body;
  ASSERT_NE(third->FindHeader("retry-after"), nullptr);

  // Give s1 some history, close it, and drain: its per-session stats
  // series must disappear, and its slot frees up.
  auto append = client_->Post("/v1/append?chronicle=calls", "1\tNJ\t1\t1\n",
                              WithSession(s1));
  EXPECT_EQ(append->status, 202) << append->body;
  EXPECT_EQ(client_->Post("/v1/drain", "", WithSession(s1))->status, 200);
  EXPECT_EQ(client_->Post("/v1/session/close", "", WithSession(s1))->status,
            200);

  auto stats = client_->Get("/stats.json");
  EXPECT_EQ(stats->body.find("\"id\":\"" + s1 + "\""), std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"id\":\"" + s2 + "\""), std::string::npos)
      << stats->body;
  // Totals survive the erasure.
  EXPECT_NE(stats->body.find("\"rows_applied_total\":1"), std::string::npos)
      << stats->body;

  const std::string s3 = OpenWireSession(client_.get());
  auto works = client_->Post("/v1/append?chronicle=calls", "2\tNY\t1\t1\n",
                             WithSession(s3));
  EXPECT_EQ(works->status, 202) << works->body;

  // A session closed with rows still queued drains first, then goes away.
  service_->SetIngestPaused(true);
  auto queued = client_->Post("/v1/append?chronicle=calls", "3\tNJ\t1\t1\n",
                              WithSession(s3));
  EXPECT_EQ(queued->status, 202) << queued->body;
  EXPECT_EQ(client_->Post("/v1/session/close", "", WithSession(s3))->status,
            200);
  service_->SetIngestPaused(false);
  EXPECT_EQ(client_->Post("/v1/drain", "", WithSession(s2))->status, 200);
  auto after = client_->Get("/stats.json");
  EXPECT_EQ(after->body.find("\"id\":\"" + s3 + "\""), std::string::npos)
      << after->body;
  // Both of s3's rows landed before it was torn down.
  EXPECT_NE(after->body.find("\"rows_applied_total\":3"), std::string::npos)
      << after->body;
}

// Unconsumed request bodies must not desync the keep-alive stream:
// Transfer-Encoding (unimplemented framing) is rejected with 501 + close,
// and a Content-Length body on a 405'd method is drained so the next
// pipelined request parses cleanly instead of parsing the body bytes.
TEST_F(NetServiceTest, UnconsumedBodiesNeverDesyncTheConnection) {
  StartService(DatabaseOptions(), NetOptions());

  auto raw_connect = [&]() -> int {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(service_->port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    return fd;
  };
  auto read_all = [](int fd) {
    std::string got;
    char buf[2048];
    ssize_t n;
    while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
    close(fd);
    return got;
  };

  // Chunked POST: 501, connection closed (read to EOF terminates).
  {
    int fd = raw_connect();
    const std::string req =
        "POST /v1/sql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        "5\r\nhello\r\n0\r\n\r\n";
    ASSERT_EQ(send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    const std::string got = read_all(fd);
    EXPECT_NE(got.find("501"), std::string::npos) << got;
    EXPECT_NE(got.find("Connection: close"), std::string::npos) << got;
  }

  // Malformed Content-Length: 400, connection closed (framing unknown).
  {
    int fd = raw_connect();
    const std::string req =
        "POST /v1/sql HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    ASSERT_EQ(send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    const std::string got = read_all(fd);
    EXPECT_NE(got.find("400"), std::string::npos) << got;
    EXPECT_NE(got.find("Connection: close"), std::string::npos) << got;
  }

  // PUT with a body, pipelined with a GET: the PUT gets 405, its 5 body
  // bytes are drained (NOT parsed as a request), and the GET answers 200.
  {
    int fd = raw_connect();
    const std::string req =
        "PUT /v1/sql HTTP/1.1\r\nContent-Length: 5\r\n\r\nHELLO"
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    ASSERT_EQ(send(fd, req.data(), req.size(), 0),
              static_cast<ssize_t>(req.size()));
    const std::string got = read_all(fd);
    EXPECT_NE(got.find("405"), std::string::npos) << got;
    EXPECT_NE(got.find("200 OK"), std::string::npos) << got;
    EXPECT_NE(got.find("\"status\":\"ok\""), std::string::npos) << got;
  }
}

// After \listen the shell REPL and the wire service drive the SAME
// cql::Session from different threads; Session's internal mutex is the
// serialization point. This hammers both drivers concurrently — TSan (CI
// runs this suite under it) catches any regression, and the final counts
// prove no lost updates.
TEST_F(NetServiceTest, ConcurrentShellAndWireDriversAreSerialized) {
  StartService(DatabaseOptions(), NetOptions());
  const std::string sid = OpenWireSession(client_.get());

  constexpr int kShellInserts = 120;
  constexpr int kWireAppends = 60;
  std::thread shell([&] {
    // The REPL path: direct ExecuteSql on the session, as \listen leaves
    // the shell doing.
    for (int i = 0; i < kShellInserts; ++i) {
      auto r = session_->ExecuteSql(
          "INSERT INTO calls VALUES (900, 'NJ', 1, 0.5);");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
  });
  for (int i = 0; i < kWireAppends; ++i) {
    auto resp = client_->Post("/v1/append?chronicle=calls",
                              "901\tNY\t1\t1.0\n", WithSession(sid));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->status, 202) << resp->body;
  }
  shell.join();
  ASSERT_EQ(client_->Post("/v1/drain", "", WithSession(sid))->status, 200);

  auto rows = session_->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const std::vector<std::string> sorted = SortedRows(*rows);
  EXPECT_EQ(sorted.size(), 2u);
  EXPECT_NE(std::find(sorted.begin(), sorted.end(),
                      "900|" + std::to_string(kShellInserts) + "|" +
                          std::to_string(kShellInserts) + "|"),
            sorted.end());
  EXPECT_NE(std::find(sorted.begin(), sorted.end(),
                      "901|" + std::to_string(kWireAppends) + "|" +
                          std::to_string(kWireAppends) + "|"),
            sorted.end());
}

// The acceptance test: with the ingest worker paused, session A fills its
// bounded queue and starts collecting 429s; session B keeps accepting
// appends and /v1/sql keeps answering. After unpausing and draining, the
// database matches a local oracle that applied the same accepted batches —
// nothing dropped, nothing duplicated.
TEST_F(NetServiceTest, BackpressureIsPerSessionAndLossless) {
  NetOptions net;
  net.session_queue_rows = 64;
  StartService(DatabaseOptions(), net);

  HttpClient client_b(service_->port());
  const std::string sid_a = OpenWireSession(client_.get());
  const std::string sid_b = OpenWireSession(&client_b);

  CallRecordGenerator gen({.num_accounts = 50, .seed = 7});
  std::vector<std::vector<std::vector<Tuple>>> accepted;  // oracle replay

  service_->SetIngestPaused(true);

  // Fill A's queue: 4 batches of 16 rows fit exactly.
  for (int i = 0; i < 4; ++i) {
    std::vector<std::vector<Tuple>> ticks = {gen.NextBatch(16)};
    auto resp = client_->Post("/v1/append?chronicle=calls",
                              EncodeTicks(ticks), WithSession(sid_a));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, 202) << resp->body;
    accepted.push_back(std::move(ticks));
  }

  // The queue is full: the next batch bounces with 429 + Retry-After and
  // the shared error shape, atomically (no partial enqueue).
  std::vector<std::vector<Tuple>> overflow_ticks = {gen.NextBatch(16)};
  const std::string overflow_body = EncodeTicks(overflow_ticks);
  auto rejected = client_->Post("/v1/append?chronicle=calls", overflow_body,
                                WithSession(sid_a));
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status, 429) << rejected->body;
  EXPECT_NE(rejected->body.find("\"code\":\"ResourceExhausted\""),
            std::string::npos)
      << rejected->body;
  EXPECT_NE(rejected->body.find("queue full"), std::string::npos)
      << rejected->body;
  const std::string* retry_after = rejected->FindHeader("retry-after");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");

  // Session B is unaffected by A's saturation.
  std::vector<std::vector<Tuple>> b_ticks = {gen.NextBatch(16)};
  auto b_resp = client_b.Post("/v1/append?chronicle=calls",
                              EncodeTicks(b_ticks), WithSession(sid_b));
  ASSERT_TRUE(b_resp.ok()) << b_resp.status().ToString();
  EXPECT_EQ(b_resp->status, 202) << b_resp->body;
  accepted.push_back(b_ticks);

  // /v1/sql still answers while ingest is backed up.
  auto sql = client_b.Post("/v1/sql", "SELECT * FROM by_caller;",
                           WithSession(sid_b));
  EXPECT_EQ(sql->status, 200) << sql->body;

  // Draining while paused is a FailedPrecondition (409), not a hang.
  auto stuck = client_->Post("/v1/drain", "", WithSession(sid_a));
  EXPECT_EQ(stuck->status, 409) << stuck->body;

  // The saturation is visible in the monitoring catalog.
  auto metrics = client_b.Get("/metrics");
  EXPECT_NE(metrics->body.find("chronicle_net_rejected_backpressure_total 1"),
            std::string::npos);
  auto stats = client_b.Get("/stats.json");
  EXPECT_NE(stats->body.find("\"rejected_backpressure_total\":1"),
            std::string::npos)
      << stats->body;

  // Unpause, drain, and retry the rejected batch — the retry is the
  // client's job, and after it lands nothing is lost.
  service_->SetIngestPaused(false);
  ASSERT_EQ(client_->Post("/v1/drain", "", WithSession(sid_a))->status, 200);
  auto retried = client_->Post("/v1/append?chronicle=calls", overflow_body,
                               WithSession(sid_a));
  EXPECT_EQ(retried->status, 202) << retried->body;
  accepted.push_back(overflow_ticks);
  ASSERT_EQ(client_->Post("/v1/drain", "", WithSession(sid_a))->status, 200);

  // Local oracle: apply exactly the accepted batches. The view is a
  // GroupBy (apply-order insensitive across sessions), so the sorted rows
  // must match byte for byte.
  std::unique_ptr<Session> oracle = OpenWithDdl(DatabaseOptions());
  ASSERT_NE(oracle, nullptr);
  uint64_t oracle_rows = 0;
  for (const auto& ticks : accepted) {
    auto applied = oracle->AppendRows("calls", ticks);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    oracle_rows += *applied;
  }
  EXPECT_EQ(oracle_rows, 6u * 16u);

  auto net_rows = session_->ExecuteSql("SELECT * FROM by_caller;");
  auto oracle_view = oracle->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(net_rows.ok());
  ASSERT_TRUE(oracle_view.ok());
  EXPECT_FALSE(net_rows->rows.empty());
  EXPECT_EQ(SortedRows(*net_rows), SortedRows(*oracle_view));
}

// Networked-vs-local equivalence across the delta engines and sharding:
// the same generated stream ingested over the wire and via local
// AppendRows must produce byte-identical view contents.
struct EngineConfig {
  const char* name;
  size_t shards;
  bool compiled;
  bool columnar;
};

class NetEquivalenceTest : public ::testing::TestWithParam<EngineConfig> {};

TEST_P(NetEquivalenceTest, NetworkedMatchesLocalAppendMany) {
  const EngineConfig& cfg = GetParam();

  DatabaseOptions options;
  options.sharding.num_shards = cfg.shards;
  std::unique_ptr<Session> server = OpenWithDdl(options);
  ASSERT_NE(server, nullptr);
  std::unique_ptr<Session> oracle = OpenWithDdl(options);
  ASSERT_NE(oracle, nullptr);
  for (Session* s : {server.get(), oracle.get()}) {
    MaintenanceOptions m = s->maintenance_options();
    m.use_compiled_plans = cfg.compiled;
    m.use_columnar_kernels = cfg.columnar;
    s->ReconfigureMaintenance(m);
  }

  WireService service(server.get(), NetOptions{});
  ASSERT_TRUE(service.Start(0).ok());
  HttpClient client(service.port());

  auto resp = client.Post("/v1/session", "");
  ASSERT_TRUE(resp.ok());
  const std::string marker = "\"session\":\"";
  const size_t at = resp->body.find(marker);
  ASSERT_NE(at, std::string::npos);
  const size_t start = at + marker.size();
  const std::string sid =
      resp->body.substr(start, resp->body.find('"', start) - start);

  CallRecordGenerator gen({.num_accounts = 100, .seed = 11});
  for (int batch = 0; batch < 8; ++batch) {
    std::vector<std::vector<Tuple>> ticks;
    for (int t = 0; t < 4; ++t) ticks.push_back(gen.NextBatch(32));
    auto posted =
        client.Post("/v1/append?chronicle=calls", EncodeTicks(ticks),
                    {{"X-Chronicle-Session", sid}});
    ASSERT_TRUE(posted.ok()) << posted.status().ToString();
    ASSERT_EQ(posted->status, 202) << posted->body;
    auto applied = oracle->AppendRows("calls", std::move(ticks));
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }
  auto drained =
      client.Post("/v1/drain", "", {{"X-Chronicle-Session", sid}});
  ASSERT_EQ(drained->status, 200) << drained->body;

  auto net_rows = server->ExecuteSql("SELECT * FROM by_caller;");
  auto oracle_rows = oracle->ExecuteSql("SELECT * FROM by_caller;");
  ASSERT_TRUE(net_rows.ok()) << net_rows.status().ToString();
  ASSERT_TRUE(oracle_rows.ok()) << oracle_rows.status().ToString();
  EXPECT_FALSE(net_rows->rows.empty());
  EXPECT_EQ(SortedRows(*net_rows), SortedRows(*oracle_rows));

  service.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Engines, NetEquivalenceTest,
    ::testing::Values(EngineConfig{"interp", 1, false, false},
                      EngineConfig{"compiled", 1, true, false},
                      EngineConfig{"columnar", 1, true, true},
                      EngineConfig{"sharded4", 4, false, false}),
    [](const ::testing::TestParamInfo<EngineConfig>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace chronicle
