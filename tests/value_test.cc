#include "types/value.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Constructors) {
  EXPECT_TRUE(Value(int64_t{5}).is_int64());
  EXPECT_TRUE(Value(5).is_int64());  // int promotes to int64
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_TRUE(Value(std::string("abc")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(7).int64(), 7);
  EXPECT_DOUBLE_EQ(Value(1.5).dbl(), 1.5);
  EXPECT_EQ(Value("hi").str(), "hi");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(1).type(), DataType::kInt64);
  EXPECT_EQ(Value(1.0).type(), DataType::kDouble);
  EXPECT_EQ(Value("x").type(), DataType::kString);
  EXPECT_STREQ(DataTypeToString(DataType::kInt64), "INT64");
  EXPECT_STREQ(DataTypeToString(DataType::kDouble), "DOUBLE");
  EXPECT_STREQ(DataTypeToString(DataType::kString), "STRING");
}

TEST(ValueTest, AsNumeric) {
  EXPECT_DOUBLE_EQ(Value(3).AsNumeric().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).AsNumeric().value(), 3.5);
  EXPECT_FALSE(Value("x").AsNumeric().ok());
  EXPECT_FALSE(Value().AsNumeric().ok());
}

TEST(ValueTest, IntegerComparison) {
  EXPECT_LT(Value(1).Compare(Value(2)), 0);
  EXPECT_GT(Value(2).Compare(Value(1)), 0);
  EXPECT_EQ(Value(2).Compare(Value(2)), 0);
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value(2).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(2).Compare(Value(2.5)), 0);
  EXPECT_GT(Value(3.5).Compare(Value(3)), 0);
  EXPECT_TRUE(Value(2) == Value(2.0));
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("abc").Compare(Value("abc")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

TEST(ValueTest, NullSortsFirstAndEqualsNull) {
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_LT(Value().Compare(Value("")), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_GT(Value(0).Compare(Value()), 0);
}

TEST(ValueTest, MixedStringNumericOrdersByTypeTag) {
  EXPECT_LT(Value(5).Compare(Value("5")), 0);
  EXPECT_GT(Value("5").Compare(Value(5)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Cross-type numeric equality must imply equal hashes.
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value(std::string("abc")).Hash());
  EXPECT_EQ(Value().Hash(), Value().Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value(-1).ToString(), "-1");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

TEST(ValueTest, HashSpreads) {
  // Not a strict requirement, but consecutive ints should not all collide.
  size_t h0 = Value(0).Hash();
  int collisions = 0;
  for (int i = 1; i < 100; ++i) {
    if (Value(i).Hash() == h0) ++collisions;
  }
  EXPECT_LT(collisions, 5);
}

}  // namespace
}  // namespace chronicle
