#include "types/schema.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema TestSchema() {
  return Schema({{"acct", DataType::kInt64},
                 {"region", DataType::kString},
                 {"amount", DataType::kDouble}});
}

TEST(SchemaTest, MakeAcceptsDistinctNames) {
  Result<Schema> schema = Schema::Make(
      {{"a", DataType::kInt64}, {"b", DataType::kString}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 2u);
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  Result<Schema> schema =
      Schema::Make({{"a", DataType::kInt64}, {"a", DataType::kString}});
  ASSERT_FALSE(schema.ok());
  EXPECT_TRUE(schema.status().IsInvalidArgument());
}

TEST(SchemaTest, MakeRejectsEmptyName) {
  Result<Schema> schema = Schema::Make({{"", DataType::kInt64}});
  EXPECT_FALSE(schema.ok());
}

TEST(SchemaTest, IndexOfFindsColumns) {
  Schema s = TestSchema();
  EXPECT_EQ(s.IndexOf("acct").value(), 0u);
  EXPECT_EQ(s.IndexOf("amount").value(), 2u);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
  EXPECT_TRUE(s.Contains("region"));
  EXPECT_FALSE(s.Contains("missing"));
}

TEST(SchemaTest, ProjectReordersAndSubsets) {
  Schema s = TestSchema();
  Result<Schema> p = s.Project({"amount", "acct"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_fields(), 2u);
  EXPECT_EQ(p->field(0).name, "amount");
  EXPECT_EQ(p->field(0).type, DataType::kDouble);
  EXPECT_EQ(p->field(1).name, "acct");
}

TEST(SchemaTest, ProjectUnknownColumnFails) {
  EXPECT_FALSE(TestSchema().Project({"nope"}).ok());
}

TEST(SchemaTest, ConcatWithoutCollision) {
  Schema left({{"a", DataType::kInt64}});
  Schema right({{"b", DataType::kString}});
  Schema joined = left.Concat(right, "r");
  EXPECT_EQ(joined.num_fields(), 2u);
  EXPECT_EQ(joined.field(1).name, "b");
}

TEST(SchemaTest, ConcatPrefixesCollisions) {
  Schema left({{"acct", DataType::kInt64}, {"x", DataType::kDouble}});
  Schema right({{"acct", DataType::kInt64}, {"y", DataType::kString}});
  Schema joined = left.Concat(right, "cust");
  ASSERT_EQ(joined.num_fields(), 4u);
  EXPECT_EQ(joined.field(2).name, "cust.acct");
  EXPECT_EQ(joined.field(3).name, "y");
}

TEST(SchemaTest, EqualityIsStructural) {
  EXPECT_EQ(TestSchema(), TestSchema());
  Schema other({{"acct", DataType::kInt64}});
  EXPECT_NE(TestSchema(), other);
}

TEST(SchemaTest, ToStringRendering) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "(a INT64, b STRING)");
}

}  // namespace
}  // namespace chronicle
