// Unit coverage for src/shard/: the stable partitioner, the SPSC handoff
// ring (including a two-thread stress the TSan job leans on), synchronous
// routed ingest, the cross-shard merge read layer, the async pipeline, and
// the sharded CollectStats rollup. The deeper randomized sharded-vs-
// unsharded equivalence lives in sharded_equivalence_fuzz_test.cc.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "obs/export.h"
#include "shard/partitioner.h"
#include "shard/sharded_db.h"
#include "shard/spsc_queue.h"

namespace chronicle {
namespace {

using shard::Partitioner;
using shard::ShardedDatabase;
using shard::SpscQueue;
using shard::StableValueHash;

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

// --- partitioner ---

TEST(PartitionerTest, StableHashIsDeterministicAndSpreads) {
  // Same value, same hash — across calls and Value copies.
  EXPECT_EQ(StableValueHash(Value(int64_t{42})),
            StableValueHash(Value(int64_t{42})));
  EXPECT_EQ(StableValueHash(Value("NJ")), StableValueHash(Value("NJ")));
  EXPECT_NE(StableValueHash(Value(int64_t{1})),
            StableValueHash(Value(int64_t{2})));
  // Cross-type numeric equality (Value(5) == Value(5.0)) must hash equal,
  // or equal keys could route to different shards.
  EXPECT_EQ(StableValueHash(Value(int64_t{5})), StableValueHash(Value(5.0)));
  EXPECT_EQ(StableValueHash(Value(0.0)), StableValueHash(Value(-0.0)));
  // 1000 consecutive keys over 4 shards: every shard gets a decent share.
  size_t counts[4] = {0, 0, 0, 0};
  for (int64_t k = 0; k < 1000; ++k) {
    counts[StableValueHash(Value(k)) % 4]++;
  }
  for (size_t c : counts) {
    EXPECT_GT(c, 150u);
  }
}

TEST(PartitionerTest, ResolvesKeyColumnAtMake) {
  // Default: first column.
  Partitioner by_first = Partitioner::Make(CallSchema(), "", 4).value();
  EXPECT_EQ(by_first.key_column(), 0u);
  EXPECT_EQ(by_first.key_name(), "caller");
  // Named column.
  Partitioner by_region = Partitioner::Make(CallSchema(), "region", 4).value();
  EXPECT_EQ(by_region.key_column(), 1u);
  // Unknown column: refused at DDL time, not at append time.
  EXPECT_FALSE(Partitioner::Make(CallSchema(), "nope", 4).ok());
  EXPECT_FALSE(Partitioner::Make(CallSchema(), "", 0).ok());
}

TEST(PartitionerTest, SplitPreservesPerShardOrder) {
  Partitioner p = Partitioner::Make(CallSchema(), "", 3).value();
  std::vector<Tuple> rows;
  for (int64_t i = 0; i < 60; ++i) {
    rows.push_back(Tuple{Value(i % 7), Value("NJ"), Value(i)});
  }
  std::vector<std::vector<Tuple>> split = p.Split(rows);
  ASSERT_EQ(split.size(), 3u);
  size_t total = 0;
  for (size_t k = 0; k < split.size(); ++k) {
    int64_t last_minutes = -1;
    for (const Tuple& row : split[k]) {
      EXPECT_EQ(p.ShardOf(row), k);
      // "minutes" is the original position: order within a shard is the
      // original order filtered to that shard.
      EXPECT_GT(row[2].int64(), last_minutes);
      last_minutes = row[2].int64();
      ++total;
    }
  }
  EXPECT_EQ(total, rows.size());
}

// --- SPSC ring ---

TEST(SpscQueueTest, FifoAndCapacity) {
  SpscQueue<int> q(3);  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(q.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(std::move(i)));
  }
  int overflow = 99;
  EXPECT_FALSE(q.TryPush(std::move(overflow)));  // full: backpressure
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_TRUE(q.EmptyApprox());
}

TEST(SpscQueueTest, TwoThreadStressKeepsOrderAndLosesNothing) {
  // The TSan job runs this: one producer, one consumer, a ring small
  // enough to wrap thousands of times.
  constexpr int kItems = 50000;
  SpscQueue<int> q(64);
  std::thread consumer([&q] {
    int expected = 0;
    int item = 0;
    while (expected < kItems) {
      if (q.TryPop(&item)) {
        ASSERT_EQ(item, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (int i = 0; i < kItems; ++i) {
    int v = i;
    while (!q.TryPush(std::move(v))) {
      v = i;
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_TRUE(q.EmptyApprox());
}

// --- sharded database ---

Status ApplyDdl(ShardedDatabase* db) {
  CHRONICLE_RETURN_NOT_OK(
      db->CreateChronicle("calls", CallSchema()).status());
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec by_caller,
      SummarySpec::GroupBy(CallSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n"),
                            AggSpec::Avg("minutes", "avg_m")}));
  CHRONICLE_RETURN_NOT_OK(
      db->CreateView("by_caller",
                     [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
                     std::move(by_caller))
          .status());
  // Non-aligned grouping: groups span shards, so reads MUST merge.
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec by_region,
      SummarySpec::GroupBy(CallSchema(), {"region"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n"),
                            AggSpec::Min("minutes", "lo"),
                            AggSpec::Max("minutes", "hi")}));
  CHRONICLE_RETURN_NOT_OK(
      db->CreateView("by_region",
                     [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
                     std::move(by_region))
          .status());
  return Status::OK();
}

Status ApplyDdl(ChronicleDatabase* db) {
  CHRONICLE_RETURN_NOT_OK(db->CreateChronicle("calls", CallSchema()).status());
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr scan, db->ScanChronicle("calls"));
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec by_caller,
      SummarySpec::GroupBy(CallSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n"),
                            AggSpec::Avg("minutes", "avg_m")}));
  CHRONICLE_RETURN_NOT_OK(
      db->CreateView("by_caller", scan, std::move(by_caller)).status());
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec by_region,
      SummarySpec::GroupBy(CallSchema(), {"region"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n"),
                            AggSpec::Min("minutes", "lo"),
                            AggSpec::Max("minutes", "hi")}));
  return db->CreateView("by_region", scan, std::move(by_region)).status();
}

std::vector<std::vector<Tuple>> WorkloadBatches() {
  const char* const kRegions[] = {"NJ", "NY", "CA", "TX"};
  std::vector<std::vector<Tuple>> batches;
  for (int64_t tick = 0; tick < 40; ++tick) {
    std::vector<Tuple> batch;
    for (int64_t i = 0; i <= tick % 5; ++i) {
      batch.push_back(Tuple{Value((tick * 3 + i * 7) % 11),
                            Value(kRegions[(tick + i) % 4]),
                            Value((tick + i) % 9)});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

TEST(ShardedDatabaseTest, OpenValidatesOptions) {
  DatabaseOptions zero;
  zero.sharding.num_shards = 0;
  EXPECT_FALSE(ShardedDatabase::Open(zero).ok());
}

TEST(ShardedDatabaseTest, RoutedAppendsMatchUnshardedReference) {
  DatabaseOptions options;
  options.sharding.num_shards = 4;
  auto sharded = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(sharded.get()).ok());
  ChronicleDatabase reference;
  ApplyDdl(&reference);

  uint64_t rows_fed = 0;
  for (auto& batch : WorkloadBatches()) {
    rows_fed += batch.size();
    auto ref = reference.Append("calls", batch);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    auto routed = sharded->Append("calls", std::move(batch));
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  }
  EXPECT_EQ(sharded->rows_routed(), rows_fed);

  for (const char* view : {"by_caller", "by_region"}) {
    SCOPED_TRACE(view);
    std::vector<Tuple> merged = sharded->ScanView(view).value();
    std::vector<Tuple> expected = reference.ScanView(view).value();
    EXPECT_EQ(merged, expected);
    // Point lookups: aligned (by_caller routes to one shard) and merged
    // (by_region folds partial states) paths both match.
    for (const Tuple& row : expected) {
      Tuple key{row[0]};
      EXPECT_EQ(sharded->QueryView(view, key).value(), row);
    }
  }
  EXPECT_FALSE(
      sharded->QueryView("by_caller", Tuple{Value(int64_t{999})}).ok());
  EXPECT_FALSE(sharded->Append("ghosts", {Tuple{Value(1)}}).ok());
}

TEST(ShardedDatabaseTest, SingleShardIsVerbatimPassthrough) {
  DatabaseOptions options;
  options.sharding.num_shards = 1;
  auto sharded = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(sharded.get()).ok());
  ChronicleDatabase reference;
  ApplyDdl(&reference);
  for (auto& batch : WorkloadBatches()) {
    ASSERT_TRUE(reference.Append("calls", batch).ok());
    ASSERT_TRUE(sharded->Append("calls", std::move(batch)).ok());
  }
  // Same engine, same calls: every observable matches, not just views.
  EXPECT_EQ(sharded->engine(0).appends_processed(),
            reference.appends_processed());
  EXPECT_EQ(sharded->engine(0).group().last_sn(), reference.group().last_sn());
  for (const char* view : {"by_caller", "by_region"}) {
    EXPECT_EQ(sharded->ScanView(view).value(),
              reference.ScanView(view).value());
  }
}

TEST(ShardedDatabaseTest, RelationDmlBroadcastsToEveryShard) {
  DatabaseOptions options;
  options.sharding.num_shards = 3;
  auto db = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(db->CreateChronicle("calls", CallSchema()).ok());
  Schema cust({{"acct", DataType::kInt64}, {"tier", DataType::kString}});
  ASSERT_TRUE(db->CreateRelation("cust", cust, "acct").ok());
  ASSERT_TRUE(db->InsertInto("cust", Tuple{Value(1), Value("gold")}).ok());
  ASSERT_TRUE(
      db->UpdateRelation("cust", Value(1), Tuple{Value(1), Value("silver")})
          .ok());
  for (size_t k = 0; k < db->num_shards(); ++k) {
    const Relation* rel = db->engine(k).GetRelation("cust").value();
    EXPECT_EQ(rel->size(), 1u);
  }
  ASSERT_TRUE(db->DeleteFrom("cust", Value(1)).ok());
  for (size_t k = 0; k < db->num_shards(); ++k) {
    EXPECT_EQ(db->engine(k).GetRelation("cust").value()->size(), 0u);
  }
}

TEST(ShardedDatabaseTest, AppendMultiKeepsShardSlicesInOneTick) {
  DatabaseOptions options;
  options.sharding.num_shards = 4;
  auto sharded = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(sharded.get()).ok());
  ChronicleDatabase reference;
  ApplyDdl(&reference);

  for (Chronon c = 1; c <= 12; ++c) {
    std::vector<Tuple> rows;
    for (int64_t i = 0; i < 6; ++i) {
      rows.push_back(Tuple{Value((c * 5 + i) % 9), Value("NJ"), Value(i)});
    }
    ASSERT_TRUE(reference
                    .AppendMulti({{std::string("calls"), rows}}, c)
                    .ok());
    auto routed = sharded->AppendMulti({{std::string("calls"), rows}}, c);
    ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  }
  EXPECT_EQ(sharded->ScanView("by_caller").value(),
            reference.ScanView("by_caller").value());
  EXPECT_EQ(sharded->ScanView("by_region").value(),
            reference.ScanView("by_region").value());
}

TEST(ShardedDatabaseTest, AsyncPipelineMatchesSyncIngest) {
  DatabaseOptions options;
  options.sharding.num_shards = 4;
  options.sharding.queue_capacity = 8;  // force wrap + backpressure
  auto async_db = ShardedDatabase::Open(options).value();
  auto sync_db = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(async_db.get()).ok());
  ASSERT_TRUE(ApplyDdl(sync_db.get()).ok());

  ASSERT_TRUE(async_db->StartIngest(1).ok());
  EXPECT_FALSE(async_db->Append("calls", {Tuple{Value(1), Value("NJ"),
                                                Value(2)}})
                   .ok());  // sync path refused while the pipeline runs
  for (auto& batch : WorkloadBatches()) {
    ASSERT_TRUE(sync_db->Append("calls", batch).ok());
    ASSERT_TRUE(async_db->EnqueueAppend(0, "calls", std::move(batch)).ok());
  }
  ASSERT_TRUE(async_db->Flush().ok());
  ASSERT_TRUE(async_db->StopIngest().ok());

  // Same per-shard sub-batch sequence => same per-shard ticks => identical
  // merged summaries, even though the async path let chronons drift.
  for (const char* view : {"by_caller", "by_region"}) {
    EXPECT_EQ(async_db->ScanView(view).value(),
              sync_db->ScanView(view).value());
  }
  EXPECT_EQ(async_db->rows_routed(), sync_db->rows_routed());
}

TEST(ShardedDatabaseTest, MultiProducerAsyncIngestDistributesRows) {
  DatabaseOptions options;
  options.sharding.num_shards = 2;
  options.sharding.queue_capacity = 16;
  auto db = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(db.get()).ok());
  constexpr size_t kProducers = 3;
  constexpr int64_t kBatchesPerProducer = 200;
  ASSERT_TRUE(db->StartIngest(kProducers).ok());
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&db, p] {
      for (int64_t b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Tuple> batch{
            Tuple{Value(static_cast<int64_t>(p * 1000 + b)), Value("NJ"),
                  Value(int64_t{1})}};
        ASSERT_TRUE(db->EnqueueAppend(p, "calls", std::move(batch)).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_TRUE(db->StopIngest().ok());
  EXPECT_EQ(db->rows_routed(), kProducers * kBatchesPerProducer);
  // Every row landed exactly once: the COUNT over all groups says so.
  std::vector<Tuple> rows = db->ScanView("by_caller").value();
  uint64_t total = 0;
  for (const Tuple& row : rows) total += row[2].int64();
  EXPECT_EQ(total, kProducers * kBatchesPerProducer);
}

TEST(ShardedDatabaseTest, CollectStatsRollsUpPerShardSections) {
  DatabaseOptions options;
  options.sharding.num_shards = 4;
  auto db = ShardedDatabase::Open(options).value();
  ASSERT_TRUE(ApplyDdl(db.get()).ok());
  uint64_t rows_fed = 0;
  uint64_t ticks = 0;
  for (auto& batch : WorkloadBatches()) {
    rows_fed += batch.size();
    auto r = db->Append("calls", std::move(batch)).value();
    ticks += r.shards_touched;
  }
  obs::StatsSnapshot snap = db->CollectStats();
  EXPECT_EQ(snap.appends_processed, ticks);
  EXPECT_EQ(snap.live_views, 2u);
  ASSERT_TRUE(snap.sharding.attached);
  EXPECT_EQ(snap.sharding.num_shards, 4u);
  EXPECT_EQ(snap.sharding.partition_key, "caller");
  ASSERT_EQ(snap.sharding.shards.size(), 4u);
  uint64_t routed = 0;
  uint64_t appends = 0;
  for (const obs::ShardStatsSnapshot& s : snap.sharding.shards) {
    routed += s.routed_rows;
    appends += s.appends_processed;
    EXPECT_EQ(s.queue_depth, 0u);  // quiesced
    EXPECT_TRUE(s.tick_latency_populated);
  }
  EXPECT_EQ(routed, rows_fed);
  EXPECT_EQ(appends, ticks);
  // Metrics merged by name: the tick counter equals the sum of shard ticks.
  bool found = false;
  for (const obs::MetricSample& m : snap.metrics) {
    if (m.name == "maintenance_view_ticks_total") {
      found = true;
      EXPECT_EQ(m.value, ticks * 2);  // two views per tick
    }
  }
  EXPECT_TRUE(found);
  // Per-view stats merged by name.
  ASSERT_EQ(snap.views.size(), 2u);
  uint64_t view_ticks = 0;
  for (const obs::ViewStatsSnapshot& v : snap.views) view_ticks += v.stats.ticks;
  EXPECT_EQ(view_ticks, ticks * 2);

  // All three exporters render the section and the JSON stays valid.
  const std::string text = obs::RenderText(snap);
  EXPECT_NE(text.find("sharding:"), std::string::npos);
  const std::string prom = obs::RenderPrometheus(snap);
  EXPECT_NE(prom.find("chronicle_shard_appends_processed_total{shard=\"3\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("chronicle_sharding_num_shards 4"), std::string::npos);
  const std::string json = obs::RenderJson(snap);
  EXPECT_TRUE(obs::ValidateJson(json).ok()) << json;
  EXPECT_NE(json.find("\"sharding\":{\"num_shards\":4"), std::string::npos);

  // A plain engine's snapshot renders the section as absent/null.
  obs::StatsSnapshot plain = db->engine(0).CollectStats();
  EXPECT_FALSE(plain.sharding.attached);
  EXPECT_NE(obs::RenderJson(plain).find("\"sharding\":null"),
            std::string::npos);
}

}  // namespace
}  // namespace chronicle
