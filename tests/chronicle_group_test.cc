#include "storage/chronicle_group.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema OneCol() { return Schema({{"x", DataType::kInt64}}); }

TEST(ChronicleGroupTest, CreateAndFind) {
  ChronicleGroup group("g");
  EXPECT_EQ(group.name(), "g");
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ChronicleId b = group.CreateChronicle("b", OneCol()).value();
  EXPECT_NE(a, b);
  EXPECT_EQ(group.num_chronicles(), 2u);
  EXPECT_EQ(group.FindChronicle("a").value(), a);
  EXPECT_TRUE(group.FindChronicle("zzz").status().IsNotFound());
  EXPECT_TRUE(group.GetChronicle(99).status().IsNotFound());
}

TEST(ChronicleGroupTest, DuplicateNameRejected) {
  ChronicleGroup group;
  ASSERT_TRUE(group.CreateChronicle("a", OneCol()).ok());
  EXPECT_TRUE(group.CreateChronicle("a", OneCol()).status().IsAlreadyExists());
}

TEST(ChronicleGroupTest, SequenceNumbersStrictlyIncrease) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  SeqNum prev = 0;
  for (int i = 0; i < 20; ++i) {
    AppendEvent event = group.Append(a, {Tuple{Value(i)}}).value();
    EXPECT_GT(event.sn, prev);
    prev = event.sn;
  }
  EXPECT_EQ(group.last_sn(), prev);
}

TEST(ChronicleGroupTest, SnDisciplineSharedAcrossGroup) {
  // "an insert into any chronicle in a chronicle group must have a sequence
  // number greater than the sequence number of any tuple in the group"
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ChronicleId b = group.CreateChronicle("b", OneCol()).value();
  SeqNum sn_a = group.Append(a, {Tuple{Value(1)}}).value().sn;
  SeqNum sn_b = group.Append(b, {Tuple{Value(2)}}).value().sn;
  EXPECT_GT(sn_b, sn_a);
}

TEST(ChronicleGroupTest, ExplicitSnMustExceedLast) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ASSERT_TRUE(group.AppendWithSeqNum(10, 1, {{a, {Tuple{Value(1)}}}}).ok());
  // Equal is rejected.
  EXPECT_TRUE(group.AppendWithSeqNum(10, 2, {{a, {Tuple{Value(2)}}}})
                  .status()
                  .IsOutOfRange());
  // Lower is rejected.
  EXPECT_TRUE(group.AppendWithSeqNum(5, 2, {{a, {Tuple{Value(2)}}}})
                  .status()
                  .IsOutOfRange());
  // Gaps are fine — sequence numbers need not be dense.
  EXPECT_TRUE(group.AppendWithSeqNum(100, 2, {{a, {Tuple{Value(3)}}}}).ok());
}

TEST(ChronicleGroupTest, ChrononMustNotRegress) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ASSERT_TRUE(group.Append(a, {Tuple{Value(1)}}, 100).ok());
  EXPECT_TRUE(
      group.Append(a, {Tuple{Value(2)}}, 99).status().IsOutOfRange());
  // Same chronon is fine (multiple ticks within one instant).
  EXPECT_TRUE(group.Append(a, {Tuple{Value(2)}}, 100).ok());
  EXPECT_EQ(group.last_chronon(), 100);
}

TEST(ChronicleGroupTest, MultiChronicleTickSharesSn) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ChronicleId b = group.CreateChronicle("b", OneCol()).value();
  AppendEvent event =
      group
          .AppendMulti({{a, {Tuple{Value(1)}}}, {b, {Tuple{Value(2)}}}},
                       /*chronon=*/5)
          .value();
  EXPECT_EQ(event.inserts.size(), 2u);
  EXPECT_EQ(group.GetChronicle(a).value()->last_sn(), event.sn);
  EXPECT_EQ(group.GetChronicle(b).value()->last_sn(), event.sn);
}

TEST(ChronicleGroupTest, InvalidBatchIsAtomic) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  ChronicleId b = group.CreateChronicle("b", OneCol()).value();
  // Second batch has a type error; nothing must be applied.
  Result<AppendEvent> result = group.AppendMulti(
      {{a, {Tuple{Value(1)}}}, {b, {Tuple{Value("wrong type")}}}}, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(group.GetChronicle(a).value()->total_appended(), 0u);
  EXPECT_EQ(group.GetChronicle(b).value()->total_appended(), 0u);
  EXPECT_EQ(group.last_sn(), 0u);
}

TEST(ChronicleGroupTest, EmptyEventRejected) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  EXPECT_TRUE(group.AppendMulti({}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(group.Append(a, {}).status().IsInvalidArgument());
}

TEST(ChronicleGroupTest, UnknownChronicleRejected) {
  ChronicleGroup group;
  EXPECT_TRUE(group.Append(3, {Tuple{Value(1)}}).status().IsNotFound());
}

TEST(ChronicleGroupTest, DefaultChrononAdvances) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  Chronon c1 = group.Append(a, {Tuple{Value(1)}}).value().chronon;
  Chronon c2 = group.Append(a, {Tuple{Value(2)}}).value().chronon;
  EXPECT_GT(c2, c1);
}

TEST(ChronicleGroupTest, EventCarriesInsertedTuples) {
  ChronicleGroup group;
  ChronicleId a = group.CreateChronicle("a", OneCol()).value();
  AppendEvent event =
      group.Append(a, {Tuple{Value(7)}, Tuple{Value(8)}}).value();
  ASSERT_EQ(event.inserts.size(), 1u);
  EXPECT_EQ(event.inserts[0].first, a);
  ASSERT_EQ(event.inserts[0].second.size(), 2u);
  EXPECT_EQ(event.inserts[0].second[1][0], Value(8));
}

}  // namespace
}  // namespace chronicle
