#include "cql/binder.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace cql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void Exec(const std::string& sql) {
    Result<ExecResult> result = Execute(&db_, sql);
    ASSERT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    last_ = std::move(result).value();
  }
  Status ExecError(const std::string& sql) {
    Result<ExecResult> result = Execute(&db_, sql);
    EXPECT_FALSE(result.ok()) << sql;
    return result.status();
  }

  ChronicleDatabase db_;
  ExecResult last_;
};

TEST_F(BinderTest, EndToEndBillingScenario) {
  Exec("CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64) "
       "RETAIN NONE");
  Exec("CREATE VIEW mins AS SELECT caller, SUM(minutes) AS total FROM calls "
       "GROUP BY caller");
  EXPECT_NE(last_.message.find("IM-Constant"), std::string::npos);

  Exec("INSERT INTO calls VALUES (1, 'NJ', 5), (1, 'NJ', 7), (2, 'NY', 3)");
  Exec("INSERT INTO calls VALUES (1, 'NJ', 10)");

  Exec("SELECT * FROM mins WHERE caller = 1");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0], (Tuple{Value(1), Value(22)}));

  Exec("SELECT total FROM mins WHERE caller = 2");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0], (Tuple{Value(3)}));
}

TEST_F(BinderTest, KeyJoinViewReportsLogR) {
  Exec("CREATE CHRONICLE flights (acct INT64, miles INT64)");
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Exec("INSERT INTO cust VALUES (1, 'NJ')");
  Exec("CREATE VIEW by_state AS SELECT state, SUM(miles) AS m FROM flights "
       "JOIN cust ON acct = acct GROUP BY state");
  EXPECT_NE(last_.message.find("IM-log(R)"), std::string::npos);
  Exec("INSERT INTO flights VALUES (1, 500)");
  Exec("SELECT * FROM by_state");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0], (Tuple{Value("NJ"), Value(500)}));
}

TEST_F(BinderTest, NonKeyJoinRejectedWithExplanation) {
  Exec("CREATE CHRONICLE flights (acct INT64, miles INT64)");
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Status st = ExecError(
      "CREATE VIEW v AS SELECT state, SUM(miles) AS m FROM flights "
      "JOIN cust ON acct = state GROUP BY state");
  EXPECT_TRUE(st.IsPlanError());
  EXPECT_NE(st.message().find("Definition 4.2"), std::string::npos);
}

TEST_F(BinderTest, CrossJoinViewReportsPolyR) {
  Exec("CREATE CHRONICLE c (x INT64)");
  Exec("CREATE RELATION r (y INT64) KEY y");
  Exec("CREATE VIEW v AS SELECT COUNT(*) AS n FROM c CROSS JOIN r");
  EXPECT_NE(last_.message.find("IM-R^k"), std::string::npos);
}

TEST_F(BinderTest, WherePushedBelowJoinActsAsGuard) {
  Exec("CREATE CHRONICLE calls (caller INT64, region STRING, minutes INT64)");
  Exec("CREATE VIEW nj AS SELECT caller, SUM(minutes) AS total FROM calls "
       "WHERE region = 'NJ' GROUP BY caller");
  Exec("INSERT INTO calls VALUES (1, 'NJ', 5)");
  Exec("INSERT INTO calls VALUES (1, 'TX', 50)");
  Exec("SELECT * FROM nj");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0], (Tuple{Value(1), Value(5)}));
}

TEST_F(BinderTest, WhereOnJoinedColumnAppliedAboveJoin) {
  Exec("CREATE CHRONICLE flights (acct INT64, miles INT64)");
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Exec("INSERT INTO cust VALUES (1, 'NJ'), (2, 'CA')");
  Exec("CREATE VIEW nj_miles AS SELECT acct, SUM(miles) AS m FROM flights "
       "JOIN cust ON acct = acct WHERE state = 'NJ' GROUP BY acct");
  Exec("INSERT INTO flights VALUES (1, 100)");
  Exec("INSERT INTO flights VALUES (2, 200)");
  Exec("SELECT * FROM nj_miles");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0], (Tuple{Value(1), Value(100)}));
}

TEST_F(BinderTest, DistinctProjectionView) {
  Exec("CREATE CHRONICLE calls (caller INT64, region STRING)");
  Exec("CREATE VIEW regions AS SELECT region FROM calls");
  Exec("INSERT INTO calls VALUES (1, 'NJ'), (2, 'NJ'), (3, 'NY')");
  Exec("SELECT * FROM regions");
  EXPECT_EQ(last_.rows.size(), 2u);
}

TEST_F(BinderTest, GlobalAggregateView) {
  Exec("CREATE CHRONICLE c (x DOUBLE)");
  Exec("CREATE VIEW stats AS SELECT COUNT(*) AS n, AVG(x) AS mean FROM c");
  Exec("INSERT INTO c VALUES (1.0), (2.0), (6.0)");
  Exec("SELECT * FROM stats");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0][0], Value(3));
  EXPECT_DOUBLE_EQ(last_.rows[0][1].dbl(), 3.0);
}

TEST_F(BinderTest, TieredDiscountView) {
  Exec("CREATE CHRONICLE calls (caller INT64, charge DOUBLE)");
  Exec("CREATE VIEW bill AS SELECT caller, TIERED(charge, 10:0.1, 25:0.2) AS "
       "owed FROM calls GROUP BY caller");
  Exec("INSERT INTO calls VALUES (1, 6.0)");
  Exec("INSERT INTO calls VALUES (1, 6.0)");
  Exec("SELECT owed FROM bill WHERE caller = 1");
  EXPECT_DOUBLE_EQ(last_.rows[0][0].dbl(), 12.0 * 0.9);
}

TEST_F(BinderTest, UpdateAndDeleteAreProactive) {
  Exec("CREATE CHRONICLE flights (acct INT64, miles INT64)");
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Exec("INSERT INTO cust VALUES (1, 'NJ')");
  Exec("CREATE VIEW by_state AS SELECT state, SUM(miles) AS m FROM flights "
       "JOIN cust ON acct = acct GROUP BY state");
  Exec("INSERT INTO flights VALUES (1, 100)");
  Exec("UPDATE cust SET state = 'CA' WHERE acct = 1");
  EXPECT_NE(last_.message.find("proactive"), std::string::npos);
  Exec("INSERT INTO flights VALUES (1, 50)");
  Exec("SELECT * FROM by_state");
  ASSERT_EQ(last_.rows.size(), 2u);  // NJ=100 and CA=50
  Exec("DELETE FROM cust WHERE acct = 1");
  Exec("SELECT * FROM cust");
  EXPECT_TRUE(last_.rows.empty());
}

TEST_F(BinderTest, SelectFromRelation) {
  Exec("CREATE RELATION cust (acct INT64, state STRING) KEY acct");
  Exec("INSERT INTO cust VALUES (1, 'NJ'), (2, 'CA')");
  Exec("SELECT state FROM cust WHERE acct = 2");
  ASSERT_EQ(last_.rows.size(), 1u);
  EXPECT_EQ(last_.rows[0][0], Value("CA"));
}

TEST_F(BinderTest, InsertAtChrononFeedsPeriodicMachinery) {
  Exec("CREATE CHRONICLE c (x INT64)");
  Exec("INSERT INTO c VALUES (1) AT 100");
  EXPECT_EQ(db_.group().last_chronon(), 100);
  Status st = ExecError("INSERT INTO c VALUES (2) AT 50");  // regression
  EXPECT_TRUE(st.IsOutOfRange());
}

TEST_F(BinderTest, PlanErrorsForBadViews) {
  Exec("CREATE CHRONICLE c (x INT64, y STRING)");
  EXPECT_TRUE(ExecError("CREATE VIEW v AS SELECT * FROM c").IsPlanError());
  EXPECT_TRUE(
      ExecError("CREATE VIEW v AS SELECT y, SUM(x) AS s FROM c").IsPlanError());
  EXPECT_TRUE(
      ExecError("CREATE VIEW v AS SELECT x FROM c GROUP BY x").IsPlanError());
  EXPECT_TRUE(ExecError("CREATE VIEW v AS SELECT x FROM missing").IsNotFound());
}

TEST_F(BinderTest, SelectRestrictions) {
  Exec("CREATE CHRONICLE c (x INT64)");
  Exec("CREATE RELATION r (y INT64) KEY y");
  EXPECT_TRUE(
      ExecError("SELECT SUM(x) FROM c").IsPlanError());  // aggregate select
  EXPECT_TRUE(ExecError("SELECT * FROM c JOIN r ON x = y").IsPlanError());
}

TEST_F(BinderTest, ScriptExecution) {
  Result<ExecResult> result = ExecuteScript(
      &db_,
      "CREATE CHRONICLE c (x INT64);"
      "CREATE VIEW n AS SELECT COUNT(*) AS cnt FROM c;"
      "INSERT INTO c VALUES (1), (2);"
      "SELECT * FROM n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value(2));
}

TEST_F(BinderTest, ScriptStopsAtFirstError) {
  Result<ExecResult> result = ExecuteScript(
      &db_,
      "CREATE CHRONICLE c (x INT64);"
      "INSERT INTO nonexistent VALUES (1);"
      "CREATE CHRONICLE d (x INT64)");
  EXPECT_FALSE(result.ok());
  // The third statement never ran.
  EXPECT_TRUE(db_.group().FindChronicle("d").status().IsNotFound());
}

}  // namespace
}  // namespace cql
}  // namespace chronicle
