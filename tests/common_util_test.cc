// Tests for the small common utilities: Stopwatch, MemoryMeter,
// FormatBytes.

#include <gtest/gtest.h>

#include <thread>

#include "common/stopwatch.h"
#include "common/tracking_allocator.h"

namespace chronicle {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  int64_t nanos = watch.ElapsedNanos();
  EXPECT_GE(nanos, 4000000);     // at least ~4ms
  EXPECT_LT(nanos, 5000000000);  // sanity: under 5s
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
  EXPECT_GT(watch.ElapsedMicros(), watch.ElapsedMillis());
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);
}

TEST(StopwatchTest, StartResetsOrigin) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  watch.Start();
  EXPECT_LT(watch.ElapsedNanos(), 3000000);
}

TEST(StopwatchTest, Monotone) {
  Stopwatch watch;
  int64_t prev = watch.ElapsedNanos();
  for (int i = 0; i < 100; ++i) {
    int64_t now = watch.ElapsedNanos();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(MemoryMeterTest, TracksCurrentAndPeak) {
  MemoryMeter meter;
  EXPECT_EQ(meter.current(), 0u);
  meter.Add(100);
  meter.Add(50);
  EXPECT_EQ(meter.current(), 150u);
  EXPECT_EQ(meter.peak(), 150u);
  meter.Sub(120);
  EXPECT_EQ(meter.current(), 30u);
  EXPECT_EQ(meter.peak(), 150u);  // peak sticks
  meter.Add(10);
  EXPECT_EQ(meter.peak(), 150u);
}

TEST(MemoryMeterTest, SubClampsAtZero) {
  MemoryMeter meter;
  meter.Add(10);
  meter.Sub(100);
  EXPECT_EQ(meter.current(), 0u);
}

TEST(MemoryMeterTest, ResetClearsBoth) {
  MemoryMeter meter;
  meter.Add(10);
  meter.Reset();
  EXPECT_EQ(meter.current(), 0u);
  EXPECT_EQ(meter.peak(), 0u);
}

TEST(FormatBytesTest, AdaptiveUnits) {
  EXPECT_EQ(FormatBytes(0), "0.0 B");
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
  EXPECT_EQ(FormatBytes(size_t{5} * 1024 * 1024 * 1024), "5.0 GiB");
  // Beyond GiB it stays in GiB.
  EXPECT_EQ(FormatBytes(size_t{2048} * 1024 * 1024 * 1024), "2048.0 GiB");
}

}  // namespace
}  // namespace chronicle
