#include "algebra/complexity.h"

#include <gtest/gtest.h>

#include "storage/relation.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

CaExprPtr Scan() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

TEST(ComplexityTest, PureChronicleExpressionIsCa1ImConstant) {
  CaExprPtr plan =
      CaExpr::Select(Scan(), Gt(Col("minutes"), Lit(Value(0)))).value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kCa1);
  EXPECT_EQ(report.im_class, ImClass::kImConstant);
  EXPECT_EQ(report.num_joins, 0);
  EXPECT_EQ(report.num_unions, 0);
}

TEST(ComplexityTest, KeyJoinIsCaJoinImLogR) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  CaExprPtr plan = CaExpr::RelKeyJoin(Scan(), &rel, "caller").value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kCaJoin);
  EXPECT_EQ(report.im_class, ImClass::kImLogR);
  EXPECT_EQ(report.num_joins, 1);
  EXPECT_EQ(report.num_rel_keyjoin, 1);
}

TEST(ComplexityTest, RelCrossIsFullCaImPolyR) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  CaExprPtr plan = CaExpr::RelCross(Scan(), &rel).value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kCaFull);
  EXPECT_EQ(report.im_class, ImClass::kImPolyR);
  EXPECT_EQ(report.num_rel_cross, 1);
}

TEST(ComplexityTest, CrossDominatesKeyJoin) {
  // An expression with both a key join and a cross product is only CA.
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  CaExprPtr plan = CaExpr::RelCross(
                       CaExpr::RelKeyJoin(Scan(), &rel, "caller").value(), &rel)
                       .value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kCaFull);
  EXPECT_EQ(report.num_joins, 2);
}

TEST(ComplexityTest, ForbiddenConstructIsNotCaImPolyC) {
  CaExprPtr plan = CaExpr::ChronicleCross(Scan(), Scan()).value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kNotCa);
  EXPECT_EQ(report.im_class, ImClass::kImPolyC);
  EXPECT_FALSE(report.explanation.empty());
}

TEST(ComplexityTest, CountsUnionsAndJoins) {
  // ((a ∪ a) ∪ a) ⋈_SN a  → u=2, j=1
  CaExprPtr u1 = CaExpr::Union(Scan(), Scan()).value();
  CaExprPtr u2 = CaExpr::Union(u1, Scan()).value();
  CaExprPtr plan = CaExpr::SeqJoin(u2, Scan()).value();
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.num_unions, 2);
  EXPECT_EQ(report.num_joins, 1);
  // SN-equijoins alone do not require relation access.
  EXPECT_EQ(report.ca_class, CaClass::kCa1);
}

TEST(ComplexityTest, ClassNames) {
  EXPECT_STREQ(CaClassToString(CaClass::kCa1), "CA_1");
  EXPECT_STREQ(CaClassToString(CaClass::kCaJoin), "CA_join");
  EXPECT_STREQ(ImClassToString(ImClass::kImConstant), "IM-Constant");
  EXPECT_STREQ(ImClassToString(ImClass::kImLogR), "IM-log(R)");
  EXPECT_STREQ(ImClassToString(ImClass::kImPolyR), "IM-R^k");
  EXPECT_STREQ(ImClassToString(ImClass::kImPolyC), "IM-C^k");
}

TEST(ComplexityTest, ReportToStringMentionsClassAndParameters) {
  CaExprPtr plan = CaExpr::Union(Scan(), Scan()).value();
  std::string repr = AnalyzeComplexity(*plan).ToString();
  EXPECT_NE(repr.find("CA_1"), std::string::npos);
  EXPECT_NE(repr.find("u=1"), std::string::npos);
}

// The §3 hierarchy: IM-Constant ⊂ IM-log(R) ⊂ IM-R^k ⊂ IM-C^k.
TEST(ComplexityTest, ImClassOrderingReflectsHierarchy) {
  EXPECT_LT(static_cast<int>(ImClass::kImConstant),
            static_cast<int>(ImClass::kImLogR));
  EXPECT_LT(static_cast<int>(ImClass::kImLogR),
            static_cast<int>(ImClass::kImPolyR));
  EXPECT_LT(static_cast<int>(ImClass::kImPolyR),
            static_cast<int>(ImClass::kImPolyC));
}

}  // namespace
}  // namespace chronicle
