#include "algebra/delta_engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/relation.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

CaExprPtr ScanCalls() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

AppendEvent Event(SeqNum sn, std::vector<Tuple> tuples, ChronicleId id = 0,
                  Chronon chronon = 0) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = chronon == 0 ? static_cast<Chronon>(sn) : chronon;
  event.inserts.emplace_back(id, std::move(tuples));
  return event;
}

std::vector<Tuple> Payloads(const std::vector<ChronicleRow>& rows) {
  std::vector<Tuple> out;
  for (const ChronicleRow& row : rows) out.push_back(row.values);
  std::sort(out.begin(), out.end(),
            [](const Tuple& a, const Tuple& b) { return TupleCompare(a, b) < 0; });
  return out;
}

TEST(DeltaEngineTest, ScanPassesThroughAppendedTuples) {
  DeltaEngine engine;
  auto delta =
      engine.ComputeDelta(*ScanCalls(), Event(5, {Call(1, "NJ", 10)})).value();
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].sn, 5u);
  EXPECT_EQ(delta[0].values, Call(1, "NJ", 10));
}

TEST(DeltaEngineTest, ScanIgnoresOtherChronicles) {
  DeltaEngine engine;
  auto delta = engine
                   .ComputeDelta(*ScanCalls(),
                                 Event(5, {Call(1, "NJ", 10)}, /*id=*/3))
                   .value();
  EXPECT_TRUE(delta.empty());
}

TEST(DeltaEngineTest, ScanDeduplicatesWithinTick) {
  // Set semantics: the same (sn, payload) row appears once.
  DeltaEngine engine;
  auto delta = engine
                   .ComputeDelta(*ScanCalls(),
                                 Event(5, {Call(1, "NJ", 10), Call(1, "NJ", 10),
                                           Call(2, "NY", 3)}))
                   .value();
  EXPECT_EQ(delta.size(), 2u);
}

TEST(DeltaEngineTest, SelectFiltersByPredicate) {
  DeltaEngine engine;
  CaExprPtr plan =
      CaExpr::Select(ScanCalls(), Ge(Col("minutes"), Lit(Value(10)))).value();
  auto delta =
      engine
          .ComputeDelta(*plan, Event(5, {Call(1, "NJ", 10), Call(2, "NY", 3)}))
          .value();
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].values[0], Value(1));
}

TEST(DeltaEngineTest, SelectOnSeqNum) {
  DeltaEngine engine;
  CaExprPtr plan =
      CaExpr::Select(ScanCalls(), Ge(ScalarExpr::SeqNumRef(), Lit(Value(100))))
          .value();
  EXPECT_TRUE(
      engine.ComputeDelta(*plan, Event(99, {Call(1, "NJ", 1)})).value().empty());
  EXPECT_EQ(
      engine.ComputeDelta(*plan, Event(100, {Call(1, "NJ", 1)})).value().size(),
      1u);
}

TEST(DeltaEngineTest, ProjectMapsAndDedupes) {
  DeltaEngine engine;
  CaExprPtr plan = CaExpr::Project(ScanCalls(), {"region"}).value();
  auto delta = engine
                   .ComputeDelta(*plan, Event(7, {Call(1, "NJ", 10),
                                                  Call(2, "NJ", 20),
                                                  Call(3, "NY", 5)}))
                   .value();
  EXPECT_EQ(delta.size(), 2u);  // NJ collapses
}

TEST(DeltaEngineTest, UnionDedupesAcrossBranches) {
  DeltaEngine engine;
  CaExprPtr scan = ScanCalls();
  CaExprPtr nj = CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  CaExprPtr big = CaExpr::Select(scan, Ge(Col("minutes"), Lit(Value(10)))).value();
  CaExprPtr plan = CaExpr::Union(nj, big).value();
  // (1,NJ,15) satisfies both branches but must appear once.
  auto delta =
      engine
          .ComputeDelta(*plan, Event(9, {Call(1, "NJ", 15), Call(2, "NY", 20)}))
          .value();
  EXPECT_EQ(delta.size(), 2u);
}

TEST(DeltaEngineTest, DifferenceWithinTick) {
  DeltaEngine engine;
  CaExprPtr scan = ScanCalls();
  CaExprPtr nj = CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  CaExprPtr plan = CaExpr::Difference(scan, nj).value();  // non-NJ calls
  auto delta =
      engine
          .ComputeDelta(*plan, Event(3, {Call(1, "NJ", 5), Call(2, "NY", 7)}))
          .value();
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].values[1], Value("NY"));
}

TEST(DeltaEngineTest, SeqJoinPairsWithinTick) {
  // Two chronicles receiving tuples under one SN join pairwise.
  Schema left_schema({{"x", DataType::kInt64}});
  Schema right_schema({{"y", DataType::kInt64}});
  CaExprPtr left = CaExpr::Scan(0, "l", left_schema).value();
  CaExprPtr right = CaExpr::Scan(1, "r", right_schema).value();
  CaExprPtr plan = CaExpr::SeqJoin(left, right).value();

  AppendEvent event;
  event.sn = 4;
  event.chronon = 4;
  event.inserts.emplace_back(
      0, std::vector<Tuple>{Tuple{Value(1)}, Tuple{Value(2)}});
  event.inserts.emplace_back(1, std::vector<Tuple>{Tuple{Value(10)}});

  DeltaEngine engine;
  auto delta = engine.ComputeDelta(*plan, event).value();
  ASSERT_EQ(delta.size(), 2u);
  std::vector<Tuple> payloads = Payloads(delta);
  EXPECT_EQ(payloads[0], (Tuple{Value(1), Value(10)}));
  EXPECT_EQ(payloads[1], (Tuple{Value(2), Value(10)}));
}

TEST(DeltaEngineTest, SeqJoinEmptyWhenOneSideSilent) {
  Schema s({{"x", DataType::kInt64}});
  CaExprPtr plan = CaExpr::SeqJoin(CaExpr::Scan(0, "l", s).value(),
                                   CaExpr::Scan(1, "r", s).value())
                       .value();
  DeltaEngine engine;
  // Only chronicle 0 receives data: the join delta must be empty.
  auto delta = engine.ComputeDelta(*plan, Event(4, {Tuple{Value(1)}})).value();
  EXPECT_TRUE(delta.empty());
}

TEST(DeltaEngineTest, GroupBySeqAggregatesWithinTick) {
  DeltaEngine engine;
  CaExprPtr plan =
      CaExpr::GroupBySeq(ScanCalls(), {"region"},
                         {AggSpec::Sum("minutes", "total"), AggSpec::Count()})
          .value();
  auto delta = engine
                   .ComputeDelta(*plan, Event(11, {Call(1, "NJ", 5),
                                                   Call(2, "NJ", 7),
                                                   Call(3, "NY", 1)}))
                   .value();
  std::vector<Tuple> payloads = Payloads(delta);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], (Tuple{Value("NJ"), Value(12), Value(2)}));
  EXPECT_EQ(payloads[1], (Tuple{Value("NY"), Value(1), Value(1)}));
}

TEST(DeltaEngineTest, RelKeyJoinLooksUpCurrentVersion) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  ASSERT_TRUE(rel.Insert(Tuple{Value(1), Value("NJ")}).ok());
  CaExprPtr plan = CaExpr::RelKeyJoin(ScanCalls(), &rel, "caller").value();

  DeltaEngine engine;
  DeltaStats stats;
  auto delta =
      engine
          .ComputeDelta(*plan, Event(2, {Call(1, "x", 5), Call(9, "x", 5)}),
                        &stats)
          .value();
  // caller 9 has no customer row: inner join drops it.
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].values, (Tuple{Value(1), Value("x"), Value(5), Value(1),
                                    Value("NJ")}));
  EXPECT_EQ(stats.relation_lookups, 2u);

  // Proactive update: future ticks see the new state.
  ASSERT_TRUE(rel.UpdateByKey(Value(1), Tuple{Value(1), Value("CA")}).ok());
  auto delta2 = engine.ComputeDelta(*plan, Event(3, {Call(1, "x", 5)})).value();
  ASSERT_EQ(delta2.size(), 1u);
  EXPECT_EQ(delta2[0].values[4], Value("CA"));
}

TEST(DeltaEngineTest, RelCrossExpandsByRelationSize) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple{Value(i), Value("S")}).ok());
  }
  CaExprPtr plan = CaExpr::RelCross(ScanCalls(), &rel).value();
  DeltaEngine engine;
  DeltaStats stats;
  auto delta = engine
                   .ComputeDelta(*plan,
                                 Event(2, {Call(1, "x", 5), Call(2, "y", 6)}),
                                 &stats)
                   .value();
  EXPECT_EQ(delta.size(), 8u);  // 2 tuples × |R| = 4
  EXPECT_EQ(stats.relation_rows_scanned, 8u);
  EXPECT_GE(stats.max_intermediate_rows, 8u);
}

TEST(DeltaEngineTest, RefusesForbiddenOperators) {
  DeltaEngine engine;
  CaExprPtr cross = CaExpr::ChronicleCross(ScanCalls(), ScanCalls()).value();
  Status st =
      engine.ComputeDelta(*cross, Event(1, {Call(1, "NJ", 1)})).status();
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("Theorem 4.3"), std::string::npos);

  CaExprPtr drop = CaExpr::ProjectDropSn(ScanCalls(), {"caller"}).value();
  EXPECT_FALSE(engine.ComputeDelta(*drop, Event(1, {Call(1, "NJ", 1)})).ok());
}

TEST(DeltaEngineTest, ComplexPlanEndToEnd) {
  // σ(minutes>0) → key-join cust → groupby(region-of-customer) per tick.
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  ASSERT_TRUE(rel.Insert(Tuple{Value(1), Value("NJ")}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value(2), Value("NJ")}).ok());
  ASSERT_TRUE(rel.Insert(Tuple{Value(3), Value("NY")}).ok());

  CaExprPtr plan =
      CaExpr::GroupBySeq(
          CaExpr::RelKeyJoin(
              CaExpr::Select(ScanCalls(), Gt(Col("minutes"), Lit(Value(0))))
                  .value(),
              &rel, "caller")
              .value(),
          {"state"}, {AggSpec::Sum("minutes", "mins")})
          .value();

  DeltaEngine engine;
  auto delta = engine
                   .ComputeDelta(*plan, Event(6, {Call(1, "x", 5),
                                                  Call(2, "x", 6),
                                                  Call(3, "x", 7),
                                                  Call(1, "x", 0)}))
                   .value();
  std::vector<Tuple> payloads = Payloads(delta);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], (Tuple{Value("NJ"), Value(11)}));
  EXPECT_EQ(payloads[1], (Tuple{Value("NY"), Value(7)}));
}

TEST(DeltaEngineTest, StatsTrackIntermediateSizes) {
  DeltaEngine engine;
  CaExprPtr plan = CaExpr::Project(ScanCalls(), {"region"}).value();
  DeltaStats stats;
  ASSERT_TRUE(engine
                  .ComputeDelta(*plan,
                                Event(1, {Call(1, "NJ", 1), Call(2, "NY", 2)}),
                                &stats)
                  .ok());
  EXPECT_EQ(stats.max_intermediate_rows, 2u);
  EXPECT_EQ(stats.total_rows_produced, 4u);  // scan(2) + project(2)
}

}  // namespace
}  // namespace chronicle
