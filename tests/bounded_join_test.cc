// Tests for RelBoundedJoin — the general Definition 4.2 admission rule:
// an equijoin with a declared constant bound on matching relation tuples,
// served by a secondary index.

#include <gtest/gtest.h>

#include "algebra/complexity.h"
#include "common/random.h"
#include "algebra/delta_engine.h"
#include "algebra/validate.h"
#include "baseline/naive_engine.h"
#include "views/persistent_view.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"plan_id", DataType::kInt64},
                 {"minutes", DataType::kInt64}});
}

// plan feature table: plan_id is NOT unique — each plan has up to 2
// feature rows — but an integrity constraint bounds matches at 2.
Schema FeatureSchema() {
  return Schema({{"plan_id", DataType::kInt64},
                 {"feature", DataType::kString},
                 {"discount", DataType::kDouble}});
}

Relation MakeFeatures() {
  Relation rel = Relation::Make("features", FeatureSchema()).value();
  EXPECT_TRUE(rel.CreateSecondaryIndex("plan_id").ok());
  EXPECT_TRUE(rel.Insert(Tuple{Value(1), Value("intl"), Value(0.1)}).ok());
  EXPECT_TRUE(rel.Insert(Tuple{Value(1), Value("data"), Value(0.05)}).ok());
  EXPECT_TRUE(rel.Insert(Tuple{Value(2), Value("data"), Value(0.02)}).ok());
  return rel;
}

CaExprPtr ScanCalls() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

AppendEvent Event(SeqNum sn, std::vector<Tuple> tuples) {
  AppendEvent event;
  event.sn = sn;
  event.chronon = static_cast<Chronon>(sn);
  event.inserts.emplace_back(0, std::move(tuples));
  return event;
}

TEST(BoundedJoinTest, FactoryValidation) {
  Relation features = MakeFeatures();
  EXPECT_TRUE(
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "plan_id", 2)
          .ok());
  // No secondary index on the join column.
  Relation no_index = Relation::Make("f", FeatureSchema()).value();
  Result<CaExprPtr> bad =
      CaExpr::RelBoundedJoin(ScanCalls(), &no_index, "plan_id", "plan_id", 2);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("secondary index"), std::string::npos);
  // Zero bound.
  EXPECT_FALSE(
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "plan_id", 0)
          .ok());
  // Unknown columns.
  EXPECT_FALSE(
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "nope", "plan_id", 2).ok());
  EXPECT_FALSE(
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "nope", 2).ok());
}

TEST(BoundedJoinTest, ClassifiedAsCaJoin) {
  Relation features = MakeFeatures();
  CaExprPtr plan =
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "plan_id", 2)
          .value();
  EXPECT_TRUE(ValidateChronicleAlgebra(*plan).ok());
  ComplexityReport report = AnalyzeComplexity(*plan);
  EXPECT_EQ(report.ca_class, CaClass::kCaJoin);
  EXPECT_EQ(report.im_class, ImClass::kImLogR);
  EXPECT_EQ(report.num_joins, 1);
}

TEST(BoundedJoinTest, DeltaExpandsByMatches) {
  Relation features = MakeFeatures();
  CaExprPtr plan =
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "plan_id", 2)
          .value();
  DeltaEngine engine;
  DeltaStats stats;
  auto delta = engine
                   .ComputeDelta(*plan,
                                 Event(1, {Tuple{Value(7), Value(1), Value(5)},
                                           Tuple{Value(8), Value(2), Value(6)},
                                           Tuple{Value(9), Value(99), Value(7)}}),
                                 &stats)
                   .value();
  // plan 1 -> 2 features, plan 2 -> 1, plan 99 -> 0.
  EXPECT_EQ(delta.size(), 3u);
  EXPECT_EQ(stats.relation_lookups, 3u);
  for (const ChronicleRow& row : delta) {
    EXPECT_EQ(row.values.size(), 6u);  // 3 chronicle + 3 relation columns
  }
}

TEST(BoundedJoinTest, BoundViolationIsIntegrityError) {
  Relation features = MakeFeatures();
  CaExprPtr plan =
      CaExpr::RelBoundedJoin(ScanCalls(), &features, "plan_id", "plan_id", 2)
          .value();
  // Violate the constraint: plan 1 now has 3 feature rows.
  ASSERT_TRUE(
      features.Insert(Tuple{Value(1), Value("evening"), Value(0.01)}).ok());
  DeltaEngine engine;
  Status st = engine
                  .ComputeDelta(*plan,
                                Event(1, {Tuple{Value(7), Value(1), Value(5)}}))
                  .status();
  ASSERT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("Definition 4.2"), std::string::npos);
}

TEST(BoundedJoinTest, MatchesOracleRecomputation) {
  ChronicleGroup group;
  ChronicleId calls = group.CreateChronicle("calls", CallSchema()).value();
  Relation features = MakeFeatures();
  CaExprPtr plan =
      CaExpr::RelBoundedJoin(
          CaExpr::Scan(*group.GetChronicle(calls).value()).value(), &features,
          "plan_id", "plan_id", 2)
          .value();
  SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"feature"},
                                          {AggSpec::Sum("minutes", "m"),
                                           AggSpec::Count("n")})
                         .value();
  auto view = PersistentView::Make(0, "by_feature", plan, spec).value();

  DeltaEngine engine;
  Rng rng(5);
  for (int tick = 0; tick < 100; ++tick) {
    AppendEvent event =
        group
            .Append(calls, {Tuple{Value(static_cast<int64_t>(rng.Uniform(20))),
                                  Value(static_cast<int64_t>(rng.Uniform(4))),
                                  Value(static_cast<int64_t>(rng.Uniform(60)))}})
            .value();
    ASSERT_TRUE(view->ApplyDelta(engine.ComputeDelta(*plan, event).value()).ok());
  }

  NaiveEngine oracle(&group);
  std::vector<Tuple> expected = oracle.EvaluateSummary(*plan, spec).value();
  std::vector<Tuple> actual;
  ASSERT_TRUE(view->Scan([&](const Tuple& row) { actual.push_back(row); }).ok());
  SortTuples(&actual);
  EXPECT_EQ(actual, expected);
}

TEST(BoundedJoinTest, SeesCurrentRelationVersion) {
  ChronicleGroup group;
  ChronicleId calls = group.CreateChronicle("calls", CallSchema()).value();
  Relation features = MakeFeatures();
  CaExprPtr plan =
      CaExpr::RelBoundedJoin(
          CaExpr::Scan(*group.GetChronicle(calls).value()).value(), &features,
          "plan_id", "plan_id", 2)
          .value();
  DeltaEngine engine;

  AppendEvent e1 =
      group.Append(calls, {Tuple{Value(1), Value(2), Value(5)}}).value();
  EXPECT_EQ(engine.ComputeDelta(*plan, e1).value().size(), 1u);

  // Proactive feature addition for plan 2: future ticks see both rows.
  ASSERT_TRUE(features.Insert(Tuple{Value(2), Value("intl"), Value(0.2)}).ok());
  AppendEvent e2 =
      group.Append(calls, {Tuple{Value(1), Value(2), Value(5)}}).value();
  EXPECT_EQ(engine.ComputeDelta(*plan, e2).value().size(), 2u);
}

}  // namespace
}  // namespace chronicle
