#include "common/histogram.h"

#include "common/random.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "views/view_manager.h"

namespace chronicle {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.PercentileNanos(0.5), 0);
  EXPECT_EQ(h.MinNanos(), 0);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(HistogramTest, BasicStatistics) {
  LatencyHistogram h;
  for (int64_t v : {100, 200, 300, 400}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 250.0);
  EXPECT_EQ(h.MinNanos(), 100);
  EXPECT_EQ(h.MaxNanos(), 400);
}

TEST(HistogramTest, PercentilesAreBucketUpperBounds) {
  LatencyHistogram h;
  // 99 samples at ~1us, 1 sample at ~1ms.
  for (int i = 0; i < 99; ++i) h.Record(1000);
  h.Record(1000000);
  // p50 lands in the bucket containing 1000: [1024) upper bound is 1024.
  EXPECT_LE(h.PercentileNanos(0.5), 2048);
  EXPECT_GE(h.PercentileNanos(0.5), 1000);
  // p100 reaches the millisecond bucket.
  EXPECT_GE(h.PercentileNanos(1.0), 1000000);
}

TEST(HistogramTest, PercentileMonotoneInQ) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1000000)));
  }
  int64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    int64_t p = h.PercentileNanos(q);
    EXPECT_GE(p, prev) << q;
    prev = p;
  }
}

TEST(HistogramTest, NegativeClampsAndHugeValuesSaturate) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.MinNanos(), 0);
  h.Record(int64_t{1} << 62);  // beyond the last bucket bound
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MaxNanos(), int64_t{1} << 62);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(HistogramTest, ToStringMentionsStats) {
  LatencyHistogram h;
  h.Record(1500);
  std::string repr = h.ToString();
  EXPECT_NE(repr.find("n=1"), std::string::npos);
  EXPECT_NE(repr.find("p99"), std::string::npos);
}

// --- Merge edge cases ---

TEST(HistogramMergeTest, EmptyIntoEmptyStaysEmpty) {
  LatencyHistogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.SumNanos(), 0.0);
  EXPECT_EQ(a.MinNanos(), 0);
  EXPECT_EQ(a.MaxNanos(), 0);
  EXPECT_EQ(a.PercentileNanos(0.99), 0);
  for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket(i), 0u) << "bucket " << i;
  }
}

TEST(HistogramMergeTest, EmptyIntoPopulatedIsIdentity) {
  LatencyHistogram a, empty;
  for (int64_t v : {100, 2000, 30000}) a.Record(v);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.SumNanos(), 32100.0);
  EXPECT_EQ(a.MinNanos(), 100);
  EXPECT_EQ(a.MaxNanos(), 30000);
  // And the reverse: merging into a fresh histogram copies min/max even
  // though the destination never Record()ed (its min must not stick at 0).
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_EQ(empty.MinNanos(), 100);
  EXPECT_EQ(empty.MaxNanos(), 30000);
}

TEST(HistogramMergeTest, SaturatedTopBucketSurvivesMerge) {
  // INT64_MAX-scale samples land in the unbounded top bucket; the merge
  // must fold those counts without overflow or bucket drift.
  const int top = LatencyHistogram::kBuckets - 1;
  LatencyHistogram a, b;
  constexpr int64_t kHuge = std::numeric_limits<int64_t>::max();
  for (int i = 0; i < 3; ++i) a.Record(kHuge);
  for (int i = 0; i < 5; ++i) b.Record(kHuge - 1);
  a.Merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.bucket(top), 8u);
  EXPECT_EQ(a.MaxNanos(), kHuge);
  EXPECT_EQ(a.PercentileNanos(0.5), LatencyHistogram::BucketUpperBound(top));
  EXPECT_EQ(a.PercentileNanos(0.5), kHuge);  // top bound IS INT64_MAX
}

TEST(HistogramMergeTest, MergeAfterMergeMatchesDirectRecording) {
  // ((a ⊕ b) ⊕ c) must equal recording every sample into one histogram —
  // the obs registry merges per-worker shards in whatever order the reader
  // encounters them, so the fold has to be associative in all stats.
  Rng rng(77);
  std::vector<int64_t> samples[3];
  LatencyHistogram parts[3], all;
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < 50; ++i) {
      const int64_t v = static_cast<int64_t>(rng.Uniform(1u << 20));
      parts[p].Record(v);
      all.Record(v);
    }
  }
  LatencyHistogram left;  // (empty ⊕ a) ⊕ b ⊕ c
  left.Merge(parts[0]);
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  LatencyHistogram right;  // empty ⊕ (b ⊕ c ⊕ a), a different association
  LatencyHistogram bc;
  bc.Merge(parts[1]);
  bc.Merge(parts[2]);
  bc.Merge(parts[0]);
  right.Merge(bc);
  for (const LatencyHistogram& h : {left, right}) {
    EXPECT_EQ(h.count(), all.count());
    EXPECT_DOUBLE_EQ(h.SumNanos(), all.SumNanos());
    EXPECT_EQ(h.MinNanos(), all.MinNanos());
    EXPECT_EQ(h.MaxNanos(), all.MaxNanos());
    EXPECT_EQ(h.PercentileNanos(0.5), all.PercentileNanos(0.5));
    EXPECT_EQ(h.PercentileNanos(0.99), all.PercentileNanos(0.99));
    for (int i = 0; i < LatencyHistogram::kBuckets; ++i) {
      EXPECT_EQ(h.bucket(i), all.bucket(i)) << "bucket " << i;
    }
  }
}

TEST(ViewProfilingTest, HistogramPopulatedWhenEnabled) {
  Schema schema({{"x", DataType::kInt64}});
  CaExprPtr scan = CaExpr::Scan(0, "c", schema).value();
  SummarySpec spec =
      SummarySpec::GroupBy(schema, {}, {AggSpec::Count("n")}).value();

  ViewManager manager;
  ASSERT_TRUE(
      manager.AddView(PersistentView::Make(0, "v", scan, spec).value()).ok());

  AppendEvent event;
  event.sn = 1;
  event.chronon = 1;
  event.inserts.emplace_back(0, std::vector<Tuple>{Tuple{Value(1)}});

  // Off by default: nothing recorded.
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  EXPECT_EQ(manager.GetViewLatency("v").value()->count(), 0u);

  manager.set_profiling(true);
  event.sn = 2;
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  event.sn = 3;
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  const LatencyHistogram* latency = manager.GetViewLatency("v").value();
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_GT(latency->MaxNanos(), 0);
  EXPECT_TRUE(manager.GetViewLatency("nope").status().IsNotFound());
}

}  // namespace
}  // namespace chronicle
