#include "common/histogram.h"

#include "common/random.h"

#include <gtest/gtest.h>

#include "views/view_manager.h"

namespace chronicle {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 0.0);
  EXPECT_EQ(h.PercentileNanos(0.5), 0);
  EXPECT_EQ(h.MinNanos(), 0);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(HistogramTest, BasicStatistics) {
  LatencyHistogram h;
  for (int64_t v : {100, 200, 300, 400}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 250.0);
  EXPECT_EQ(h.MinNanos(), 100);
  EXPECT_EQ(h.MaxNanos(), 400);
}

TEST(HistogramTest, PercentilesAreBucketUpperBounds) {
  LatencyHistogram h;
  // 99 samples at ~1us, 1 sample at ~1ms.
  for (int i = 0; i < 99; ++i) h.Record(1000);
  h.Record(1000000);
  // p50 lands in the bucket containing 1000: [1024) upper bound is 1024.
  EXPECT_LE(h.PercentileNanos(0.5), 2048);
  EXPECT_GE(h.PercentileNanos(0.5), 1000);
  // p100 reaches the millisecond bucket.
  EXPECT_GE(h.PercentileNanos(1.0), 1000000);
}

TEST(HistogramTest, PercentileMonotoneInQ) {
  LatencyHistogram h;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    h.Record(static_cast<int64_t>(rng.Uniform(1000000)));
  }
  int64_t prev = 0;
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    int64_t p = h.PercentileNanos(q);
    EXPECT_GE(p, prev) << q;
    prev = p;
  }
}

TEST(HistogramTest, NegativeClampsAndHugeValuesSaturate) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.MinNanos(), 0);
  h.Record(int64_t{1} << 62);  // beyond the last bucket bound
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.MaxNanos(), int64_t{1} << 62);
}

TEST(HistogramTest, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.MaxNanos(), 0);
}

TEST(HistogramTest, ToStringMentionsStats) {
  LatencyHistogram h;
  h.Record(1500);
  std::string repr = h.ToString();
  EXPECT_NE(repr.find("n=1"), std::string::npos);
  EXPECT_NE(repr.find("p99"), std::string::npos);
}

TEST(ViewProfilingTest, HistogramPopulatedWhenEnabled) {
  Schema schema({{"x", DataType::kInt64}});
  CaExprPtr scan = CaExpr::Scan(0, "c", schema).value();
  SummarySpec spec =
      SummarySpec::GroupBy(schema, {}, {AggSpec::Count("n")}).value();

  ViewManager manager;
  ASSERT_TRUE(
      manager.AddView(PersistentView::Make(0, "v", scan, spec).value()).ok());

  AppendEvent event;
  event.sn = 1;
  event.chronon = 1;
  event.inserts.emplace_back(0, std::vector<Tuple>{Tuple{Value(1)}});

  // Off by default: nothing recorded.
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  EXPECT_EQ(manager.GetViewLatency("v").value()->count(), 0u);

  manager.set_profiling(true);
  event.sn = 2;
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  event.sn = 3;
  ASSERT_TRUE(manager.ProcessAppend(event).ok());
  const LatencyHistogram* latency = manager.GetViewLatency("v").value();
  EXPECT_EQ(latency->count(), 2u);
  EXPECT_GT(latency->MaxNanos(), 0);
  EXPECT_TRUE(manager.GetViewLatency("nope").status().IsNotFound());
}

}  // namespace
}  // namespace chronicle
