#include <gtest/gtest.h>

#include "workload/banking.h"
#include "workload/call_records.h"
#include "workload/flyer.h"
#include "workload/stock.h"

namespace chronicle {
namespace {

TEST(CallRecordsTest, RecordsMatchSchema) {
  CallRecordGenerator gen;
  Schema schema = CallRecordGenerator::RecordSchema();
  for (const Tuple& t : gen.NextBatch(200)) {
    EXPECT_TRUE(ValidateTuple(schema, t).ok());
    EXPECT_GE(t[2].int64(), 1);
    EXPECT_LE(t[2].int64(), gen.options().max_minutes);
    EXPECT_DOUBLE_EQ(t[3].dbl(),
                     static_cast<double>(t[2].int64()) *
                         gen.options().rate_per_minute);
  }
}

TEST(CallRecordsTest, DeterministicForSeed) {
  CallRecordOptions options;
  options.seed = 5;
  CallRecordGenerator a(options), b(options);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(CallRecordsTest, CallersStayInRange) {
  CallRecordOptions options;
  options.num_accounts = 16;
  CallRecordGenerator gen(options);
  for (const Tuple& t : gen.NextBatch(500)) {
    EXPECT_GE(t[0].int64(), 0);
    EXPECT_LT(t[0].int64(), 16);
  }
}

TEST(CallRecordsTest, CustomerRowsCoverEveryAccount) {
  CallRecordOptions options;
  options.num_accounts = 50;
  CallRecordGenerator gen(options);
  std::vector<Tuple> rows = gen.CustomerRows();
  ASSERT_EQ(rows.size(), 50u);
  Schema schema = CallRecordGenerator::CustomerSchema();
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(ValidateTuple(schema, rows[i]).ok());
    EXPECT_EQ(rows[i][0], Value(static_cast<int64_t>(i)));
  }
}

TEST(BankingTest, AmountsSignedByKind) {
  BankingGenerator gen;
  Schema schema = BankingGenerator::RecordSchema();
  int deposits = 0, withdrawals = 0;
  for (const Tuple& t : gen.NextBatch(500)) {
    ASSERT_TRUE(ValidateTuple(schema, t).ok());
    const std::string& kind = t[1].str();
    if (kind == "deposit") {
      EXPECT_GE(t[2].dbl(), 0.0);
      ++deposits;
    } else {
      EXPECT_LE(t[2].dbl(), 0.0);
      ++withdrawals;
    }
  }
  EXPECT_GT(deposits, 0);
  EXPECT_GT(withdrawals, 0);
}

TEST(FlyerTest, FlightsAndCustomersConform) {
  FlyerGenerator gen;
  Schema flight_schema = FlyerGenerator::FlightSchema();
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(ValidateTuple(flight_schema, gen.NextFlight()).ok());
  }
  Schema cust_schema = FlyerGenerator::CustomerSchema();
  for (const Tuple& row : gen.CustomerRows()) {
    EXPECT_TRUE(ValidateTuple(cust_schema, row).ok());
  }
}

TEST(FlyerTest, AddressChangesRespectRate) {
  FlyerOptions options;
  options.address_change_rate = 0.5;
  FlyerGenerator gen(options);
  int changes = 0;
  for (int i = 0; i < 1000; ++i) {
    if (gen.MaybeAddressChange().has_value()) ++changes;
  }
  EXPECT_NEAR(changes / 1000.0, 0.5, 0.08);

  FlyerOptions never;
  never.address_change_rate = 0.0;
  FlyerGenerator none(never);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(none.MaybeAddressChange().has_value());
  }
}

TEST(StockTest, TradesConformAndSymbolsBounded) {
  StockOptions options;
  options.num_symbols = 8;
  StockTradeGenerator gen(options);
  Schema schema = StockTradeGenerator::RecordSchema();
  for (const Tuple& t : gen.NextBatch(300)) {
    ASSERT_TRUE(ValidateTuple(schema, t).ok());
    EXPECT_EQ(t[0].str().substr(0, 3), "SYM");
    EXPECT_GE(t[1].int64(), 1);
    EXPECT_GT(t[2].dbl(), 0.0);
  }
}

TEST(StockTest, SkewFavorsHeadSymbols) {
  StockOptions options;
  options.num_symbols = 100;
  options.symbol_skew = 1.2;
  StockTradeGenerator gen(options);
  int head = 0;
  for (const Tuple& t : gen.NextBatch(2000)) {
    if (t[0].str() == "SYM0" || t[0].str() == "SYM1") ++head;
  }
  EXPECT_GT(head, 200);  // far above the uniform expectation of 40
}

}  // namespace
}  // namespace chronicle
