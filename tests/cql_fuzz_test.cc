// Robustness fuzzing for the CQL pipeline: random byte strings, mutated
// valid statements, and truncations must produce Status errors — never
// crashes, never OK results for garbage, and never corrupted database
// state.

#include <gtest/gtest.h>

#include "common/random.h"
#include "cql/binder.h"

namespace chronicle {
namespace cql {
namespace {

TEST(CqlFuzzTest, RandomBytesNeverCrashTheLexer) {
  const uint64_t seed = FuzzSeed(2001);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const size_t len = rng.Uniform(64);
    for (size_t j = 0; j < len; ++j) {
      input.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Result<std::vector<Token>> tokens = Tokenize(input);
    if (tokens.ok()) {
      EXPECT_EQ(tokens->back().type, TokenType::kEnd);
    } else {
      EXPECT_TRUE(tokens.status().IsParseError());
    }
  }
}

TEST(CqlFuzzTest, RandomPrintableStringsNeverCrashTheParser) {
  const uint64_t seed = FuzzSeed(2002);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  const std::string alphabet =
      "abcdefgSELECT FROM WHERE GROUP BY ()*,;'0123456789.<>=+-/ ";
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    const size_t len = rng.Uniform(80);
    for (size_t j = 0; j < len; ++j) {
      input.push_back(alphabet[rng.Uniform(alphabet.size())]);
    }
    Result<Statement> stmt = ParseStatement(input);
    // Any outcome is fine as long as errors are Status-shaped.
    if (!stmt.ok()) {
      EXPECT_TRUE(stmt.status().IsParseError()) << input;
    }
  }
}

TEST(CqlFuzzTest, TruncationsOfValidStatementsFailCleanly) {
  const std::string statements[] = {
      "CREATE CHRONICLE calls (caller INT64, region STRING) RETAIN LAST 100",
      "CREATE VIEW v AS SELECT caller, SUM(minutes) AS m FROM calls "
      "WHERE region = 'NJ' GROUP BY caller",
      "CREATE SLIDING VIEW w AS SELECT a, COUNT(*) AS n FROM c GROUP BY a "
      "OVER WINDOW 30 PANES OF 1",
      "INSERT INTO calls VALUES (1, 'NJ', 5), (2, 'NY', 3) AT 77",
      "UPDATE cust SET state = 'CA' WHERE acct = 7",
  };
  for (const std::string& sql : statements) {
    ASSERT_TRUE(ParseStatement(sql).ok()) << sql;
    // Every proper prefix (cut at token-ish boundaries) must error cleanly.
    for (size_t cut = 1; cut + 1 < sql.size(); cut += 3) {
      Result<Statement> stmt = ParseStatement(sql.substr(0, cut));
      if (stmt.ok()) continue;  // some prefixes are themselves valid
      EXPECT_TRUE(stmt.status().IsParseError()) << sql.substr(0, cut);
    }
  }
}

TEST(CqlFuzzTest, ExecutorErrorsLeaveDatabaseUsable) {
  ChronicleDatabase db;
  ASSERT_TRUE(
      Execute(&db, "CREATE CHRONICLE calls (caller INT64, minutes INT64)").ok());
  ASSERT_TRUE(Execute(&db, "CREATE VIEW v AS SELECT caller, SUM(minutes) AS m "
                           "FROM calls GROUP BY caller")
                  .ok());

  const std::string bad_statements[] = {
      "INSERT INTO calls VALUES ('wrong', 'types')",
      "INSERT INTO missing VALUES (1)",
      "CREATE VIEW v AS SELECT caller, SUM(minutes) AS m FROM calls "
      "GROUP BY caller",  // duplicate name
      "CREATE VIEW v2 AS SELECT nope FROM calls",
      "SELECT * FROM nothing",
      "UPDATE calls SET caller = 1 WHERE caller = 1",  // chronicle, not rel
      "DELETE FROM calls WHERE caller = 1",
      "RESTORE FROM '/tmp/definitely_missing_chronicle_ckpt'",
      "EXPLAIN VIEW missing_view",
  };
  for (const std::string& sql : bad_statements) {
    Result<ExecResult> result = Execute(&db, sql);
    EXPECT_FALSE(result.ok()) << sql;
  }

  // The database still works after every failure.
  ASSERT_TRUE(Execute(&db, "INSERT INTO calls VALUES (1, 5)").ok());
  EXPECT_EQ(db.QueryView("v", Tuple{Value(1)}).value()[1], Value(5));
}

TEST(CqlFuzzTest, DeepExpressionNestingParses) {
  // 64 nested parens — recursive descent must handle reasonable depth.
  std::string predicate = "a = 1";
  for (int i = 0; i < 64; ++i) predicate = "(" + predicate + ")";
  Result<Statement> stmt =
      ParseStatement("SELECT * FROM v WHERE " + predicate);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(CqlFuzzTest, LongSelectListsAndScripts) {
  std::string select = "SELECT c0";
  for (int i = 1; i < 200; ++i) select += ", c" + std::to_string(i);
  select += " FROM v";
  EXPECT_TRUE(ParseStatement(select).ok());

  std::string script;
  for (int i = 0; i < 100; ++i) {
    script += "INSERT INTO c VALUES (" + std::to_string(i) + ");";
  }
  EXPECT_TRUE(ParseScript(script).ok());
}

}  // namespace
}  // namespace cql
}  // namespace chronicle
