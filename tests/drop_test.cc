// Tests for DROP VIEW / DROP RELATION: tombstoning, routing cleanup,
// reference protection, and CQL surface.

#include <gtest/gtest.h>

#include "checkpoint/checkpoint.h"
#include "cql/binder.h"
#include "db/database.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

class DropTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateChronicle("calls", CallSchema()).ok());
    CaExprPtr scan = db_.ScanChronicle("calls").value();
    SummarySpec spec = SummarySpec::GroupBy(scan->schema(), {"caller"},
                                            {AggSpec::Sum("minutes", "m")})
                           .value();
    ASSERT_TRUE(db_.CreateView("totals", scan, spec).ok());
  }

  ChronicleDatabase db_;
};

TEST_F(DropTest, DroppedViewStopsBeingMaintainedAndQueried) {
  ASSERT_TRUE(db_.Append("calls", {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(db_.DropView("totals").ok());
  EXPECT_TRUE(db_.QueryView("totals", {Value(1)}).status().IsNotFound());
  // Appends still flow; they just touch no views.
  AppendResult result = db_.Append("calls", {Call(1, "NJ", 5)}).value();
  EXPECT_EQ(result.maintenance.views_considered, 0u);
  EXPECT_EQ(db_.view_manager().num_live_views(), 0u);
}

TEST_F(DropTest, DropUnknownViewIsNotFound) {
  EXPECT_TRUE(db_.DropView("zzz").IsNotFound());
}

TEST_F(DropTest, NameReusableAfterDrop) {
  ASSERT_TRUE(db_.DropView("totals").ok());
  CaExprPtr scan = db_.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(scan->schema(), {"region"},
                                          {AggSpec::Count("n")})
                         .value();
  ASSERT_TRUE(db_.CreateView("totals", scan, spec).ok());
  ASSERT_TRUE(db_.Append("calls", {Call(1, "NJ", 5)}).ok());
  // The replacement definition is in effect (grouped by region now).
  EXPECT_EQ(db_.QueryView("totals", {Value("NJ")}).value()[1], Value(1));
}

TEST_F(DropTest, SurvivingViewsKeepWorkingAfterSiblingDrop) {
  CaExprPtr scan = db_.ScanChronicle("calls").value();
  for (const char* region : {"NJ", "NY", "CA"}) {
    CaExprPtr plan =
        CaExpr::Select(scan, Eq(Col("region"), Lit(Value(region)))).value();
    SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                            {AggSpec::Count("n")})
                           .value();
    ASSERT_TRUE(db_.CreateView(std::string("r_") + region, plan, spec).ok());
  }
  ASSERT_TRUE(db_.DropView("r_NY").ok());
  ASSERT_TRUE(db_.Append("calls", {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(db_.Append("calls", {Call(2, "NY", 5)}).ok());
  EXPECT_EQ(db_.QueryView("r_NJ", {Value(1)}).value()[1], Value(1));
  EXPECT_TRUE(db_.QueryView("r_NY", {Value(2)}).status().IsNotFound());
  // The eq-index no longer routes to the dropped view: only the fixture's
  // unguarded "totals" view fires for an NY append.
  AppendResult result = db_.Append("calls", {Call(3, "NY", 5)}).value();
  EXPECT_EQ(result.maintenance.views_updated, 1u);
  EXPECT_TRUE(db_.QueryView("r_NY", {Value(3)}).status().IsNotFound());
}

TEST_F(DropTest, PeriodicAndSlidingViewsDroppable) {
  CaExprPtr scan = db_.ScanChronicle("calls").value();
  SummarySpec spec = SummarySpec::GroupBy(scan->schema(), {"caller"},
                                          {AggSpec::Sum("minutes", "m")})
                         .value();
  auto cal = PeriodicCalendar::Make(0, 10).value();
  ASSERT_TRUE(db_.CreatePeriodicView("monthly", scan, spec, cal).ok());
  ASSERT_TRUE(db_.CreateSlidingView("moving", scan, spec, 0, 1, 5).ok());

  ASSERT_TRUE(db_.DropView("monthly").ok());
  ASSERT_TRUE(db_.DropView("moving").ok());
  EXPECT_TRUE(db_.GetPeriodicView("monthly").status().IsNotFound());
  EXPECT_TRUE(db_.GetSlidingView("moving").status().IsNotFound());
  // Maintenance continues without them.
  EXPECT_TRUE(db_.Append("calls", {Call(1, "NJ", 5)}).ok());
}

TEST_F(DropTest, RelationDropRefusedWhileReferenced) {
  Schema cust_schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
  ASSERT_TRUE(db_.CreateRelation("cust", cust_schema, "acct").ok());
  Relation* cust = db_.GetRelation("cust").value();
  CaExprPtr joined =
      CaExpr::RelKeyJoin(db_.ScanChronicle("calls").value(), cust, "caller")
          .value();
  SummarySpec spec = SummarySpec::GroupBy(joined->schema(), {"state"},
                                          {AggSpec::Count("n")})
                         .value();
  ASSERT_TRUE(db_.CreateView("by_state", joined, spec).ok());

  Status blocked = db_.DropRelation("cust");
  ASSERT_TRUE(blocked.IsFailedPrecondition());
  EXPECT_NE(blocked.message().find("referenced"), std::string::npos);

  // After the referencing view goes away the relation can be dropped.
  ASSERT_TRUE(db_.DropView("by_state").ok());
  ASSERT_TRUE(db_.DropRelation("cust").ok());
  EXPECT_TRUE(db_.GetRelation("cust").status().IsNotFound());
  EXPECT_TRUE(db_.DropRelation("cust").IsNotFound());
}

TEST_F(DropTest, CheckpointSkipsDroppedViews) {
  namespace ckpt = chronicle::checkpoint;
  ASSERT_TRUE(db_.Append("calls", {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(db_.DropView("totals").ok());
  // SaveDatabase must not choke on the tombstone.
  Result<cql::ExecResult> saved =
      cql::Execute(&db_, "CHECKPOINT TO '/tmp/chronicle_drop_test.ckpt'");
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  std::remove("/tmp/chronicle_drop_test.ckpt");
}

TEST_F(DropTest, CqlDropStatements) {
  auto exec = [&](const std::string& sql) { return cql::Execute(&db_, sql); };
  ASSERT_TRUE(exec("DROP VIEW totals").ok());
  EXPECT_TRUE(exec("DROP VIEW totals").status().IsNotFound());
  ASSERT_TRUE(exec("CREATE RELATION r (a INT64) KEY a").ok());
  ASSERT_TRUE(exec("DROP RELATION r").ok());
  EXPECT_TRUE(exec("DROP RELATION r").status().IsNotFound());
  // Chronicles cannot be dropped — the parser says why.
  Result<cql::ExecResult> bad = exec("DROP CHRONICLE calls");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("system of record"), std::string::npos);
  // SHOW VIEWS tolerates tombstones.
  EXPECT_TRUE(exec("SHOW VIEWS").ok());
}

}  // namespace
}  // namespace chronicle
