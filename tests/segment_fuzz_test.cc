// Corruption fuzzing for segment files: every truncation, every single-bit
// flip, extensions, and torn rewrites must fail CLOSED — SegmentReader::
// Open returns a clean non-OK status, never crashes, never yields wrong
// rows. At the store level a corrupt segment is quarantined together with
// everything older, so the surviving warm window stays contiguous and the
// missing prefix falls back to WAL replay.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/random.h"
#include "storage/chronicle_group.h"
#include "store/segment.h"
#include "store/tiered_store.h"

namespace chronicle {
namespace store {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_segfuzz_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteRaw(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// A small but representative segment: mixed types, repeated SNs, strings.
std::string BuildSegment(SeqNum base) {
  SegmentEncoder enc(9);
  for (SeqNum sn = base; sn < base + 12; ++sn) {
    enc.Add(ChronicleRow{
        sn, Tuple{Value(static_cast<int64_t>(sn * 7)),
                  Value("payload-" + std::to_string(sn))}});
    if (sn % 3 == 0) {
      enc.Add(ChronicleRow{sn, Tuple{Value(int64_t{-1}), Value("dup")}});
    }
  }
  return enc.Finish();
}

TEST(SegmentFuzz, EveryTruncationFailsClosed) {
  ScratchDir dir("trunc");
  const std::string image = BuildSegment(100);
  const std::string path = (fs::path(dir.path) / "seg.seg").string();
  for (size_t len = 0; len < image.size(); ++len) {
    WriteRaw(path, std::string_view(image).substr(0, len));
    auto reader = SegmentReader::Open(path);
    EXPECT_FALSE(reader.ok()) << "truncation to " << len << " bytes opened";
  }
  // Sanity: the untruncated image is valid.
  WriteRaw(path, image);
  EXPECT_TRUE(SegmentReader::Open(path).ok());
}

TEST(SegmentFuzz, EverySingleBitFlipFailsClosed) {
  ScratchDir dir("bitflip");
  const std::string image = BuildSegment(500);
  const std::string path = (fs::path(dir.path) / "seg.seg").string();
  for (size_t byte = 0; byte < image.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] ^= static_cast<char>(1 << bit);
      WriteRaw(path, mutated);
      auto reader = SegmentReader::Open(path);
      EXPECT_FALSE(reader.ok())
          << "bit " << bit << " of byte " << byte << " flipped but opened";
    }
  }
}

TEST(SegmentFuzz, AppendedGarbageFailsClosed) {
  ScratchDir dir("extend");
  const std::string image = BuildSegment(1);
  const std::string path = (fs::path(dir.path) / "seg.seg").string();
  Rng rng(20260809);
  for (int extra : {1, 7, 4096}) {
    std::string mutated = image;
    for (int i = 0; i < extra; ++i) {
      mutated.push_back(static_cast<char>(rng.Uniform(256)));
    }
    WriteRaw(path, mutated);
    EXPECT_FALSE(SegmentReader::Open(path).ok())
        << extra << " garbage bytes appended but opened";
  }
}

TEST(SegmentFuzz, TornRewriteWithRandomTailFailsClosed) {
  // A tear that is not a clean truncation: the prefix is intact but the
  // tail is stale garbage of the original length (what a non-atomic
  // in-place rewrite could leave). Any divergence from the true image must
  // fail the CRC.
  ScratchDir dir("torn");
  const std::string image = BuildSegment(42);
  const std::string path = (fs::path(dir.path) / "seg.seg").string();
  Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t keep = kSegmentHeaderBytes +
                        rng.Uniform(image.size() - kSegmentHeaderBytes);
    std::string mutated = image.substr(0, keep);
    bool differs = false;
    while (mutated.size() < image.size()) {
      const char c = static_cast<char>(rng.Uniform(256));
      differs |= c != image[mutated.size()];
      mutated.push_back(c);
    }
    if (!differs) continue;  // the "tear" reproduced the real bytes
    WriteRaw(path, mutated);
    EXPECT_FALSE(SegmentReader::Open(path).ok()) << "trial " << trial;
  }
}

// Store-level fallback: corrupting a middle segment quarantines it AND the
// older ones; the newest valid suffix is still served, and last_sealed_sn
// shrinks so recovery knows to replay the WAL from further back.
TEST(SegmentFuzz, StoreQuarantinesCorruptionAndKeepsNewestSuffix) {
  ScratchDir dir("quarantine");
  StorageOptions options;
  options.data_dir = dir.path;
  options.hot_rows = 4;
  options.segment_rows = 4;

  SeqNum sealed = 0;
  {
    auto store = TieredStore::Open(options);
    ASSERT_TRUE(store.ok());
    ChronicleGroup group("g");
    ChronicleId id =
        group.CreateChronicle("calls",
                              Schema({{"k", DataType::kInt64}}),
                              RetentionPolicy::Tiered(options.hot_rows))
            .value();
    ASSERT_TRUE((*store)->AttachChronicle(id, "calls").ok());
    group.GetChronicle(id).value()->AttachTierSink(store->get(),
                                                   options.segment_rows);
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(group.Append(id, {Tuple{Value(i)}}).ok());
    }
    sealed = (*store)->last_sealed_sn(id);
  }

  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path + "/calls")) {
    if (entry.path().extension() == ".seg") segs.push_back(entry.path());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_GE(segs.size(), 3u);

  // Flip one payload bit in the middle segment.
  std::string bytes = ReadFile(segs[segs.size() / 2]);
  bytes[bytes.size() - 1] ^= 0x10;
  WriteRaw(segs[segs.size() / 2], bytes);

  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AttachChronicle(0, "calls").ok());
  EXPECT_EQ((*store)->counters().segments_quarantined, segs.size() / 2 + 1);
  EXPECT_EQ((*store)->last_sealed_sn(0), sealed);  // newest suffix intact

  // The surviving warm rows are contiguous and end at the sealed SN.
  std::vector<SeqNum> sns;
  ASSERT_TRUE(
      (*store)
          ->ScanWarm(0, [&](const ChronicleRow& r) { sns.push_back(r.sn); })
          .ok());
  ASSERT_FALSE(sns.empty());
  EXPECT_EQ(sns.back(), sealed);
  for (size_t i = 1; i < sns.size(); ++i) EXPECT_EQ(sns[i], sns[i - 1] + 1);

  // Quarantined files are renamed, not deleted (kept for forensics).
  size_t quarantined_files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path + "/calls")) {
    if (entry.path().extension() == ".quarantined") ++quarantined_files;
  }
  EXPECT_EQ(quarantined_files, segs.size() / 2 + 1);
}

// Corrupting the NEWEST segment quarantines the whole warm tier (no valid
// newest suffix exists): last_sealed_sn drops to 0 and recovery falls back
// to replaying the WAL from genesis/checkpoint.
TEST(SegmentFuzz, CorruptNewestSegmentFallsBackEntirely) {
  ScratchDir dir("newest");
  StorageOptions options;
  options.data_dir = dir.path;
  options.hot_rows = 4;
  options.segment_rows = 4;
  {
    auto store = TieredStore::Open(options);
    ASSERT_TRUE(store.ok());
    ChronicleGroup group("g");
    ChronicleId id =
        group.CreateChronicle("calls",
                              Schema({{"k", DataType::kInt64}}),
                              RetentionPolicy::Tiered(options.hot_rows))
            .value();
    ASSERT_TRUE((*store)->AttachChronicle(id, "calls").ok());
    group.GetChronicle(id).value()->AttachTierSink(store->get(),
                                                   options.segment_rows);
    for (int i = 1; i <= 24; ++i) {
      ASSERT_TRUE(group.Append(id, {Tuple{Value(i)}}).ok());
    }
  }
  std::vector<std::string> segs;
  for (const auto& entry : fs::directory_iterator(dir.path + "/calls")) {
    if (entry.path().extension() == ".seg") segs.push_back(entry.path());
  }
  std::sort(segs.begin(), segs.end());
  ASSERT_FALSE(segs.empty());
  std::string bytes = ReadFile(segs.back());
  bytes[kSegmentHeaderBytes / 2] ^= 0x01;
  WriteRaw(segs.back(), bytes);

  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AttachChronicle(0, "calls").ok());
  EXPECT_EQ((*store)->last_sealed_sn(0), 0u);
  EXPECT_EQ((*store)->WarmRows(0), 0u);
  EXPECT_EQ((*store)->counters().segments_quarantined, segs.size());
}

}  // namespace
}  // namespace store
}  // namespace chronicle
