#include "aggregates/aggregate.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema NumSchema() {
  return Schema({{"i", DataType::kInt64},
                 {"d", DataType::kDouble},
                 {"s", DataType::kString}});
}

AggSpec Bound(AggSpec spec) {
  Status st = spec.Bind(NumSchema());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return spec;
}

TEST(AggregateTest, CountCountsRows) {
  AggSpec count = Bound(AggSpec::Count());
  AggState state = count.Init();
  count.Update(&state, Tuple{Value(), Value(), Value()});  // NULLs still count
  count.Update(&state, Tuple{Value(1), Value(1.0), Value("x")});
  EXPECT_EQ(count.Finalize(state), Value(2));
}

TEST(AggregateTest, SumInt64StaysExact) {
  AggSpec sum = Bound(AggSpec::Sum("i"));
  AggState state = sum.Init();
  const int64_t big = int64_t{1} << 62;
  sum.Update(&state, Tuple{Value(big), Value(), Value()});
  sum.Update(&state, Tuple{Value(1), Value(), Value()});
  Value v = sum.Finalize(state);
  ASSERT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), big + 1);
}

TEST(AggregateTest, SumDouble) {
  AggSpec sum = Bound(AggSpec::Sum("d"));
  AggState state = sum.Init();
  sum.Update(&state, Tuple{Value(), Value(1.5), Value()});
  sum.Update(&state, Tuple{Value(), Value(2.25), Value()});
  Value v = sum.Finalize(state);
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.dbl(), 3.75);
}

TEST(AggregateTest, SumSkipsNullsAndEmptyIsNull) {
  AggSpec sum = Bound(AggSpec::Sum("i"));
  AggState state = sum.Init();
  EXPECT_TRUE(sum.Finalize(state).is_null());  // SQL: SUM() over empty = NULL
  sum.Update(&state, Tuple{Value(), Value(), Value()});
  EXPECT_TRUE(sum.Finalize(state).is_null());
  sum.Update(&state, Tuple{Value(5), Value(), Value()});
  EXPECT_EQ(sum.Finalize(state), Value(5));
}

TEST(AggregateTest, MinMaxOverIntegers) {
  AggSpec min = Bound(AggSpec::Min("i"));
  AggSpec max = Bound(AggSpec::Max("i"));
  AggState smin = min.Init(), smax = max.Init();
  for (int64_t v : {5, -2, 9, 0}) {
    Tuple row{Value(v), Value(), Value()};
    min.Update(&smin, row);
    max.Update(&smax, row);
  }
  EXPECT_EQ(min.Finalize(smin), Value(-2));
  EXPECT_EQ(max.Finalize(smax), Value(9));
}

TEST(AggregateTest, MinMaxOverStrings) {
  AggSpec min = Bound(AggSpec::Min("s"));
  AggSpec max = Bound(AggSpec::Max("s"));
  AggState smin = min.Init(), smax = max.Init();
  for (const char* v : {"pear", "apple", "zebra"}) {
    Tuple row{Value(), Value(), Value(v)};
    min.Update(&smin, row);
    max.Update(&smax, row);
  }
  EXPECT_EQ(min.Finalize(smin), Value("apple"));
  EXPECT_EQ(max.Finalize(smax), Value("zebra"));
}

TEST(AggregateTest, MinMaxEmptyIsNull) {
  AggSpec min = Bound(AggSpec::Min("i"));
  EXPECT_TRUE(min.Finalize(min.Init()).is_null());
}

TEST(AggregateTest, AvgComputesMean) {
  AggSpec avg = Bound(AggSpec::Avg("i"));
  AggState state = avg.Init();
  for (int64_t v : {2, 4, 9}) avg.Update(&state, Tuple{Value(v), Value(), Value()});
  Value v = avg.Finalize(state);
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.dbl(), 5.0);
  EXPECT_TRUE(avg.Finalize(avg.Init()).is_null());
}

TEST(AggregateTest, FirstAndLastFollowArrivalOrder) {
  AggSpec first = Bound(AggSpec::First("s"));
  AggSpec last = Bound(AggSpec::Last("s"));
  AggState sf = first.Init(), sl = last.Init();
  for (const char* v : {"alpha", "beta", "gamma"}) {
    Tuple row{Value(), Value(), Value(v)};
    first.Update(&sf, row);
    last.Update(&sl, row);
  }
  EXPECT_EQ(first.Finalize(sf), Value("alpha"));
  EXPECT_EQ(last.Finalize(sl), Value("gamma"));
}

TEST(AggregateTest, FirstAndLastSkipNulls) {
  AggSpec first = Bound(AggSpec::First("i"));
  AggSpec last = Bound(AggSpec::Last("i"));
  AggState sf = first.Init(), sl = last.Init();
  for (const Value& v : {Value(), Value(7), Value(), Value(9), Value()}) {
    first.UpdateValue(&sf, v);
    last.UpdateValue(&sl, v);
  }
  EXPECT_EQ(first.Finalize(sf), Value(7));
  EXPECT_EQ(last.Finalize(sl), Value(9));
  // Empty = NULL.
  EXPECT_TRUE(first.Finalize(first.Init()).is_null());
  EXPECT_TRUE(last.Finalize(last.Init()).is_null());
}

TEST(AggregateTest, FirstLastMergeIsChronological) {
  // Merge contract: `other` is chronologically LATER than `state`.
  AggSpec first = Bound(AggSpec::First("i"));
  AggSpec last = Bound(AggSpec::Last("i"));
  AggState early_f = first.Init(), late_f = first.Init();
  AggState early_l = last.Init(), late_l = last.Init();
  first.UpdateValue(&early_f, Value(1));
  first.UpdateValue(&late_f, Value(2));
  last.UpdateValue(&early_l, Value(1));
  last.UpdateValue(&late_l, Value(2));
  first.Merge(&early_f, late_f);
  last.Merge(&early_l, late_l);
  EXPECT_EQ(first.Finalize(early_f), Value(1));
  EXPECT_EQ(last.Finalize(early_l), Value(2));
  // Merging a later part into an empty earlier part adopts it.
  AggState empty_f = first.Init();
  first.Merge(&empty_f, late_f);
  EXPECT_EQ(first.Finalize(empty_f), Value(2));
}

TEST(AggregateTest, MergeMatchesSequentialUpdates) {
  // Decomposability: fold[a ++ b] == merge(fold[a], fold[b]) for every kind.
  const std::vector<int64_t> all = {3, -1, 7, 7, 0, 12, -5};
  const size_t split = 3;
  for (AggSpec spec :
       {AggSpec::Count(), Bound(AggSpec::Sum("i")), Bound(AggSpec::Min("i")),
        Bound(AggSpec::Max("i")), Bound(AggSpec::Avg("i"))}) {
    if (spec.kind() == AggKind::kCount) spec = Bound(std::move(spec));
    AggState whole = spec.Init();
    AggState part1 = spec.Init();
    AggState part2 = spec.Init();
    for (size_t i = 0; i < all.size(); ++i) {
      Tuple row{Value(all[i]), Value(), Value()};
      spec.Update(&whole, row);
      spec.Update(i < split ? &part1 : &part2, row);
    }
    spec.Merge(&part1, part2);
    EXPECT_EQ(spec.Finalize(whole), spec.Finalize(part1))
        << AggKindToString(spec.kind());
  }
}

TEST(AggregateTest, BindRejectsSumOverString) {
  AggSpec sum = AggSpec::Sum("s");
  EXPECT_TRUE(sum.Bind(NumSchema()).IsInvalidArgument());
  AggSpec avg = AggSpec::Avg("s");
  EXPECT_FALSE(avg.Bind(NumSchema()).ok());
}

TEST(AggregateTest, BindRejectsUnknownColumn) {
  AggSpec sum = AggSpec::Sum("missing");
  EXPECT_TRUE(sum.Bind(NumSchema()).IsNotFound());
}

TEST(AggregateTest, OutputFieldsAndNames) {
  EXPECT_EQ(Bound(AggSpec::Count()).OutputField().name, "count");
  EXPECT_EQ(Bound(AggSpec::Sum("i")).OutputField().type, DataType::kInt64);
  EXPECT_EQ(Bound(AggSpec::Sum("d")).OutputField().type, DataType::kDouble);
  EXPECT_EQ(Bound(AggSpec::Avg("i")).OutputField().type, DataType::kDouble);
  EXPECT_EQ(Bound(AggSpec::Sum("i", "total")).OutputField().name, "total");
  EXPECT_EQ(Bound(AggSpec::Sum("i")).OutputField().name, "SUM(i)");
}

TEST(AggregateTest, CustomAggregateRoundTrip) {
  // Product of values, as a user-defined decomposable aggregate.
  auto def = std::make_shared<CustomAggregateDef>();
  def->name = "PRODUCT";
  def->output_type = DataType::kInt64;
  def->init = [] { return Tuple{Value(1)}; };
  def->update = [](Tuple* state, const Value& v) {
    (*state)[0] = Value((*state)[0].int64() * v.int64());
  };
  def->merge = [](Tuple* state, const Tuple& other) {
    (*state)[0] = Value((*state)[0].int64() * other[0].int64());
  };
  def->finalize = [](const Tuple& state) { return state[0]; };

  AggSpec spec = Bound(AggSpec::Custom(def, "i", "prod"));
  AggState a = spec.Init(), b = spec.Init();
  spec.Update(&a, Tuple{Value(3), Value(), Value()});
  spec.Update(&a, Tuple{Value(4), Value(), Value()});
  spec.Update(&b, Tuple{Value(5), Value(), Value()});
  spec.Merge(&a, b);
  EXPECT_EQ(spec.Finalize(a), Value(60));
  EXPECT_EQ(spec.OutputField().name, "prod");
}

TEST(TieredScheduleTest, MakeValidation) {
  EXPECT_TRUE(TieredSchedule::Make({{10, 0.1}, {25, 0.2}}).ok());
  EXPECT_FALSE(TieredSchedule::Make({{10, 1.5}}).ok());       // rate >= 1
  EXPECT_FALSE(TieredSchedule::Make({{10, 0.1}, {5, 0.2}}).ok());  // not increasing
  EXPECT_TRUE(TieredSchedule::Make({}).ok());  // empty = no discount
}

TEST(TieredScheduleTest, RateSelection) {
  // The paper's plan: 10% over $10, 20% over $25.
  TieredSchedule plan = TieredSchedule::Make({{10, 0.1}, {25, 0.2}}).value();
  EXPECT_DOUBLE_EQ(plan.RateFor(5.0), 0.0);
  EXPECT_DOUBLE_EQ(plan.RateFor(10.0), 0.0);  // strictly exceeds
  EXPECT_DOUBLE_EQ(plan.RateFor(10.01), 0.1);
  EXPECT_DOUBLE_EQ(plan.RateFor(25.0), 0.1);
  EXPECT_DOUBLE_EQ(plan.RateFor(26.0), 0.2);
  EXPECT_DOUBLE_EQ(plan.DiscountedTotal(30.0), 24.0);
}

TEST(TieredScheduleTest, AggregateAppliesRateToRunningTotal) {
  TieredSchedule plan = TieredSchedule::Make({{10, 0.1}, {25, 0.2}}).value();
  AggSpec spec = AggSpec::TieredDiscount("d", plan, "owed");
  ASSERT_TRUE(spec.Bind(NumSchema()).ok());
  AggState state = spec.Init();
  // Below first tier.
  spec.UpdateValue(&state, Value(6.0));
  EXPECT_DOUBLE_EQ(spec.Finalize(state).dbl(), 6.0);
  // Crosses first tier: whole total discounted at 10%.
  spec.UpdateValue(&state, Value(6.0));
  EXPECT_DOUBLE_EQ(spec.Finalize(state).dbl(), 12.0 * 0.9);
  // Crosses second tier.
  spec.UpdateValue(&state, Value(20.0));
  EXPECT_DOUBLE_EQ(spec.Finalize(state).dbl(), 32.0 * 0.8);
  EXPECT_EQ(spec.OutputField().type, DataType::kDouble);
}

TEST(TieredScheduleTest, ToStringRendering) {
  TieredSchedule plan = TieredSchedule::Make({{10, 0.1}, {25, 0.2}}).value();
  EXPECT_EQ(plan.ToString(), "10%>@10, 20%>@25");
}

}  // namespace
}  // namespace chronicle
