#include "baseline/naive_engine.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

Tuple Call(int64_t caller, const std::string& region, int64_t minutes) {
  return Tuple{Value(caller), Value(region), Value(minutes)};
}

struct Fixture {
  ChronicleGroup group;
  ChronicleId calls;
  NaiveEngine engine{&group};

  Fixture() {
    calls = group.CreateChronicle("calls", CallSchema()).value();
  }

  CaExprPtr Scan() {
    return CaExpr::Scan(*group.GetChronicle(calls).value()).value();
  }
};

TEST(NaiveEngineTest, ScanReturnsWholeChronicle) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(2, "NY", 3)}).ok());
  auto rows = fx.engine.Evaluate(*fx.Scan()).value();
  EXPECT_EQ(rows.size(), 2u);
}

TEST(NaiveEngineTest, RequiresFullRetention) {
  ChronicleGroup group;
  ChronicleId id =
      group.CreateChronicle("calls", CallSchema(), RetentionPolicy::Window(1))
          .value();
  ASSERT_TRUE(group.Append(id, {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(group.Append(id, {Call(2, "NY", 3)}).ok());  // first row dropped
  NaiveEngine engine(&group);
  CaExprPtr scan = CaExpr::Scan(*group.GetChronicle(id).value()).value();
  Status st = engine.Evaluate(*scan).status();
  ASSERT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("entire chronicle"), std::string::npos);
}

TEST(NaiveEngineTest, SelectProjectGroupBy) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5), Call(2, "NJ", 7)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 2)}).ok());

  CaExprPtr plan =
      CaExpr::GroupBySeq(
          CaExpr::Select(fx.Scan(), Gt(Col("minutes"), Lit(Value(2)))).value(),
          {"region"}, {AggSpec::Sum("minutes", "total")})
          .value();
  auto rows = fx.engine.Evaluate(*plan).value();
  // Tick 1 groups to (NJ, 12); tick 2's only row fails the filter.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values, (Tuple{Value("NJ"), Value(12)}));
  EXPECT_EQ(rows[0].sn, 1u);
}

TEST(NaiveEngineTest, EvaluateSummaryAggregatesAcrossTicks) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 7)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(2, "NY", 1)}).ok());

  SummarySpec spec = SummarySpec::GroupBy(CallSchema(), {"caller"},
                                          {AggSpec::Sum("minutes", "total")})
                         .value();
  auto rows = fx.engine.EvaluateSummary(*fx.Scan(), spec).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value(1), Value(12)}));
  EXPECT_EQ(rows[1], (Tuple{Value(2), Value(1)}));
}

TEST(NaiveEngineTest, EvaluateSummaryDistinctProjection) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(2, "NJ", 5)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(3, "NY", 5)}).ok());
  SummarySpec spec =
      SummarySpec::DistinctProjection(CallSchema(), {"region"}).value();
  auto rows = fx.engine.EvaluateSummary(*fx.Scan(), spec).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (Tuple{Value("NJ")}));
  EXPECT_EQ(rows[1], (Tuple{Value("NY")}));
}

TEST(NaiveEngineTest, EvaluatesForbiddenOperators) {
  // The relational baseline CAN express these; they are just not
  // incrementally maintainable (Theorem 4.3).
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5)}).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(2, "NY", 3)}).ok());

  CaExprPtr drop = CaExpr::ProjectDropSn(fx.Scan(), {"region"}).value();
  auto dropped = fx.engine.Evaluate(*drop).value();
  EXPECT_EQ(dropped.size(), 2u);  // NJ and NY, sn=0

  CaExprPtr cross = CaExpr::ChronicleCross(fx.Scan(), fx.Scan()).value();
  auto crossed = fx.engine.Evaluate(*cross).value();
  EXPECT_EQ(crossed.size(), 4u);  // 2 × 2

  CaExprPtr lt = CaExpr::SeqThetaJoin(fx.Scan(), fx.Scan(), CompareOp::kLt)
                     .value();
  auto theta = fx.engine.Evaluate(*lt).value();
  ASSERT_EQ(theta.size(), 1u);  // only sn1 < sn2
  EXPECT_EQ(theta[0].sn, 2u);   // max of the pair

  CaExprPtr nosn =
      CaExpr::GroupByNoSn(fx.Scan(), {}, {AggSpec::Count("n")}).value();
  auto grouped = fx.engine.Evaluate(*nosn).value();
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped[0].values, (Tuple{Value(2)}));
}

TEST(NaiveEngineTest, SeqJoinMatchesOnSn) {
  ChronicleGroup group;
  Schema s({{"x", DataType::kInt64}});
  ChronicleId a = group.CreateChronicle("a", s).value();
  ChronicleId b = group.CreateChronicle("b", s).value();
  ASSERT_TRUE(group
                  .AppendMulti({{a, {Tuple{Value(1)}}}, {b, {Tuple{Value(10)}}}},
                               1)
                  .ok());
  ASSERT_TRUE(group.Append(a, {Tuple{Value(2)}}).ok());  // no b-partner

  NaiveEngine engine(&group);
  CaExprPtr plan =
      CaExpr::SeqJoin(CaExpr::Scan(*group.GetChronicle(a).value()).value(),
                      CaExpr::Scan(*group.GetChronicle(b).value()).value())
          .value();
  auto rows = engine.Evaluate(*plan).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values, (Tuple{Value(1), Value(10)}));
}

TEST(NaiveEngineTest, RelationHistoryReproducesTemporalJoin) {
  // A customer moves from NJ to CA between two flights; the baseline must
  // join the first flight with the NJ version and the second with CA.
  ChronicleGroup group;
  ChronicleId flights = group.CreateChronicle("flights", CallSchema()).value();
  Relation cust = Relation::Make("cust", CustSchema(), "acct").value();
  RelationHistory history;

  ASSERT_TRUE(cust.Insert(Tuple{Value(1), Value("NJ")}).ok());
  history.Snapshot(cust, /*from_sn=*/1);
  ASSERT_TRUE(group.Append(flights, {Call(1, "x", 100)}).ok());  // sn 1

  ASSERT_TRUE(cust.UpdateByKey(Value(1), Tuple{Value(1), Value("CA")}).ok());
  history.Snapshot(cust, /*from_sn=*/2);
  ASSERT_TRUE(group.Append(flights, {Call(1, "x", 200)}).ok());  // sn 2

  NaiveEngine engine(&group, &history);
  CaExprPtr plan =
      CaExpr::RelKeyJoin(
          CaExpr::Scan(*group.GetChronicle(flights).value()).value(), &cust,
          "caller")
          .value();
  auto rows = engine.Evaluate(*plan).value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].values[4], Value("NJ"));  // sn 1 sees the old version
  EXPECT_EQ(rows[1].values[4], Value("CA"));  // sn 2 sees the new version
  EXPECT_EQ(history.num_snapshots(), 2u);

  // Without history, the engine (incorrectly for retro analysis) uses the
  // current version for everything — which is why the chronicle model
  // maintains views forward instead.
  NaiveEngine no_history(&group);
  auto rows2 = no_history.Evaluate(*plan).value();
  EXPECT_EQ(rows2[0].values[4], Value("CA"));
}

TEST(NaiveEngineTest, ChrononResolverFeedsPredicates) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 5)}, /*chronon=*/100).ok());
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(2, "NY", 3)}, /*chronon=*/200).ok());
  CaExprPtr plan =
      CaExpr::Select(fx.Scan(),
                     Ge(ScalarExpr::ChrononRef(), Lit(Value(150))))
          .value();
  // Default resolver (chronon == sn) filters everything out.
  EXPECT_TRUE(fx.engine.Evaluate(*plan).value().empty());
  // A real resolver finds the second tick.
  fx.engine.set_chronon_resolver(
      [](SeqNum sn) { return static_cast<Chronon>(sn * 100); });
  auto rows = fx.engine.Evaluate(*plan).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].values[0], Value(2));
}

TEST(NaiveEngineTest, UnionAndDifferenceSetSemantics) {
  Fixture fx;
  ASSERT_TRUE(fx.group.Append(fx.calls, {Call(1, "NJ", 15)}).ok());
  CaExprPtr scan = fx.Scan();
  CaExprPtr nj = CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  CaExprPtr big = CaExpr::Select(scan, Ge(Col("minutes"), Lit(Value(10)))).value();
  // The row satisfies both branches: union holds it once.
  auto u = fx.engine.Evaluate(*CaExpr::Union(nj, big).value()).value();
  EXPECT_EQ(u.size(), 1u);
  // scan − nj is empty.
  auto d = fx.engine.Evaluate(*CaExpr::Difference(scan, nj).value()).value();
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace chronicle
