// Robustness fuzzing for the WAL reader (mirrors checkpoint_fuzz_test):
// byte-level corruptions, truncations, and garbage segment files must
// either replay the exact valid prefix of the original records or fail
// cleanly with kDataLoss — never crash, hang, or hand corrupt records to
// the apply callback.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "common/random.h"
#include "wal/wal.h"
#include "wal/wal_file.h"
#include "wal/wal_record.h"

namespace chronicle {
namespace wal {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / ("chronicle_wal_fuzz_" + name +
                                           "_" +
                                           std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

Value RandomValue(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0:
      return Value(static_cast<int64_t>(rng->Uniform(1 << 20)));
    case 1:
      return Value(static_cast<double>(rng->Uniform(1000)) / 7.0);
    case 2: {
      std::string s;
      const size_t len = rng->Uniform(12);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->Uniform(26)));
      }
      return Value(std::move(s));
    }
    default:
      return Value();  // NULL
  }
}

Tuple RandomTuple(Rng* rng) {
  Tuple t;
  const size_t len = 1 + rng->Uniform(4);
  for (size_t i = 0; i < len; ++i) t.push_back(RandomValue(rng));
  return t;
}

WalRecord RandomRecord(Rng* rng) {
  switch (rng->Uniform(4)) {
    case 0: {
      std::vector<std::pair<std::string, std::vector<Tuple>>> inserts;
      const size_t num = 1 + rng->Uniform(3);
      for (size_t i = 0; i < num; ++i) {
        std::vector<Tuple> tuples;
        const size_t n = rng->Uniform(3);
        for (size_t j = 0; j < n; ++j) tuples.push_back(RandomTuple(rng));
        inserts.emplace_back("c" + std::to_string(i), std::move(tuples));
      }
      return WalRecord::MakeAppend(rng->Uniform(1 << 16),
                                   static_cast<Chronon>(rng->Uniform(1 << 16)),
                                   std::move(inserts));
    }
    case 1:
      return WalRecord::MakeRelationInsert("rel", RandomTuple(rng));
    case 2:
      return WalRecord::MakeRelationUpdate("rel", RandomValue(rng),
                                           RandomTuple(rng));
    default:
      return WalRecord::MakeRelationDelete("rel", RandomValue(rng));
  }
}

// Writes `n` random records into a single-segment log and returns them
// with LSNs stamped, exactly as replay should surface them.
std::vector<WalRecord> BuildLog(const std::string& dir, Rng* rng, int n) {
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  auto wal = Wal::Open(dir, options);
  EXPECT_TRUE(wal.ok());
  std::vector<WalRecord> truth;
  for (int i = 0; i < n; ++i) {
    WalRecord r = RandomRecord(rng);
    Result<uint64_t> lsn = (*wal)->Log(r);
    EXPECT_TRUE(lsn.ok());
    r.lsn = *lsn;
    truth.push_back(std::move(r));
  }
  EXPECT_TRUE((*wal)->Close().ok());
  return truth;
}

// Replays and checks the core safety property: whatever comes out of the
// log is an exact prefix of what went in, or the replay fails with
// kDataLoss. Returns the number of records applied (-1 on DataLoss).
int ReplayAndCheckPrefix(const std::string& dir,
                         const std::vector<WalRecord>& truth) {
  std::vector<WalRecord> applied;
  WalReplayStats stats;
  Status st = ReplayWal(
      dir, 0,
      [&](const WalRecord& r) {
        applied.push_back(r);
        return Status::OK();
      },
      &stats);
  if (!st.ok()) {
    EXPECT_TRUE(st.IsDataLoss()) << st.ToString();
    return -1;
  }
  EXPECT_LE(applied.size(), truth.size());
  for (size_t i = 0; i < applied.size(); ++i) {
    EXPECT_TRUE(applied[i] == truth[i]) << "divergence at record " << i;
  }
  return static_cast<int>(applied.size());
}

TEST(WalFuzzTest, RandomRecordsRoundTrip) {
  const uint64_t seed = FuzzSeed(4242);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 500; ++trial) {
    WalRecord r = RandomRecord(&rng);
    r.lsn = 1 + rng.Uniform(1 << 20);
    Result<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(r));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(*decoded == r);
  }
}

TEST(WalFuzzTest, RandomBytesNeverCrashTheRecordDecoder) {
  const uint64_t seed = FuzzSeed(1234);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(128);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    Result<WalRecord> decoded = DecodeWalRecord(garbage);
    (void)decoded;  // any Status outcome is fine; crashing is not
  }
}

TEST(WalFuzzTest, SingleByteCorruptionsYieldExactPrefixOrDataLoss) {
  ScratchDir dir("flip");
  const uint64_t seed = FuzzSeed(31337);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  const std::vector<WalRecord> truth = BuildLog(dir.path, &rng, 25);
  auto segments = ListWalSegments(dir.path).value();
  ASSERT_EQ(segments.size(), 1u);
  const std::string pristine = ReadFileToString(segments[0].path).value();

  int full_replays = 0, partial_replays = 0, data_losses = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = pristine;
    const size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] ^= static_cast<char>(1 << rng.Uniform(8));
    ASSERT_TRUE(AtomicWriteFile(segments[0].path, corrupted).ok());

    const int applied = ReplayAndCheckPrefix(dir.path, truth);
    if (applied < 0) {
      ++data_losses;
    } else if (static_cast<size_t>(applied) == truth.size()) {
      ++full_replays;  // possible only if the flip landed in slack (none)
    } else {
      ++partial_replays;
    }
  }
  // Every single-bit flip lands inside the header or a frame, so no trial
  // may have replayed everything — and plenty must stop partway.
  EXPECT_EQ(full_replays, 0);
  EXPECT_GT(partial_replays, 0);
  // A single-segment log never reports mid-log loss: a corrupt frame IS
  // the tail.
  EXPECT_EQ(data_losses, 0);
}

TEST(WalFuzzTest, TruncationsAtEveryBoundaryStopCleanly) {
  ScratchDir dir("cut");
  const uint64_t seed = FuzzSeed(99);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  const std::vector<WalRecord> truth = BuildLog(dir.path, &rng, 15);
  auto segments = ListWalSegments(dir.path).value();
  ASSERT_EQ(segments.size(), 1u);
  const std::string pristine = ReadFileToString(segments[0].path).value();

  int last_applied = -1;
  for (size_t cut = 0; cut <= pristine.size(); cut += 3) {
    ASSERT_TRUE(
        AtomicWriteFile(segments[0].path, pristine.substr(0, cut)).ok());
    const int applied = ReplayAndCheckPrefix(dir.path, truth);
    ASSERT_GE(applied, 0) << "cut at " << cut;  // truncation is a clean tail
    // Longer prefixes never surface fewer records.
    EXPECT_GE(applied, last_applied) << "cut at " << cut;
    last_applied = applied;
  }
}

TEST(WalFuzzTest, GarbageSegmentFilesNeverCrashReplay) {
  ScratchDir dir("garbage");
  const uint64_t seed = FuzzSeed(777);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(512);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    ASSERT_TRUE(
        AtomicWriteFile(dir.path + "/" + WalSegmentFileName(1), garbage).ok());
    uint64_t applied = 0;
    WalReplayStats stats;
    Status st = ReplayWal(
        dir.path, 0,
        [&](const WalRecord&) {
          ++applied;
          return Status::OK();
        },
        &stats);
    // Garbage can never decode into applied records (the CRC gate), and
    // must never crash; both clean-tail and DataLoss outcomes are fine.
    EXPECT_EQ(applied, 0u);
    if (!st.ok()) EXPECT_TRUE(st.IsDataLoss());
  }
}

TEST(WalFuzzTest, CorruptionAcrossSegmentsIsPrefixOrDataLoss) {
  // Multi-segment variant: corruption in any non-final segment must refuse
  // replay (DataLoss) rather than skip a hole; corruption in the final
  // segment is a clean tail.
  ScratchDir dir("multi");
  const uint64_t seed = FuzzSeed(2024);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  std::vector<WalRecord> truth;
  {
    WalOptions options;
    options.fsync = FsyncPolicy::kNever;
    options.segment_bytes = 256;
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 40; ++i) {
      WalRecord r = RandomRecord(&rng);
      Result<uint64_t> lsn = (*wal)->Log(r);
      ASSERT_TRUE(lsn.ok());
      r.lsn = *lsn;
      truth.push_back(std::move(r));
    }
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto segments = ListWalSegments(dir.path).value();
  ASSERT_GT(segments.size(), 2u);
  std::vector<std::string> pristine;
  for (const auto& s : segments) {
    pristine.push_back(ReadFileToString(s.path).value());
  }

  int data_losses = 0, clean_tails = 0;
  for (int trial = 0; trial < 150; ++trial) {
    // Restore all segments, then corrupt one byte of one of them.
    for (size_t i = 0; i < segments.size(); ++i) {
      ASSERT_TRUE(AtomicWriteFile(segments[i].path, pristine[i]).ok());
    }
    const size_t victim = rng.Uniform(segments.size());
    std::string corrupted = pristine[victim];
    corrupted[rng.Uniform(corrupted.size())] ^=
        static_cast<char>(1 << rng.Uniform(8));
    ASSERT_TRUE(AtomicWriteFile(segments[victim].path, corrupted).ok());

    const int applied = ReplayAndCheckPrefix(dir.path, truth);
    if (applied < 0) {
      ++data_losses;
      EXPECT_LT(victim, segments.size() - 1)
          << "corruption in the final segment must be a clean tail";
    } else {
      ++clean_tails;
      EXPECT_LT(static_cast<size_t>(applied), truth.size());
    }
  }
  EXPECT_GT(data_losses, 0);
  EXPECT_GT(clean_tails, 0);
}

}  // namespace
}  // namespace wal
}  // namespace chronicle
