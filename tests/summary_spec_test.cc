#include "views/summary_spec.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

TEST(SummarySpecTest, GroupBySchemaIsKeysThenAggregates) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "total"), AggSpec::Count()})
          .value();
  EXPECT_EQ(spec.kind(), SummarySpec::Kind::kGroupBy);
  ASSERT_EQ(spec.output_schema().num_fields(), 3u);
  EXPECT_EQ(spec.output_schema().field(0).name, "caller");
  EXPECT_EQ(spec.output_schema().field(1).name, "total");
  EXPECT_EQ(spec.output_schema().field(2).name, "count");
}

TEST(SummarySpecTest, EmptyGroupListIsGlobalGroup) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {}, {AggSpec::Count("n")}).value();
  EXPECT_TRUE(spec.key_columns().empty());
  EXPECT_EQ(spec.output_schema().num_fields(), 1u);
  EXPECT_EQ(spec.KeyOf(Tuple{Value(1), Value("NJ"), Value(5)}), Tuple{});
}

TEST(SummarySpecTest, GroupByRequiresAggregates) {
  EXPECT_FALSE(SummarySpec::GroupBy(CallSchema(), {"caller"}, {}).ok());
}

TEST(SummarySpecTest, GroupByUnknownColumnFails) {
  EXPECT_FALSE(
      SummarySpec::GroupBy(CallSchema(), {"nope"}, {AggSpec::Count()}).ok());
}

TEST(SummarySpecTest, KeyOfExtractsGroupColumns) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {"region", "caller"},
                           {AggSpec::Count()})
          .value();
  Tuple key = spec.KeyOf(Tuple{Value(7), Value("NJ"), Value(30)});
  EXPECT_EQ(key, (Tuple{Value("NJ"), Value(7)}));
}

TEST(SummarySpecTest, DistinctProjection) {
  SummarySpec spec =
      SummarySpec::DistinctProjection(CallSchema(), {"region"}).value();
  EXPECT_EQ(spec.kind(), SummarySpec::Kind::kDistinctProjection);
  EXPECT_EQ(spec.output_schema().num_fields(), 1u);
  EXPECT_TRUE(spec.aggregates().empty());
  EXPECT_EQ(spec.KeyOf(Tuple{Value(1), Value("NJ"), Value(5)}),
            (Tuple{Value("NJ")}));
}

TEST(SummarySpecTest, DistinctProjectionRequiresColumns) {
  EXPECT_FALSE(SummarySpec::DistinctProjection(CallSchema(), {}).ok());
  EXPECT_FALSE(SummarySpec::DistinctProjection(CallSchema(), {"nope"}).ok());
}

TEST(SummarySpecTest, ToStringRendering) {
  SummarySpec gb = SummarySpec::GroupBy(CallSchema(), {"caller"},
                                        {AggSpec::Sum("minutes")})
                       .value();
  EXPECT_NE(gb.ToString().find("GROUPBY[caller"), std::string::npos);
  SummarySpec dp =
      SummarySpec::DistinctProjection(CallSchema(), {"region"}).value();
  EXPECT_NE(dp.ToString().find("DISTINCT_PROJECT[region]"), std::string::npos);
}

}  // namespace
}  // namespace chronicle
