// End-to-end crash recovery: a WAL-attached database is killed (dropped)
// at various points — mid-log, after a checkpoint, with a torn final
// record, with a corrupt newest checkpoint — and Recover() must rebuild
// view-for-view identical state up to the last fully-persisted record.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "wal/recovery.h"
#include "wal/wal.h"
#include "wal/wal_file.h"
#include "workload/call_records.h"

namespace chronicle {
namespace wal {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() / ("chronicle_recovery_" + name +
                                           "_" +
                                           std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

// The shared DDL: one chronicle, one aggregation view over it, and a keyed
// relation receiving proactive updates.
void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(db->CreateChronicle("calls", CallRecordGenerator::RecordSchema())
                  .ok());
  ASSERT_TRUE(db->CreateRelation("cust",
                                 Schema({{"acct", DataType::kInt64},
                                         {"state", DataType::kString}}),
                                 "acct")
                  .ok());
  CaExprPtr scan = db->ScanChronicle("calls").value();
  ASSERT_TRUE(db->CreateView("minutes", scan,
                             SummarySpec::GroupBy(scan->schema(), {"caller"},
                                                  {AggSpec::Sum("minutes", "m"),
                                                   AggSpec::Count("n")})
                                 .value())
                  .ok());
}

// One deterministic "workload step" — the same call with the same step
// index produces the same mutation on any database, so a reference run and
// a logged run can be replayed tick-for-tick.
void ApplyStep(ChronicleDatabase* db, CallRecordGenerator* gen, int step) {
  if (step % 7 == 3) {
    ASSERT_TRUE(
        db->InsertInto("cust", Tuple{Value(step), Value("NJ")}).ok());
  } else if (step % 7 == 5) {
    ASSERT_TRUE(
        db->UpdateRelation("cust", Value(step - 2),
                           Tuple{Value(step - 2), Value("CA")})
            .ok());
  } else {
    ASSERT_TRUE(db->Append("calls", gen->NextBatch(3)).ok());
  }
}

// Reference state after `steps` workload steps, computed with no WAL.
struct Snapshot {
  std::vector<Tuple> minutes;
  std::vector<Tuple> cust;
  uint64_t last_sn = 0;
  uint64_t appends = 0;
};

Snapshot ReferenceAfter(int steps) {
  ChronicleDatabase db;
  ApplyDdl(&db);
  CallRecordGenerator gen;
  for (int step = 0; step < steps; ++step) ApplyStep(&db, &gen, step);
  Snapshot snap;
  snap.minutes = db.ScanView("minutes").value();
  snap.cust = db.GetRelation("cust").value()->rows();
  snap.last_sn = db.group().last_sn();
  snap.appends = db.appends_processed();
  return snap;
}

void ExpectMatches(const ChronicleDatabase& db, const Snapshot& snap) {
  EXPECT_EQ(db.ScanView("minutes").value(), snap.minutes);
  EXPECT_EQ(db.GetRelation("cust").value()->rows(), snap.cust);
  EXPECT_EQ(db.group().last_sn(), snap.last_sn);
  EXPECT_EQ(db.appends_processed(), snap.appends);
}

// Runs `steps` workload steps with a WAL attached, checkpointing after
// step `checkpoint_after` (if >= 0). The database is then dropped — the
// "crash" — leaving only the log directory behind.
void RunAndCrash(const std::string& dir, int steps, int checkpoint_after,
                 WalOptions options = {}) {
  auto wal = Wal::Open(dir, std::move(options));
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ChronicleDatabase db;
  ApplyDdl(&db);
  WalMutationLog log(wal->get(), &db);
  db.AttachMutationLog(&log);
  CallRecordGenerator gen;
  for (int step = 0; step < steps; ++step) {
    ApplyStep(&db, &gen, step);
    if (step == checkpoint_after) {
      ASSERT_TRUE((*wal)->WriteCheckpoint(db).ok());
    }
  }
  ASSERT_TRUE((*wal)->Close().ok());
  // `db` and the wal die here; the directory is all that survives.
}

TEST(RecoveryTest, ReplayFromGenesisWithoutCheckpoint) {
  ScratchDir dir("genesis");
  RunAndCrash(dir.path, 30, /*checkpoint_after=*/-1);

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->checkpoint_restored);
  EXPECT_EQ(report->watermark, 0u);
  EXPECT_EQ(report->replay.records_applied, 30u);
  ExpectMatches(recovered, ReferenceAfter(30));
}

TEST(RecoveryTest, CheckpointPlusTailReplay) {
  ScratchDir dir("ckpt_tail");
  RunAndCrash(dir.path, 40, /*checkpoint_after=*/24);

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_restored);
  EXPECT_EQ(report->watermark, 25u);  // 25 records logged by step 24
  EXPECT_EQ(report->replay.records_applied, 15u);
  EXPECT_EQ(report->recovered_lsn(), 40u);
  ExpectMatches(recovered, ReferenceAfter(40));
}

TEST(RecoveryTest, TornFinalRecordRecoversEverythingBeforeIt) {
  ScratchDir dir("torn");
  WalOptions options;
  options.fsync = FsyncPolicy::kNever;
  RunAndCrash(dir.path, 30, /*checkpoint_after=*/9, options);

  // Tear the last record: chop a few bytes off the newest segment, as a
  // crash mid-write would.
  auto segments = ListWalSegments(dir.path).value();
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back().path;
  std::string bytes = ReadFileToString(last).value();
  ASSERT_TRUE(
      AtomicWriteFile(last, std::string_view(bytes).substr(0, bytes.size() - 3))
          .ok());

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->replay.tail_truncated);
  EXPECT_EQ(report->recovered_lsn(), 29u);
  // State equals the uninterrupted run up to the last intact record.
  ExpectMatches(recovered, ReferenceAfter(29));
}

TEST(RecoveryTest, CorruptNewestCheckpointFallsBackToOlder) {
  ScratchDir dir("fallback");
  WalOptions options;
  options.checkpoints_to_keep = 2;
  RunAndCrash(dir.path, 20, /*checkpoint_after=*/5, options);
  // Second run in the same dir: resumes LSNs, writes a second checkpoint.
  {
    auto wal = Wal::Open(dir.path, options);
    ASSERT_TRUE(wal.ok());
    ChronicleDatabase db;
    ApplyDdl(&db);
    Result<RecoveryReport> report = Recover(dir.path, &db);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE((*wal)->WriteCheckpoint(db).ok());
    ASSERT_TRUE((*wal)->Close().ok());
  }
  auto checkpoints = ListCheckpoints(dir.path).value();
  ASSERT_EQ(checkpoints.size(), 2u);
  // Vandalize the newest checkpoint.
  std::string bytes = ReadFileToString(checkpoints.back().path).value();
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(AtomicWriteFile(checkpoints.back().path, bytes).ok());

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->checkpoints_skipped, 1u);
  EXPECT_EQ(report->checkpoint_path, checkpoints.front().path);
  ExpectMatches(recovered, ReferenceAfter(20));
}

TEST(RecoveryTest, ResumeLoggingAfterRecoveryAndRecoverAgain) {
  ScratchDir dir("resume");
  RunAndCrash(dir.path, 15, /*checkpoint_after=*/7);

  // Recover, re-attach a WAL in the same directory, and keep working.
  {
    ChronicleDatabase db;
    ApplyDdl(&db);
    Result<RecoveryReport> report = Recover(dir.path, &db);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    auto wal = Wal::Open(dir.path);
    ASSERT_TRUE(wal.ok());
    WalMutationLog log(wal->get(), &db);
    db.AttachMutationLog(&log);
    // Re-sync the generator past the batches the first run consumed (only
    // append steps draw from it).
    CallRecordGenerator gen;
    for (int step = 0; step < 15; ++step) {
      if (step % 7 != 3 && step % 7 != 5) gen.NextBatch(3);
    }
    for (int step = 15; step < 25; ++step) ApplyStep(&db, &gen, step);
    ASSERT_TRUE((*wal)->Close().ok());
  }

  ChronicleDatabase recovered;
  ApplyDdl(&recovered);
  Result<RecoveryReport> report = Recover(dir.path, &recovered);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ExpectMatches(recovered, ReferenceAfter(25));
}

TEST(RecoveryTest, RefusesUnpreparedDatabases) {
  ScratchDir dir("refuse");
  RunAndCrash(dir.path, 5, -1);

  // Non-fresh database (already has data).
  {
    ChronicleDatabase db;
    ApplyDdl(&db);
    CallRecordGenerator gen;
    ASSERT_TRUE(db.Append("calls", gen.NextBatch(1)).ok());
    EXPECT_TRUE(Recover(dir.path, &db).status().IsFailedPrecondition());
  }
  // Mutation log still attached (replay would re-log itself).
  {
    auto wal = Wal::Open(dir.path);
    ASSERT_TRUE(wal.ok());
    ChronicleDatabase db;
    ApplyDdl(&db);
    WalMutationLog log(wal->get(), &db);
    db.AttachMutationLog(&log);
    EXPECT_TRUE(Recover(dir.path, &db).status().IsFailedPrecondition());
    ASSERT_TRUE((*wal)->Close().ok());
  }
}

TEST(RecoveryTest, EmptyDirectoryRecoversToEmptyState) {
  ScratchDir dir("empty");
  ChronicleDatabase db;
  ApplyDdl(&db);
  Result<RecoveryReport> report = Recover(dir.path, &db);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->checkpoint_restored);
  EXPECT_EQ(report->recovered_lsn(), 0u);
  EXPECT_EQ(db.appends_processed(), 0u);
}

}  // namespace
}  // namespace wal
}  // namespace chronicle
