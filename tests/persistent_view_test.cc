#include "views/persistent_view.h"

#include <gtest/gtest.h>

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

CaExprPtr ScanCalls() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

std::vector<ChronicleRow> Rows(SeqNum sn, std::vector<Tuple> tuples) {
  std::vector<ChronicleRow> out;
  for (Tuple& t : tuples) out.push_back(ChronicleRow{sn, std::move(t)});
  return out;
}

std::unique_ptr<PersistentView> MinutesView(IndexMode mode = IndexMode::kHash) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "total"), AggSpec::Count("n")})
          .value();
  return PersistentView::Make(0, "minutes", ScanCalls(), spec, {}, mode).value();
}

class PersistentViewModeTest : public ::testing::TestWithParam<IndexMode> {};

TEST_P(PersistentViewModeTest, AccumulatesAcrossTicks) {
  auto view = MinutesView(GetParam());
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("NJ"), Value(5)},
                                        Tuple{Value(2), Value("NY"), Value(3)}}))
                  .ok());
  ASSERT_TRUE(
      view->ApplyDelta(Rows(2, {Tuple{Value(1), Value("NJ"), Value(7)}})).ok());

  EXPECT_EQ(view->size(), 2u);
  Tuple row = view->Lookup(Tuple{Value(1)}).value();
  EXPECT_EQ(row, (Tuple{Value(1), Value(12), Value(2)}));
  EXPECT_EQ(view->Lookup(Tuple{Value(2)}).value(),
            (Tuple{Value(2), Value(3), Value(1)}));
  EXPECT_EQ(view->ticks_applied(), 2u);
  EXPECT_EQ(view->delta_rows_applied(), 3u);
}

TEST_P(PersistentViewModeTest, LookupMissingGroupIsNotFound) {
  auto view = MinutesView(GetParam());
  EXPECT_TRUE(view->Lookup(Tuple{Value(99)}).status().IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(BothModes, PersistentViewModeTest,
                         ::testing::Values(IndexMode::kHash, IndexMode::kOrdered),
                         [](const ::testing::TestParamInfo<IndexMode>& info) {
                           return info.param == IndexMode::kHash ? "Hash"
                                                                 : "Ordered";
                         });

TEST(PersistentViewTest, MakeValidatesPlan) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {}, {AggSpec::Count()}).value();
  CaExprPtr bad = CaExpr::ChronicleCross(ScanCalls(), ScanCalls()).value();
  SummarySpec bad_spec =
      SummarySpec::GroupBy(bad->schema(), {}, {AggSpec::Count()}).value();
  EXPECT_FALSE(PersistentView::Make(0, "v", bad, bad_spec).ok());
  EXPECT_FALSE(PersistentView::Make(0, "v", nullptr, spec).ok());
}

TEST(PersistentViewTest, ComplexityReportAttached) {
  auto view = MinutesView();
  EXPECT_EQ(view->complexity().ca_class, CaClass::kCa1);
  EXPECT_EQ(view->complexity().im_class, ImClass::kImConstant);
}

TEST(PersistentViewTest, ScanVisitsFinalizedRows) {
  auto view = MinutesView();
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("NJ"), Value(5)},
                                        Tuple{Value(2), Value("NY"), Value(3)}}))
                  .ok());
  int64_t total = 0;
  ASSERT_TRUE(view->Scan([&](const Tuple& row) { total += row[1].int64(); }).ok());
  EXPECT_EQ(total, 8);
}

TEST(PersistentViewTest, OrderedScanSortsByKey) {
  auto view = MinutesView(IndexMode::kOrdered);
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(3), Value("x"), Value(1)},
                                        Tuple{Value(1), Value("x"), Value(1)},
                                        Tuple{Value(2), Value("x"), Value(1)}}))
                  .ok());
  std::vector<int64_t> keys;
  ASSERT_TRUE(
      view->Scan([&](const Tuple& row) { keys.push_back(row[0].int64()); }).ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3}));
}

TEST(PersistentViewTest, ComputedColumnAppended) {
  // Premier status from a miles total (the Example 2.1 scenario).
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "total")})
          .value();
  std::vector<std::pair<ScalarExprPtr, ScalarExprPtr>> branches;
  branches.emplace_back(Ge(Col("total"), Lit(Value(100))), Lit(Value("gold")));
  branches.emplace_back(Ge(Col("total"), Lit(Value(10))), Lit(Value("silver")));
  std::vector<ComputedColumn> computed;
  computed.push_back(ComputedColumn{
      "status", ScalarExpr::Case(std::move(branches), Lit(Value("bronze")))});
  auto view = PersistentView::Make(0, "status", ScanCalls(), spec,
                                   std::move(computed))
                  .value();
  ASSERT_TRUE(
      view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("x"), Value(150)},
                                Tuple{Value(2), Value("x"), Value(50)},
                                Tuple{Value(3), Value("x"), Value(5)}}))
          .ok());
  EXPECT_EQ(view->Lookup(Tuple{Value(1)}).value()[2], Value("gold"));
  EXPECT_EQ(view->Lookup(Tuple{Value(2)}).value()[2], Value("silver"));
  EXPECT_EQ(view->Lookup(Tuple{Value(3)}).value()[2], Value("bronze"));
  EXPECT_EQ(view->output_schema().num_fields(), 3u);
}

TEST(PersistentViewTest, DistinctProjectionViewTracksDistinctRows) {
  SummarySpec spec =
      SummarySpec::DistinctProjection(CallSchema(), {"region"}).value();
  auto view = PersistentView::Make(0, "regions", ScanCalls(), spec).value();
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("NJ"), Value(5)},
                                        Tuple{Value(2), Value("NJ"), Value(3)}}))
                  .ok());
  ASSERT_TRUE(
      view->ApplyDelta(Rows(2, {Tuple{Value(3), Value("NY"), Value(1)}})).ok());
  EXPECT_EQ(view->size(), 2u);
  EXPECT_EQ(view->Lookup(Tuple{Value("NJ")}).value(), (Tuple{Value("NJ")}));
}

TEST(PersistentViewTest, GlobalGroupView) {
  SummarySpec spec =
      SummarySpec::GroupBy(CallSchema(), {}, {AggSpec::Count("n")}).value();
  auto view = PersistentView::Make(0, "total", ScanCalls(), spec).value();
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("x"), Value(1)},
                                        Tuple{Value(2), Value("x"), Value(1)}}))
                  .ok());
  EXPECT_EQ(view->Lookup(Tuple{}).value(), (Tuple{Value(2)}));
}

TEST(PersistentViewTest, MemoryFootprintGrowsWithGroups) {
  auto view = MinutesView();
  size_t empty = view->MemoryFootprint();
  ASSERT_TRUE(view->ApplyDelta(Rows(1, {Tuple{Value(1), Value("x"), Value(1)},
                                        Tuple{Value(2), Value("x"), Value(1)}}))
                  .ok());
  EXPECT_GT(view->MemoryFootprint(), empty);
}

}  // namespace
}  // namespace chronicle
