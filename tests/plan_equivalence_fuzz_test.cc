// Fuzz equivalence: the compiled DeltaPlan executor must be byte-identical
// to the DeltaEngine interpreter — same rows, same order, same errors — on
// randomized chronicle-algebra expressions. Two layers:
//
//   * Expression level: a depth-bounded random generator composes all ten
//     legal CA operators (with schema-compatible Union/Difference operands
//     and shared-subexpression DAGs by construction) and drives both
//     engines over randomized append events, asserting identical
//     ChronicleRow output tick by tick.
//   * Database level: a mixed-shape view catalog is maintained under every
//     routing mode x thread count x engine combination; all runs must
//     produce identical view contents, and within a routing mode identical
//     MaintenanceReport counters.
//
// Seeded through the CHRONICLE_FUZZ_SEED replay scheme: CI varies the seed
// per run, failures print the value, and exporting it reproduces locally.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/delta_engine.h"
#include "common/random.h"
#include "db/database.h"
#include "exec/plan_compiler.h"
#include "storage/relation.h"

namespace chronicle {
namespace {

constexpr int64_t kAccounts = 16;
const char* const kStrings[] = {"NJ", "NY", "CA", "TX"};

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

Relation MakeCust(Rng* rng) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  EXPECT_TRUE(rel.CreateSecondaryIndex("acct").ok());
  for (int64_t acct = 0; acct < kAccounts; ++acct) {
    EXPECT_TRUE(
        rel.Insert(Tuple{Value(acct), Value(kStrings[rng->Uniform(4)])}).ok());
  }
  return rel;
}

// One random comparison over a random column, typed by the column.
ScalarExprPtr RandomComparison(Rng* rng, const Schema& schema) {
  // ScalarExprPtr is move-only: draw the operands fresh in each branch.
  const Field& f = schema.field(rng->Uniform(schema.num_fields()));
  if (f.type == DataType::kString) {
    Value lit(kStrings[rng->Uniform(4)]);
    return rng->Uniform(2) ? Eq(Col(f.name), Lit(lit)) : Ne(Col(f.name), Lit(lit));
  }
  // Int64 and the double outputs of Avg both compare numerically.
  Value lit(static_cast<int64_t>(rng->Uniform(16)));
  switch (rng->Uniform(4)) {
    case 0: return Eq(Col(f.name), Lit(lit));
    case 1: return Ne(Col(f.name), Lit(lit));
    case 2: return Gt(Col(f.name), Lit(lit));
    default: return Le(Col(f.name), Lit(lit));
  }
}

ScalarExprPtr RandomPredicate(Rng* rng, const Schema& schema) {
  ScalarExprPtr pred = RandomComparison(rng, schema);
  if (rng->Bernoulli(0.3)) {
    ScalarExprPtr other = RandomComparison(rng, schema);
    pred = rng->Uniform(2)
               ? ScalarExpr::And(std::move(pred), std::move(other))
               : ScalarExpr::Or(std::move(pred), std::move(other));
  }
  return pred;
}

// Depth-bounded random CA expression over two chronicles and a keyed
// relation. Factories that reject a particular draw (column-name
// collisions after repeated relation joins, say) fall back to the child,
// so every draw yields a valid expression.
class ExprGen {
 public:
  ExprGen(Rng* rng, const Relation* rel) : rng_(rng), rel_(rel) {
    scans_[0] = CaExpr::Scan(0, "calls", CallSchema()).value();
    scans_[1] = CaExpr::Scan(1, "calls_b", CallSchema()).value();
  }

  CaExprPtr Random(int depth) {
    if (depth <= 0) return scans_[rng_->Uniform(2)];
    switch (rng_->Uniform(10)) {
      case 0:
        return scans_[rng_->Uniform(2)];
      case 1: {
        CaExprPtr child = Random(depth - 1);
        return CaExpr::Select(child, RandomPredicate(rng_, child->schema()))
            .value();
      }
      case 2: {
        CaExprPtr child = Random(depth - 1);
        return Fallback(CaExpr::Project(child, RandomColumns(child)), child);
      }
      case 3: {
        CaExprPtr left = Random(depth - 1);
        return Fallback(CaExpr::SeqJoin(left, Random(depth - 1)), left);
      }
      case 4:
      case 5: {
        // Operands over a shared base keep the schemas identical (the
        // Union/Difference admission rule) and, when an operand IS the
        // base, hand the compiler a DAG edge to resolve.
        CaExprPtr base = Random(depth - 1);
        CaExprPtr left = MaybeSelect(base);
        CaExprPtr right = MaybeSelect(base);
        Result<CaExprPtr> combined = rng_->Uniform(2) == 0
                                         ? CaExpr::Union(left, right)
                                         : CaExpr::Difference(left, right);
        return Fallback(std::move(combined), base);
      }
      case 6: {
        CaExprPtr child = Random(depth - 1);
        return Fallback(RandomGroupBy(child), child);
      }
      case 7: {
        CaExprPtr child = Random(depth - 1);
        return Fallback(CaExpr::RelCross(child, rel_), child);
      }
      case 8: {
        CaExprPtr child = Random(depth - 1);
        Result<size_t> col = RandomInt64Column(child);
        if (!col.ok()) return child;
        return Fallback(
            CaExpr::RelKeyJoin(child, rel_,
                               child->schema().field(col.value()).name),
            child);
      }
      default: {
        CaExprPtr child = Random(depth - 1);
        Result<size_t> col = RandomInt64Column(child);
        if (!col.ok()) return child;
        // acct is the (unique) key, so every probe matches at most one
        // relation row: bound 1 is an integrity constraint that holds.
        return Fallback(
            CaExpr::RelBoundedJoin(child, rel_,
                                   child->schema().field(col.value()).name,
                                   "acct", 1),
            child);
      }
    }
  }

 private:
  static CaExprPtr Fallback(Result<CaExprPtr> made, CaExprPtr child) {
    return made.ok() ? std::move(made).value() : std::move(child);
  }

  CaExprPtr MaybeSelect(CaExprPtr base) {
    if (rng_->Uniform(2) == 0) return base;
    return CaExpr::Select(base, RandomPredicate(rng_, base->schema())).value();
  }

  std::vector<std::string> RandomColumns(const CaExprPtr& child) {
    const Schema& schema = child->schema();
    std::vector<std::string> cols;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (rng_->Bernoulli(0.5)) cols.push_back(schema.field(i).name);
    }
    if (cols.empty()) {
      cols.push_back(
          schema.field(rng_->Uniform(schema.num_fields())).name);
    }
    return cols;
  }

  Result<size_t> RandomInt64Column(const CaExprPtr& child) {
    const Schema& schema = child->schema();
    std::vector<size_t> candidates;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (schema.field(i).type == DataType::kInt64) candidates.push_back(i);
    }
    if (candidates.empty()) {
      return Status::NotFound("no int64 column");
    }
    return candidates[rng_->Uniform(candidates.size())];
  }

  Result<CaExprPtr> RandomGroupBy(const CaExprPtr& child) {
    const Schema& schema = child->schema();
    std::vector<std::string> group_cols;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      if (rng_->Bernoulli(0.4)) group_cols.push_back(schema.field(i).name);
    }
    std::vector<AggSpec> aggs;
    const size_t num_aggs = 1 + rng_->Uniform(2);
    for (size_t a = 0; a < num_aggs; ++a) {
      const std::string out = "z_agg" + std::to_string(agg_counter_++);
      std::vector<std::string> numeric;
      for (size_t i = 0; i < schema.num_fields(); ++i) {
        if (schema.field(i).type != DataType::kString) {
          numeric.push_back(schema.field(i).name);
        }
      }
      if (numeric.empty() || rng_->Uniform(5) == 0) {
        aggs.push_back(AggSpec::Count(out));
        continue;
      }
      const std::string& in = numeric[rng_->Uniform(numeric.size())];
      switch (rng_->Uniform(4)) {
        case 0: aggs.push_back(AggSpec::Sum(in, out)); break;
        case 1: aggs.push_back(AggSpec::Min(in, out)); break;
        case 2: aggs.push_back(AggSpec::Max(in, out)); break;
        default: aggs.push_back(AggSpec::Avg(in, out)); break;
      }
    }
    return CaExpr::GroupBySeq(child, std::move(group_cols), std::move(aggs));
  }

  Rng* rng_;
  const Relation* rel_;
  CaExprPtr scans_[2];
  int agg_counter_ = 0;
};

std::vector<Tuple> RandomBatch(Rng* rng, uint64_t max_tuples) {
  std::vector<Tuple> out;
  const uint64_t n = rng->Uniform(max_tuples + 1);
  for (uint64_t i = 0; i < n; ++i) {
    // Small domains so dedupe, difference, and grouping actually collide.
    out.push_back(Tuple{Value(static_cast<int64_t>(rng->Uniform(kAccounts))),
                        Value(kStrings[rng->Uniform(4)]),
                        Value(static_cast<int64_t>(rng->Uniform(20)))});
  }
  return out;
}

TEST(PlanEquivalenceFuzzTest, RandomExpressionsMatchInterpreterTickByTick) {
  const uint64_t seed = FuzzSeed(20260807);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);
  Rng rng(seed);
  Relation rel = MakeCust(&rng);
  ExprGen gen(&rng, &rel);

  DeltaEngine engine;
  // ONE scratch per engine across all expressions and ticks: this is
  // exactly the reuse pattern ViewManager relies on, so stale state in any
  // retained buffer would surface here as a cross-expression mismatch.
  // Triangulation: interpreter vs row-compiled vs columnar — the scratch
  // toggle is the only difference between the two compiled legs.
  exec::PlanScratch scratch;  // columnar (the default)
  exec::PlanScratch row_scratch;
  row_scratch.set_columnar_enabled(false);

  for (int round = 0; round < 48; ++round) {
    SCOPED_TRACE(testing::Message() << "round=" << round);
    CaExprPtr expr = gen.Random(1 + static_cast<int>(rng.Uniform(4)));
    SCOPED_TRACE(testing::Message() << "expr=\n" << expr->ToString());
    Result<exec::DeltaPlanPtr> plan = exec::CompileDeltaPlan(expr);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    for (SeqNum sn = 1; sn <= 10; ++sn) {
      SCOPED_TRACE(testing::Message() << "sn=" << sn);
      AppendEvent event;
      event.sn = sn;
      event.chronon = static_cast<Chronon>(sn);
      event.inserts.emplace_back(0, RandomBatch(&rng, 4));
      if (rng.Bernoulli(0.7)) {
        event.inserts.emplace_back(1, RandomBatch(&rng, 3));
      }

      Result<std::vector<ChronicleRow>> interpreted =
          engine.ComputeDelta(*expr, event, nullptr, nullptr);
      // Row-compiled leg first (it shares nothing with the columnar
      // scratch), then the columnar leg; its rows stay valid until that
      // scratch's next execution.
      Result<const std::vector<ChronicleRow>*> row_compiled =
          plan.value()->ExecuteToRows(event, &row_scratch, nullptr);
      Result<const std::vector<ChronicleRow>*> compiled =
          plan.value()->ExecuteToRows(event, &scratch, nullptr);
      ASSERT_EQ(interpreted.ok(), compiled.ok())
          << (interpreted.ok() ? compiled.status().ToString()
                               : interpreted.status().ToString());
      ASSERT_EQ(interpreted.ok(), row_compiled.ok())
          << (interpreted.ok() ? row_compiled.status().ToString()
                               : interpreted.status().ToString());
      if (!interpreted.ok()) {
        EXPECT_EQ(interpreted.status().message(),
                  compiled.status().message());
        EXPECT_EQ(interpreted.status().message(),
                  row_compiled.status().message());
        continue;
      }
      const std::vector<ChronicleRow>& rows = *compiled.value();
      const std::vector<ChronicleRow>& row_rows = *row_compiled.value();
      ASSERT_EQ(interpreted.value().size(), rows.size());
      ASSERT_EQ(interpreted.value().size(), row_rows.size());
      for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(interpreted.value()[i], rows[i])
            << "row " << i << ": interpreter "
            << ChronicleRowToString(interpreted.value()[i]) << " vs columnar "
            << ChronicleRowToString(rows[i]);
        EXPECT_EQ(interpreted.value()[i], row_rows[i])
            << "row " << i << ": interpreter "
            << ChronicleRowToString(interpreted.value()[i])
            << " vs row-compiled " << ChronicleRowToString(row_rows[i]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Database level: routing modes x thread counts x engines.

void ApplyDdl(ChronicleDatabase* db) {
  ASSERT_TRUE(
      db->CreateChronicle("calls", CallSchema(), RetentionPolicy::None()).ok());
  ASSERT_TRUE(db->CreateRelation("cust", CustSchema(), "acct").ok());
  Relation* cust = db->GetRelation("cust").value();
  ASSERT_TRUE(cust->CreateSecondaryIndex("acct").ok());
  Rng rel_rng(7);
  for (int64_t acct = 0; acct < kAccounts; ++acct) {
    ASSERT_TRUE(db->InsertInto(
                      "cust", Tuple{Value(acct),
                                    Value(kStrings[rel_rng.Uniform(4)])})
                    .ok());
  }

  CaExprPtr scan = db->ScanChronicle("calls").value();
  for (int64_t v = 0; v < 36; ++v) {
    CaExprPtr guarded =
        CaExpr::Select(scan, Eq(Col("region"),
                                Lit(Value(kStrings[v % 4]))))
            .value();
    CaExprPtr plan;
    switch (v % 6) {
      case 0:  // unguarded scan
        plan = scan;
        break;
      case 1:  // eq-guarded (exercises kGuards / kEqIndex routing)
        plan = guarded;
        break;
      case 2:  // relation key join under a guard
        plan = CaExpr::RelKeyJoin(guarded, db->GetRelation("cust").value(),
                                  "caller")
                   .value();
        break;
      case 3:  // DAG: union of two selections over the shared scan
        plan = CaExpr::Union(
                   guarded,
                   CaExpr::Select(scan, Ge(Col("minutes"), Lit(Value(v % 7))))
                       .value())
                   .value();
        break;
      case 4:  // self sequence-join through the shared scan
        plan = CaExpr::SeqJoin(scan, guarded).value();
        break;
      default:  // bounded join with the key-uniqueness bound
        plan = CaExpr::RelBoundedJoin(scan, db->GetRelation("cust").value(),
                                      "caller", "acct", 1)
                   .value();
        break;
    }
    SummarySpec spec =
        SummarySpec::GroupBy(plan->schema(), {"caller"},
                             {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")})
            .value();
    ASSERT_TRUE(db->CreateView("view_" + std::to_string(v), plan, spec).ok());
  }
}

struct RunResult {
  std::vector<MaintenanceReport> reports;
  std::vector<std::vector<Tuple>> views;
};

RunResult DriveWorkload(ChronicleDatabase* db, uint64_t seed) {
  RunResult result;
  Rng rng(seed);
  Chronon chronon = 0;
  for (int tick = 0; tick < 20; ++tick) {
    std::vector<Tuple> batch = RandomBatch(&rng, 6);
    // At least one row per tick so every view shape sees delta traffic.
    batch.push_back(Tuple{Value(int64_t{tick % kAccounts}),
                          Value(kStrings[tick % 4]), Value(int64_t{tick})});
    Result<AppendResult> r = db->Append("calls", std::move(batch), ++chronon);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    result.reports.push_back(r->maintenance);
  }
  for (int64_t v = 0; v < 36; ++v) {
    result.views.push_back(db->ScanView("view_" + std::to_string(v)).value());
  }
  return result;
}

TEST(PlanEquivalenceFuzzTest, DatabaseAgreesAcrossModesThreadsAndEngines) {
  const uint64_t seed = FuzzSeed(424242);
  SCOPED_TRACE(testing::Message() << "CHRONICLE_FUZZ_SEED=" << seed);

  const RoutingMode kModes[] = {RoutingMode::kCheckAll, RoutingMode::kGuards,
                                RoutingMode::kEqIndex};
  std::vector<RunResult> per_mode_reference;
  for (RoutingMode mode : kModes) {
    // Reference for this mode: serial interpreter.
    ChronicleDatabase reference_db(mode);
    ApplyDdl(&reference_db);
    MaintenanceOptions interpreted;
    interpreted.num_threads = 1;
    interpreted.use_compiled_plans = false;
    reference_db.ReconfigureMaintenance(interpreted);
    RunResult reference = DriveWorkload(&reference_db, seed);

    for (size_t threads : {1u, 2u, 8u}) {
      // 0 = interpreter, 1 = row-compiled, 2 = columnar.
      for (int eng : {0, 1, 2}) {
        if (threads == 1 && eng == 0) continue;  // that IS the reference
        SCOPED_TRACE(testing::Message()
                     << "mode=" << static_cast<int>(mode)
                     << " threads=" << threads << " engine=" << eng);
        ChronicleDatabase db(mode);
        ApplyDdl(&db);
        MaintenanceOptions options;
        options.num_threads = threads;
        options.min_views_per_task = 1;
        options.use_compiled_plans = eng != 0;
        options.use_columnar_kernels = eng == 2;
        db.ReconfigureMaintenance(options);
        RunResult run = DriveWorkload(&db, seed);

        // Within a mode, the routing decisions — and so every report
        // counter — must be engine- and thread-independent.
        ASSERT_EQ(reference.reports.size(), run.reports.size());
        for (size_t i = 0; i < run.reports.size(); ++i) {
          EXPECT_EQ(reference.reports[i].views_considered,
                    run.reports[i].views_considered);
          EXPECT_EQ(reference.reports[i].views_updated,
                    run.reports[i].views_updated);
          EXPECT_EQ(reference.reports[i].views_skipped,
                    run.reports[i].views_skipped);
          EXPECT_EQ(reference.reports[i].delta_rows_applied,
                    run.reports[i].delta_rows_applied);
        }
        ASSERT_EQ(reference.views.size(), run.views.size());
        for (size_t v = 0; v < run.views.size(); ++v) {
          SCOPED_TRACE(testing::Message() << "view=" << v);
          EXPECT_EQ(reference.views[v], run.views[v]);
        }
      }
    }
    per_mode_reference.push_back(std::move(reference));
  }
  // Routing only prunes provably-empty work: contents agree across modes.
  ASSERT_EQ(per_mode_reference.size(), 3u);
  EXPECT_EQ(per_mode_reference[0].views, per_mode_reference[1].views);
  EXPECT_EQ(per_mode_reference[0].views, per_mode_reference[2].views);
}

}  // namespace
}  // namespace chronicle
