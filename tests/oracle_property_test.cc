// Property tests: for randomized streams and a zoo of view shapes, the
// incrementally maintained PersistentView must equal a from-scratch
// recomputation by the naive relational engine after every batch of ticks.
//
// This is the library's strongest correctness statement: the Theorem 4.2
// delta rules (which never read the chronicle) agree with the definitional
// semantics (which read all of it), including under proactive relation
// updates mid-stream (the implicit temporal join, via RelationHistory).

#include <gtest/gtest.h>

#include <memory>

#include "baseline/naive_engine.h"
#include "common/random.h"
#include "views/view_manager.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

const char* kRegions[] = {"NJ", "NY", "CA", "TX"};
const char* kStates[] = {"NJ", "NY", "CA"};

struct Scenario {
  const char* name;
  // Builds (plan, spec) from the two chronicle scans and the relation.
  std::function<std::pair<CaExprPtr, SummarySpec>(
      CaExprPtr scan_a, CaExprPtr scan_b, const Relation* rel)>
      build;
  bool uses_second_chronicle = false;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> scenarios;

  scenarios.push_back(
      {"Sca1GroupBy",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         CaExprPtr plan =
             CaExpr::Select(a, Gt(Col("minutes"), Lit(Value(30)))).value();
         SummarySpec spec =
             SummarySpec::GroupBy(plan->schema(), {"caller"},
                                  {AggSpec::Sum("minutes", "total"),
                                   AggSpec::Count("n"),
                                   AggSpec::Max("minutes", "longest")})
                 .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"Sca1DistinctProjection",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         CaExprPtr plan = CaExpr::Project(a, {"region", "caller"}).value();
         SummarySpec spec =
             SummarySpec::DistinctProjection(plan->schema(), {"region"}).value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"ScaJoinKeyJoin",
       [](CaExprPtr a, CaExprPtr, const Relation* rel) {
         CaExprPtr plan = CaExpr::RelKeyJoin(a, rel, "caller").value();
         SummarySpec spec =
             SummarySpec::GroupBy(plan->schema(), {"state"},
                                  {AggSpec::Sum("minutes", "total"),
                                   AggSpec::Count("n")})
                 .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"ScaFullCross",
       [](CaExprPtr a, CaExprPtr, const Relation* rel) {
         CaExprPtr plan = CaExpr::RelCross(a, rel).value();
         SummarySpec spec =
             SummarySpec::GroupBy(plan->schema(), {"state"},
                                  {AggSpec::Count("n")})
                 .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"UnionOfSelections",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         CaExprPtr nj =
             CaExpr::Select(a, Eq(Col("region"), Lit(Value("NJ")))).value();
         CaExprPtr big =
             CaExpr::Select(a, Gt(Col("minutes"), Lit(Value(80)))).value();
         CaExprPtr plan = CaExpr::Union(nj, big).value();
         SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                                 {AggSpec::Count("n")})
                                .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"DifferenceOfSelections",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         CaExprPtr nj =
             CaExpr::Select(a, Eq(Col("region"), Lit(Value("NJ")))).value();
         CaExprPtr plan = CaExpr::Difference(a, nj).value();
         SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"region"},
                                                 {AggSpec::Count("n")})
                                .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"SeqJoinTwoChronicles",
       [](CaExprPtr a, CaExprPtr b, const Relation*) {
         CaExprPtr plan = CaExpr::SeqJoin(a, b).value();
         SummarySpec spec =
             SummarySpec::GroupBy(plan->schema(), {"caller"},
                                  {AggSpec::Sum("minutes", "total")})
                 .value();
         return std::make_pair(plan, spec);
       },
       true});

  scenarios.push_back(
      {"GroupBySeqThenSummarize",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         CaExprPtr per_tick =
             CaExpr::GroupBySeq(a, {"caller"},
                                {AggSpec::Sum("minutes", "tick_total")})
                 .value();
         SummarySpec spec =
             SummarySpec::GroupBy(per_tick->schema(), {"caller"},
                                  {AggSpec::Max("tick_total", "best_tick"),
                                   AggSpec::Count("ticks")})
                 .value();
         return std::make_pair(per_tick, spec);
       },
       false});

  scenarios.push_back(
      {"ScaJoinBounded",
       [](CaExprPtr a, CaExprPtr, const Relation* rel) {
         // The generalized Definition 4.2 join: equijoin through the
         // secondary index on acct (unique here, so bound 1 holds).
         CaExprPtr plan =
             CaExpr::RelBoundedJoin(a, rel, "caller", "acct", 1).value();
         SummarySpec spec =
             SummarySpec::GroupBy(plan->schema(), {"state"},
                                  {AggSpec::Sum("minutes", "total")})
                 .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"DistinctProjectionOverJoin",
       [](CaExprPtr a, CaExprPtr, const Relation* rel) {
         CaExprPtr plan = CaExpr::RelKeyJoin(a, rel, "caller").value();
         SummarySpec spec = SummarySpec::DistinctProjection(
                                plan->schema(), {"region", "state"})
                                .value();
         return std::make_pair(plan, spec);
       },
       false});

  scenarios.push_back(
      {"GlobalAggregates",
       [](CaExprPtr a, CaExprPtr, const Relation*) {
         SummarySpec spec =
             SummarySpec::GroupBy(a->schema(), {},
                                  {AggSpec::Count("n"),
                                   AggSpec::Sum("minutes", "total"),
                                   AggSpec::Min("minutes", "lo"),
                                   AggSpec::Avg("minutes", "mean")})
                 .value();
         return std::make_pair(a, spec);
       },
       false});

  return scenarios;
}

struct TestParam {
  size_t scenario;
  IndexMode index_mode;
  uint64_t seed;
};

class OraclePropertyTest : public ::testing::TestWithParam<TestParam> {};

TEST_P(OraclePropertyTest, IncrementalMatchesFullRecompute) {
  const TestParam param = GetParam();
  const Scenario scenario = Scenarios()[param.scenario];

  ChronicleGroup group;
  ChronicleId calls = group.CreateChronicle("calls", CallSchema()).value();
  ChronicleId calls_b = group.CreateChronicle("calls_b", CallSchema()).value();
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  RelationHistory history;

  Rng rng(param.seed);
  const int64_t kAccounts = 12;
  ASSERT_TRUE(rel.CreateSecondaryIndex("acct").ok());  // for the bounded join
  for (int64_t acct = 0; acct < kAccounts; ++acct) {
    ASSERT_TRUE(
        rel.Insert(Tuple{Value(acct), Value(kStates[rng.Uniform(3)])}).ok());
  }
  history.Snapshot(rel, 1);

  auto [plan, spec] = scenario.build(
      CaExpr::Scan(*group.GetChronicle(calls).value()).value(),
      CaExpr::Scan(*group.GetChronicle(calls_b).value()).value(), &rel);
  auto view =
      PersistentView::Make(0, scenario.name, plan, spec, {}, param.index_mode)
          .value();

  DeltaEngine delta_engine;
  NaiveEngine oracle(&group, &history);

  auto random_call = [&]() {
    return Tuple{Value(static_cast<int64_t>(rng.Uniform(kAccounts))),
                 Value(kRegions[rng.Uniform(4)]),
                 Value(static_cast<int64_t>(rng.Uniform(120)))};
  };

  for (int tick = 0; tick < 240; ++tick) {
    // Occasional proactive relation update (affects only future SNs).
    if (rng.Bernoulli(0.08)) {
      int64_t acct = static_cast<int64_t>(rng.Uniform(kAccounts));
      ASSERT_TRUE(
          rel.UpdateByKey(Value(acct),
                          Tuple{Value(acct), Value(kStates[rng.Uniform(3)])})
              .ok());
      history.Snapshot(rel, group.last_sn() + 1);
    }

    // Random batch, possibly multi-chronicle.
    std::vector<std::pair<ChronicleId, std::vector<Tuple>>> inserts;
    std::vector<Tuple> batch_a;
    const size_t batch = 1 + rng.Uniform(3);
    for (size_t i = 0; i < batch; ++i) batch_a.push_back(random_call());
    inserts.emplace_back(calls, std::move(batch_a));
    if (scenario.uses_second_chronicle && rng.Bernoulli(0.7)) {
      std::vector<Tuple> batch_b;
      const size_t nb = 1 + rng.Uniform(2);
      for (size_t i = 0; i < nb; ++i) batch_b.push_back(random_call());
      inserts.emplace_back(calls_b, std::move(batch_b));
    }
    AppendEvent event =
        group.AppendMulti(std::move(inserts), static_cast<Chronon>(tick))
            .value();

    auto delta = delta_engine.ComputeDelta(*plan, event);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(view->ApplyDelta(*delta).ok());

    if (tick % 20 != 19) continue;
    // Oracle: recompute the whole view from the stored chronicle + history.
    auto expected = oracle.EvaluateSummary(*plan, spec);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    std::vector<Tuple> actual;
    ASSERT_TRUE(
        view->Scan([&](const Tuple& row) { actual.push_back(row); }).ok());
    SortTuples(&actual);
    ASSERT_EQ(actual.size(), expected->size())
        << scenario.name << " tick " << tick;
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i], (*expected)[i])
          << scenario.name << " tick " << tick << " row " << i << ": "
          << TupleToString(actual[i]) << " vs " << TupleToString((*expected)[i]);
    }
  }
}

std::vector<TestParam> AllParams() {
  std::vector<TestParam> params;
  const size_t num_scenarios = Scenarios().size();
  for (size_t s = 0; s < num_scenarios; ++s) {
    for (IndexMode mode : {IndexMode::kHash, IndexMode::kOrdered}) {
      for (uint64_t seed : {11u, 97u}) {
        params.push_back(TestParam{s, mode, seed});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OraclePropertyTest, ::testing::ValuesIn(AllParams()),
    [](const ::testing::TestParamInfo<TestParam>& info) {
      const Scenario scenario = Scenarios()[info.param.scenario];
      std::string name = scenario.name;
      name += info.param.index_mode == IndexMode::kHash ? "_Hash" : "_Ordered";
      name += "_Seed" + std::to_string(info.param.seed);
      return name;
    });

// The ViewManager path (routing + guards) must agree with direct
// maintenance, for every routing mode.
TEST(OracleRoutingTest, ViewManagerModesAgreeWithOracle) {
  for (RoutingMode mode :
       {RoutingMode::kCheckAll, RoutingMode::kGuards, RoutingMode::kEqIndex}) {
    ChronicleGroup group;
    ChronicleId calls = group.CreateChronicle("calls", CallSchema()).value();
    ViewManager manager(mode);
    NaiveEngine oracle(&group);

    CaExprPtr scan = CaExpr::Scan(*group.GetChronicle(calls).value()).value();
    std::vector<std::pair<CaExprPtr, SummarySpec>> defs;
    for (const char* region : kRegions) {
      CaExprPtr plan =
          CaExpr::Select(scan, Eq(Col("region"), Lit(Value(region)))).value();
      SummarySpec spec = SummarySpec::GroupBy(plan->schema(), {"caller"},
                                              {AggSpec::Sum("minutes", "m")})
                             .value();
      ASSERT_TRUE(
          manager
              .AddView(PersistentView::Make(0, std::string("v_") + region,
                                            plan, spec)
                           .value())
              .ok());
      defs.emplace_back(plan, spec);
    }

    Rng rng(3 + static_cast<uint64_t>(mode));
    for (int tick = 0; tick < 150; ++tick) {
      AppendEvent event =
          group
              .Append(calls,
                      {Tuple{Value(static_cast<int64_t>(rng.Uniform(6))),
                             Value(kRegions[rng.Uniform(4)]),
                             Value(static_cast<int64_t>(rng.Uniform(60)))}})
              .value();
      ASSERT_TRUE(manager.ProcessAppend(event).ok());
    }

    for (size_t i = 0; i < defs.size(); ++i) {
      PersistentView* view =
          manager.FindView(std::string("v_") + kRegions[i]).value();
      std::vector<Tuple> actual;
      ASSERT_TRUE(
          view->Scan([&](const Tuple& row) { actual.push_back(row); }).ok());
      SortTuples(&actual);
      auto expected = oracle.EvaluateSummary(*defs[i].first, defs[i].second);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(actual, *expected) << "mode=" << static_cast<int>(mode)
                                   << " region=" << kRegions[i];
    }
  }
}

}  // namespace
}  // namespace chronicle
