// TieredStore: hot→warm spill through the chronicle's tier sink, scans
// across both tiers, SN index lookups, budget-driven eviction, and
// adoption (recovery) of segments left by a previous store instance.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <vector>

#include "storage/chronicle_group.h"
#include "store/tiered_store.h"

namespace chronicle {
namespace store {
namespace {

namespace fs = std::filesystem;

struct ScratchDir {
  explicit ScratchDir(const std::string& name)
      : path((fs::temp_directory_path() /
              ("chronicle_tiered_" + name + "_" + std::to_string(::getpid())))
                 .string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

Schema TwoColSchema() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
}

StorageOptions SmallSegments(const std::string& dir) {
  StorageOptions options;
  options.data_dir = dir;
  options.hot_rows = 8;
  options.segment_rows = 4;
  return options;
}

// A group with one tiered chronicle attached to `store`; appends `n` rows.
ChronicleId SetUpTiered(ChronicleGroup* group, TieredStore* store,
                        const StorageOptions& options, int n) {
  ChronicleId id =
      group->CreateChronicle("calls", TwoColSchema(),
                             RetentionPolicy::Tiered(options.hot_rows))
          .value();
  EXPECT_TRUE(store->AttachChronicle(id, "calls").ok());
  Chronicle* chron = group->GetChronicle(id).value();
  chron->AttachTierSink(store, options.segment_rows);
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE(
        group->Append(id, {Tuple{Value(i), Value("v" + std::to_string(i))}})
            .ok());
  }
  return id;
}

TEST(TieredStore, SpillsPastHotWindowIntoSegments) {
  ScratchDir dir("spill");
  const StorageOptions options = SmallSegments(dir.path);
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ChronicleGroup group("g");
  ChronicleId id = SetUpTiered(&group, store->get(), options, 30);

  const Chronicle* chron = group.GetChronicle(id).value();
  // All 30 rows retained; only the hot window lives in memory.
  EXPECT_EQ(chron->num_retained(), 30u);
  EXPECT_LE(chron->retained().size(), options.hot_rows + options.segment_rows);
  EXPECT_GT((*store)->WarmRows(id), 0u);
  EXPECT_EQ((*store)->WarmRows(id) + chron->retained().size(), 30u);

  // Oldest-first, gapless merged scan.
  std::vector<SeqNum> sns;
  ASSERT_TRUE(
      chron->ScanRetained([&](const ChronicleRow& r) { sns.push_back(r.sn); })
          .ok());
  ASSERT_EQ(sns.size(), 30u);
  for (size_t i = 0; i < sns.size(); ++i) EXPECT_EQ(sns[i], i + 1);

  const WarmTierInfo warm = (*store)->TierOf(id);
  EXPECT_EQ(warm.rows, (*store)->WarmRows(id));
  EXPECT_GT(warm.segments, 0u);
  EXPECT_GT(warm.bytes, 0u);
  EXPECT_GT(warm.raw_bytes, warm.bytes);  // encoding beats in-memory layout
  EXPECT_EQ(warm.last_sealed_sn, (*store)->last_sealed_sn(id));
}

TEST(TieredStore, DedupGuardSuppressesRecoveryReplay) {
  ScratchDir dir("dedup");
  const StorageOptions options = SmallSegments(dir.path);
  SeqNum sealed = 0;
  {
    auto store = TieredStore::Open(options);
    ASSERT_TRUE(store.ok());
    ChronicleGroup group("g");
    ChronicleId id = SetUpTiered(&group, store->get(), options, 30);
    sealed = (*store)->last_sealed_sn(id);
    ASSERT_GT(sealed, 0u);
  }
  // "Recovery": a fresh group replays the same 30 appends against a store
  // that already holds the sealed prefix. The dedup guard must drop the
  // replayed rows at or below last_sealed_sn instead of duplicating them.
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ChronicleGroup group("g");
  ChronicleId id = SetUpTiered(&group, store->get(), options, 30);
  const Chronicle* chron = group.GetChronicle(id).value();
  EXPECT_EQ(chron->num_retained(), 30u);
  std::vector<SeqNum> sns;
  ASSERT_TRUE(
      chron->ScanRetained([&](const ChronicleRow& r) { sns.push_back(r.sn); })
          .ok());
  ASSERT_EQ(sns.size(), 30u);
  for (size_t i = 0; i < sns.size(); ++i) EXPECT_EQ(sns[i], i + 1);
  EXPECT_GE((*store)->last_sealed_sn(id), sealed);
}

TEST(TieredStore, FindSegmentForLocatesCoveringSegment) {
  ScratchDir dir("find");
  const StorageOptions options = SmallSegments(dir.path);
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ChronicleGroup group("g");
  ChronicleId id = SetUpTiered(&group, store->get(), options, 30);

  const SeqNum sealed = (*store)->last_sealed_sn(id);
  for (SeqNum sn = 1; sn <= sealed; ++sn) {
    const SegmentReader* seg = (*store)->FindSegmentFor(id, sn);
    ASSERT_NE(seg, nullptr) << "sn=" << sn;
    EXPECT_LE(seg->header().base_sn, sn);
    EXPECT_GE(seg->header().last_sn, sn);
  }
  EXPECT_EQ((*store)->FindSegmentFor(id, sealed + 1), nullptr);
  EXPECT_EQ((*store)->FindSegmentFor(id + 99, 1), nullptr);
}

TEST(TieredStore, WarmCursorStreamsOldestFirst) {
  ScratchDir dir("cursor");
  const StorageOptions options = SmallSegments(dir.path);
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ChronicleGroup group("g");
  ChronicleId id = SetUpTiered(&group, store->get(), options, 30);

  TieredStore::WarmCursor cursor = (*store)->OpenWarmCursor(id);
  ChronicleRow row;
  SeqNum prev = 0;
  uint64_t n = 0;
  while (true) {
    auto more = cursor.Next(&row);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_GE(row.sn, prev);
    prev = row.sn;
    ++n;
  }
  EXPECT_EQ(n, (*store)->WarmRows(id));
}

TEST(TieredStore, EvictionRespectsBudgetAndKeepsNewestSegment) {
  ScratchDir dir("evict");
  StorageOptions options = SmallSegments(dir.path);
  options.warm_budget_segments = 2;
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ChronicleGroup group("g");
  ChronicleId id = SetUpTiered(&group, store->get(), options, 60);

  const WarmTierInfo warm = (*store)->TierOf(id);
  EXPECT_LE(warm.segments, 2u);
  EXPECT_GE(warm.segments, 1u);  // the newest segment is never evicted
  EXPECT_GT((*store)->counters().segments_evicted, 0u);
  EXPECT_GT((*store)->counters().rows_evicted, 0u);
  // Retention is a policy: evicted rows are gone, retained count shrinks.
  const Chronicle* chron = group.GetChronicle(id).value();
  EXPECT_LT(chron->num_retained(), 60u);
  // last_sealed_sn is unaffected by eviction.
  EXPECT_EQ((*store)->last_sealed_sn(id), warm.last_sealed_sn);
}

TEST(TieredStore, ReopenAdoptsSealedSegments) {
  ScratchDir dir("reopen");
  const StorageOptions options = SmallSegments(dir.path);
  SeqNum sealed_before = 0;
  uint64_t warm_before = 0;
  {
    auto store = TieredStore::Open(options);
    ASSERT_TRUE(store.ok());
    ChronicleGroup group("g");
    ChronicleId id = SetUpTiered(&group, store->get(), options, 30);
    sealed_before = (*store)->last_sealed_sn(id);
    warm_before = (*store)->WarmRows(id);
    ASSERT_GT(sealed_before, 0u);
  }
  // A new store instance (fresh process) adopts the files on disk.
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AttachChronicle(0, "calls").ok());
  EXPECT_EQ((*store)->last_sealed_sn(0), sealed_before);
  EXPECT_EQ((*store)->WarmRows(0), warm_before);
  std::vector<SeqNum> sns;
  ASSERT_TRUE(
      (*store)
          ->ScanWarm(0, [&](const ChronicleRow& r) { sns.push_back(r.sn); })
          .ok());
  EXPECT_EQ(sns.size(), warm_before);
  for (size_t i = 1; i < sns.size(); ++i) EXPECT_GE(sns[i], sns[i - 1]);
  // Adoption must not disturb the files themselves: nothing quarantined,
  // every segment still has its .seg name.
  EXPECT_EQ((*store)->counters().segments_quarantined, 0u);
  size_t seg_files = 0;
  for (const auto& entry : fs::directory_iterator(dir.path + "/calls")) {
    EXPECT_EQ(entry.path().extension(), ".seg") << entry.path();
    ++seg_files;
  }
  EXPECT_EQ(seg_files, (*store)->TierOf(0).segments);
}

TEST(TieredStore, SealNeverSplitsOneSn) {
  ScratchDir dir("nosplit");
  StorageOptions options = SmallSegments(dir.path);
  auto store = TieredStore::Open(options);
  ASSERT_TRUE(store.ok());
  ChronicleGroup group("g");
  ChronicleId id =
      group.CreateChronicle("calls", TwoColSchema(),
                            RetentionPolicy::Tiered(options.hot_rows))
          .value();
  ASSERT_TRUE((*store)->AttachChronicle(id, "calls").ok());
  Chronicle* chron = group.GetChronicle(id).value();
  chron->AttachTierSink(store->get(), options.segment_rows);
  // Each tick appends 3 rows under ONE SN; batch sizes never divide evenly
  // into segment_rows, so the no-split rule must stretch segments.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(group
                    .Append(id, {Tuple{Value(i), Value("a")},
                                 Tuple{Value(i), Value("b")},
                                 Tuple{Value(i), Value("c")}})
                    .ok());
  }
  // No SN may appear in two segments: each segment's base_sn must be
  // strictly greater than the previous segment's last_sn.
  const SeqNum sealed = (*store)->last_sealed_sn(id);
  ASSERT_GT(sealed, 0u);
  SeqNum prev_last = 0;
  for (SeqNum sn = 1; sn <= sealed; ++sn) {
    const SegmentReader* seg = (*store)->FindSegmentFor(id, sn);
    ASSERT_NE(seg, nullptr);
    if (seg->header().base_sn == sn) {
      EXPECT_GT(sn, prev_last);
      prev_last = seg->header().last_sn;
    }
  }
}

TEST(TieredStore, OpenRejectsEmptyDataDir) {
  EXPECT_FALSE(TieredStore::Open(StorageOptions{}).ok());
}

}  // namespace
}  // namespace store
}  // namespace chronicle
