#include "algebra/ca_expr.h"

#include <gtest/gtest.h>

#include "storage/chronicle_group.h"

namespace chronicle {
namespace {

Schema CallSchema() {
  return Schema({{"caller", DataType::kInt64},
                 {"region", DataType::kString},
                 {"minutes", DataType::kInt64}});
}

Schema CustSchema() {
  return Schema({{"acct", DataType::kInt64}, {"state", DataType::kString}});
}

CaExprPtr Scan() { return CaExpr::Scan(0, "calls", CallSchema()).value(); }

TEST(CaExprTest, ScanCarriesSchemaAndId) {
  CaExprPtr scan = Scan();
  EXPECT_EQ(scan->op(), CaOp::kScan);
  EXPECT_EQ(scan->chronicle_id(), 0u);
  EXPECT_EQ(scan->schema(), CallSchema());
  EXPECT_EQ(scan->label(), "calls");
}

TEST(CaExprTest, SelectBindsPredicate) {
  Result<CaExprPtr> sel = CaExpr::Select(Scan(), Gt(Col("minutes"), Lit(Value(5))));
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ((*sel)->schema(), CallSchema());
  // Unknown column fails binding.
  EXPECT_FALSE(CaExpr::Select(Scan(), Gt(Col("nope"), Lit(Value(5)))).ok());
  EXPECT_FALSE(CaExpr::Select(nullptr, Lit(Value(1))).ok());
}

TEST(CaExprTest, ProjectComputesSchema) {
  Result<CaExprPtr> proj = CaExpr::Project(Scan(), {"minutes", "caller"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ((*proj)->schema().field(0).name, "minutes");
  EXPECT_EQ((*proj)->schema().field(1).name, "caller");
  EXPECT_EQ((*proj)->projection(), (std::vector<size_t>{2, 0}));
  EXPECT_FALSE(CaExpr::Project(Scan(), {}).ok());
  EXPECT_FALSE(CaExpr::Project(Scan(), {"nope"}).ok());
}

TEST(CaExprTest, SeqJoinConcatsSchemas) {
  Result<CaExprPtr> join = CaExpr::SeqJoin(Scan(), Scan());
  ASSERT_TRUE(join.ok());
  // Collisions prefixed on the right.
  EXPECT_EQ((*join)->schema().num_fields(), 6u);
  EXPECT_TRUE((*join)->schema().Contains("r.caller"));
}

TEST(CaExprTest, UnionRequiresSameSchema) {
  EXPECT_TRUE(CaExpr::Union(Scan(), Scan()).ok());
  CaExprPtr other = CaExpr::Scan(1, "c2", CustSchema()).value();
  Result<CaExprPtr> bad = CaExpr::Union(Scan(), other);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(CaExprTest, DifferenceRequiresSameSchema) {
  EXPECT_TRUE(CaExpr::Difference(Scan(), Scan()).ok());
  CaExprPtr other = CaExpr::Scan(1, "c2", CustSchema()).value();
  EXPECT_FALSE(CaExpr::Difference(Scan(), other).ok());
}

TEST(CaExprTest, GroupBySeqSchemaIsKeysThenAggs) {
  Result<CaExprPtr> gb = CaExpr::GroupBySeq(
      Scan(), {"caller"}, {AggSpec::Sum("minutes", "total"), AggSpec::Count()});
  ASSERT_TRUE(gb.ok()) << gb.status().ToString();
  const Schema& schema = (*gb)->schema();
  ASSERT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.field(0).name, "caller");
  EXPECT_EQ(schema.field(1).name, "total");
  EXPECT_EQ(schema.field(1).type, DataType::kInt64);  // SUM of INT64
  EXPECT_EQ(schema.field(2).name, "count");
}

TEST(CaExprTest, GroupBySeqRequiresAggregates) {
  EXPECT_FALSE(CaExpr::GroupBySeq(Scan(), {"caller"}, {}).ok());
}

TEST(CaExprTest, AggregateTypeChecking) {
  // SUM over a string column is rejected at bind time.
  EXPECT_FALSE(
      CaExpr::GroupBySeq(Scan(), {"caller"}, {AggSpec::Sum("region")}).ok());
  // MIN over strings is fine.
  EXPECT_TRUE(
      CaExpr::GroupBySeq(Scan(), {"caller"}, {AggSpec::Min("region")}).ok());
}

TEST(CaExprTest, RelKeyJoinRequiresKey) {
  Relation keyed = Relation::Make("cust", CustSchema(), "acct").value();
  Relation keyless = Relation::Make("heap", CustSchema()).value();
  EXPECT_TRUE(CaExpr::RelKeyJoin(Scan(), &keyed, "caller").ok());
  Result<CaExprPtr> bad = CaExpr::RelKeyJoin(Scan(), &keyless, "caller");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("Definition 4.2"), std::string::npos);
  EXPECT_FALSE(CaExpr::RelKeyJoin(Scan(), &keyed, "missing").ok());
}

TEST(CaExprTest, RelCrossSchemaConcat) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  Result<CaExprPtr> cross = CaExpr::RelCross(Scan(), &rel);
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ((*cross)->schema().num_fields(), 5u);
  EXPECT_EQ((*cross)->relation(), &rel);
}

TEST(CaExprTest, SeqThetaJoinRejectsEquality) {
  Result<CaExprPtr> eq = CaExpr::SeqThetaJoin(Scan(), Scan(), CompareOp::kEq);
  EXPECT_FALSE(eq.ok());
  EXPECT_TRUE(CaExpr::SeqThetaJoin(Scan(), Scan(), CompareOp::kLt).ok());
}

TEST(CaExprTest, CollectBaseChronicles) {
  CaExprPtr a = CaExpr::Scan(0, "a", CallSchema()).value();
  CaExprPtr b = CaExpr::Scan(3, "b", CallSchema()).value();
  CaExprPtr u = CaExpr::Union(a, b).value();
  CaExprPtr plan = CaExpr::Select(u, Gt(Col("minutes"), Lit(Value(1)))).value();
  std::set<ChronicleId> ids;
  plan->CollectBaseChronicles(&ids);
  EXPECT_EQ(ids, (std::set<ChronicleId>{0, 3}));
}

TEST(CaExprTest, CollectRelations) {
  Relation rel = Relation::Make("cust", CustSchema(), "acct").value();
  CaExprPtr plan = CaExpr::RelKeyJoin(Scan(), &rel, "caller").value();
  std::set<const Relation*> rels;
  plan->CollectRelations(&rels);
  EXPECT_EQ(rels.size(), 1u);
  EXPECT_EQ(*rels.begin(), &rel);
}

TEST(CaExprTest, SharedSubexpressionsAllowed) {
  // DAG sharing: the same scan feeds both sides of a union.
  CaExprPtr scan = Scan();
  CaExprPtr left =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NJ")))).value();
  CaExprPtr right =
      CaExpr::Select(scan, Eq(Col("region"), Lit(Value("NY")))).value();
  Result<CaExprPtr> u = CaExpr::Union(left, right);
  EXPECT_TRUE(u.ok());
}

TEST(CaExprTest, ToStringShowsTree) {
  CaExprPtr plan =
      CaExpr::Select(Scan(), Gt(Col("minutes"), Lit(Value(5)))).value();
  std::string repr = plan->ToString();
  EXPECT_NE(repr.find("Select"), std::string::npos);
  EXPECT_NE(repr.find("Scan(calls)"), std::string::npos);
}

}  // namespace
}  // namespace chronicle
