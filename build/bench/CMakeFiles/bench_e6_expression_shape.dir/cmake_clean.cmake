file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_expression_shape.dir/bench_e6_expression_shape.cc.o"
  "CMakeFiles/bench_e6_expression_shape.dir/bench_e6_expression_shape.cc.o.d"
  "bench_e6_expression_shape"
  "bench_e6_expression_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_expression_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
