# Empty dependencies file for bench_e6_expression_shape.
# This may be replaced when dependencies are built.
