# Empty compiler generated dependencies file for bench_e9_shared_delta.
# This may be replaced when dependencies are built.
