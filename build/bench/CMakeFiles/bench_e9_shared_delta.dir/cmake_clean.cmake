file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_shared_delta.dir/bench_e9_shared_delta.cc.o"
  "CMakeFiles/bench_e9_shared_delta.dir/bench_e9_shared_delta.cc.o.d"
  "bench_e9_shared_delta"
  "bench_e9_shared_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_shared_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
