file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_checkpoint.dir/bench_e10_checkpoint.cc.o"
  "CMakeFiles/bench_e10_checkpoint.dir/bench_e10_checkpoint.cc.o.d"
  "bench_e10_checkpoint"
  "bench_e10_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
