# Empty dependencies file for bench_e8_space.
# This may be replaced when dependencies are built.
