file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_space.dir/bench_e8_space.cc.o"
  "CMakeFiles/bench_e8_space.dir/bench_e8_space.cc.o.d"
  "bench_e8_space"
  "bench_e8_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
