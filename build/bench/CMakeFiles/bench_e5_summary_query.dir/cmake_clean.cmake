file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_summary_query.dir/bench_e5_summary_query.cc.o"
  "CMakeFiles/bench_e5_summary_query.dir/bench_e5_summary_query.cc.o.d"
  "bench_e5_summary_query"
  "bench_e5_summary_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_summary_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
