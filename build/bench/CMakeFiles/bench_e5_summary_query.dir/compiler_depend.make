# Empty compiler generated dependencies file for bench_e5_summary_query.
# This may be replaced when dependencies are built.
