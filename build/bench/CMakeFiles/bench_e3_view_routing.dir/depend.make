# Empty dependencies file for bench_e3_view_routing.
# This may be replaced when dependencies are built.
