file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_view_routing.dir/bench_e3_view_routing.cc.o"
  "CMakeFiles/bench_e3_view_routing.dir/bench_e3_view_routing.cc.o.d"
  "bench_e3_view_routing"
  "bench_e3_view_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_view_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
