file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_batch_vs_incremental.dir/bench_e7_batch_vs_incremental.cc.o"
  "CMakeFiles/bench_e7_batch_vs_incremental.dir/bench_e7_batch_vs_incremental.cc.o.d"
  "bench_e7_batch_vs_incremental"
  "bench_e7_batch_vs_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_batch_vs_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
