# Empty compiler generated dependencies file for bench_e2_maintenance_vs_relation_size.
# This may be replaced when dependencies are built.
