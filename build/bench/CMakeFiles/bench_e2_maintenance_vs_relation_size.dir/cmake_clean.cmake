file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_maintenance_vs_relation_size.dir/bench_e2_maintenance_vs_relation_size.cc.o"
  "CMakeFiles/bench_e2_maintenance_vs_relation_size.dir/bench_e2_maintenance_vs_relation_size.cc.o.d"
  "bench_e2_maintenance_vs_relation_size"
  "bench_e2_maintenance_vs_relation_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_maintenance_vs_relation_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
