
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e2_maintenance_vs_relation_size.cc" "bench/CMakeFiles/bench_e2_maintenance_vs_relation_size.dir/bench_e2_maintenance_vs_relation_size.cc.o" "gcc" "bench/CMakeFiles/bench_e2_maintenance_vs_relation_size.dir/bench_e2_maintenance_vs_relation_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronicle_cql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_checkpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_periodic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_views.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_aggregates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
