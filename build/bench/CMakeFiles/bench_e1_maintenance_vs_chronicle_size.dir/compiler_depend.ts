# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_e1_maintenance_vs_chronicle_size.
