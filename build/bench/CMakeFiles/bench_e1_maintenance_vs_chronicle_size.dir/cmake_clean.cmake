file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_maintenance_vs_chronicle_size.dir/bench_e1_maintenance_vs_chronicle_size.cc.o"
  "CMakeFiles/bench_e1_maintenance_vs_chronicle_size.dir/bench_e1_maintenance_vs_chronicle_size.cc.o.d"
  "bench_e1_maintenance_vs_chronicle_size"
  "bench_e1_maintenance_vs_chronicle_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_maintenance_vs_chronicle_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
