# Empty compiler generated dependencies file for bench_e1_maintenance_vs_chronicle_size.
# This may be replaced when dependencies are built.
