# Empty compiler generated dependencies file for bench_e4_sliding_window.
# This may be replaced when dependencies are built.
