file(REMOVE_RECURSE
  "CMakeFiles/cql_binder_test.dir/cql_binder_test.cc.o"
  "CMakeFiles/cql_binder_test.dir/cql_binder_test.cc.o.d"
  "cql_binder_test"
  "cql_binder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
