# Empty dependencies file for cql_binder_test.
# This may be replaced when dependencies are built.
