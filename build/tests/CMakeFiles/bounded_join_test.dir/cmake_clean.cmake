file(REMOVE_RECURSE
  "CMakeFiles/bounded_join_test.dir/bounded_join_test.cc.o"
  "CMakeFiles/bounded_join_test.dir/bounded_join_test.cc.o.d"
  "bounded_join_test"
  "bounded_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
