# Empty compiler generated dependencies file for bounded_join_test.
# This may be replaced when dependencies are built.
