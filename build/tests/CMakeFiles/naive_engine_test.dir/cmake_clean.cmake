file(REMOVE_RECURSE
  "CMakeFiles/naive_engine_test.dir/naive_engine_test.cc.o"
  "CMakeFiles/naive_engine_test.dir/naive_engine_test.cc.o.d"
  "naive_engine_test"
  "naive_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
