file(REMOVE_RECURSE
  "CMakeFiles/chronicle_test.dir/chronicle_test.cc.o"
  "CMakeFiles/chronicle_test.dir/chronicle_test.cc.o.d"
  "chronicle_test"
  "chronicle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
