file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_fuzz_test.dir/checkpoint_fuzz_test.cc.o"
  "CMakeFiles/checkpoint_fuzz_test.dir/checkpoint_fuzz_test.cc.o.d"
  "checkpoint_fuzz_test"
  "checkpoint_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
