# Empty dependencies file for checkpoint_fuzz_test.
# This may be replaced when dependencies are built.
