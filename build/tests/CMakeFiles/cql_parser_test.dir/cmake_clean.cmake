file(REMOVE_RECURSE
  "CMakeFiles/cql_parser_test.dir/cql_parser_test.cc.o"
  "CMakeFiles/cql_parser_test.dir/cql_parser_test.cc.o.d"
  "cql_parser_test"
  "cql_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
