# Empty dependencies file for persistent_view_test.
# This may be replaced when dependencies are built.
