file(REMOVE_RECURSE
  "CMakeFiles/persistent_view_test.dir/persistent_view_test.cc.o"
  "CMakeFiles/persistent_view_test.dir/persistent_view_test.cc.o.d"
  "persistent_view_test"
  "persistent_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
