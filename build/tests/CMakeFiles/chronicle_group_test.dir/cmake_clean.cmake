file(REMOVE_RECURSE
  "CMakeFiles/chronicle_group_test.dir/chronicle_group_test.cc.o"
  "CMakeFiles/chronicle_group_test.dir/chronicle_group_test.cc.o.d"
  "chronicle_group_test"
  "chronicle_group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
