# Empty compiler generated dependencies file for chronicle_group_test.
# This may be replaced when dependencies are built.
