# Empty dependencies file for cql_fuzz_test.
# This may be replaced when dependencies are built.
