file(REMOVE_RECURSE
  "CMakeFiles/cql_fuzz_test.dir/cql_fuzz_test.cc.o"
  "CMakeFiles/cql_fuzz_test.dir/cql_fuzz_test.cc.o.d"
  "cql_fuzz_test"
  "cql_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
