file(REMOVE_RECURSE
  "CMakeFiles/drop_test.dir/drop_test.cc.o"
  "CMakeFiles/drop_test.dir/drop_test.cc.o.d"
  "drop_test"
  "drop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
