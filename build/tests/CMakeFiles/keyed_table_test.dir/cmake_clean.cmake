file(REMOVE_RECURSE
  "CMakeFiles/keyed_table_test.dir/keyed_table_test.cc.o"
  "CMakeFiles/keyed_table_test.dir/keyed_table_test.cc.o.d"
  "keyed_table_test"
  "keyed_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyed_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
