# Empty compiler generated dependencies file for keyed_table_test.
# This may be replaced when dependencies are built.
