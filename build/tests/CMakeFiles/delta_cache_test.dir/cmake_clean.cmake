file(REMOVE_RECURSE
  "CMakeFiles/delta_cache_test.dir/delta_cache_test.cc.o"
  "CMakeFiles/delta_cache_test.dir/delta_cache_test.cc.o.d"
  "delta_cache_test"
  "delta_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
