file(REMOVE_RECURSE
  "CMakeFiles/cql_extensions_test.dir/cql_extensions_test.cc.o"
  "CMakeFiles/cql_extensions_test.dir/cql_extensions_test.cc.o.d"
  "cql_extensions_test"
  "cql_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
