# Empty compiler generated dependencies file for cql_extensions_test.
# This may be replaced when dependencies are built.
