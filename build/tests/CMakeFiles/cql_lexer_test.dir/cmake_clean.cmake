file(REMOVE_RECURSE
  "CMakeFiles/cql_lexer_test.dir/cql_lexer_test.cc.o"
  "CMakeFiles/cql_lexer_test.dir/cql_lexer_test.cc.o.d"
  "cql_lexer_test"
  "cql_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
