# Empty dependencies file for periodic_view_test.
# This may be replaced when dependencies are built.
