file(REMOVE_RECURSE
  "CMakeFiles/periodic_view_test.dir/periodic_view_test.cc.o"
  "CMakeFiles/periodic_view_test.dir/periodic_view_test.cc.o.d"
  "periodic_view_test"
  "periodic_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
