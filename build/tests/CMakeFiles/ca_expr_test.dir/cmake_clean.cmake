file(REMOVE_RECURSE
  "CMakeFiles/ca_expr_test.dir/ca_expr_test.cc.o"
  "CMakeFiles/ca_expr_test.dir/ca_expr_test.cc.o.d"
  "ca_expr_test"
  "ca_expr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ca_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
