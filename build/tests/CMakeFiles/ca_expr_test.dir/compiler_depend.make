# Empty compiler generated dependencies file for ca_expr_test.
# This may be replaced when dependencies are built.
