file(REMOVE_RECURSE
  "CMakeFiles/summary_spec_test.dir/summary_spec_test.cc.o"
  "CMakeFiles/summary_spec_test.dir/summary_spec_test.cc.o.d"
  "summary_spec_test"
  "summary_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
