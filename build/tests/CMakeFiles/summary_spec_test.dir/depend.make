# Empty dependencies file for summary_spec_test.
# This may be replaced when dependencies are built.
