# Empty dependencies file for monotonicity_property_test.
# This may be replaced when dependencies are built.
