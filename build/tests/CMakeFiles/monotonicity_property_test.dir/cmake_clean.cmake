file(REMOVE_RECURSE
  "CMakeFiles/monotonicity_property_test.dir/monotonicity_property_test.cc.o"
  "CMakeFiles/monotonicity_property_test.dir/monotonicity_property_test.cc.o.d"
  "monotonicity_property_test"
  "monotonicity_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotonicity_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
