file(REMOVE_RECURSE
  "CMakeFiles/delta_engine_test.dir/delta_engine_test.cc.o"
  "CMakeFiles/delta_engine_test.dir/delta_engine_test.cc.o.d"
  "delta_engine_test"
  "delta_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
