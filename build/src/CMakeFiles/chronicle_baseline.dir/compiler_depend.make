# Empty compiler generated dependencies file for chronicle_baseline.
# This may be replaced when dependencies are built.
