file(REMOVE_RECURSE
  "libchronicle_baseline.a"
)
