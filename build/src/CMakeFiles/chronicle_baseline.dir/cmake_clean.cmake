file(REMOVE_RECURSE
  "CMakeFiles/chronicle_baseline.dir/baseline/naive_engine.cc.o"
  "CMakeFiles/chronicle_baseline.dir/baseline/naive_engine.cc.o.d"
  "libchronicle_baseline.a"
  "libchronicle_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
