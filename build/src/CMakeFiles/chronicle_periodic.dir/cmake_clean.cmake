file(REMOVE_RECURSE
  "CMakeFiles/chronicle_periodic.dir/periodic/calendar.cc.o"
  "CMakeFiles/chronicle_periodic.dir/periodic/calendar.cc.o.d"
  "CMakeFiles/chronicle_periodic.dir/periodic/periodic_view.cc.o"
  "CMakeFiles/chronicle_periodic.dir/periodic/periodic_view.cc.o.d"
  "CMakeFiles/chronicle_periodic.dir/periodic/sliding_window.cc.o"
  "CMakeFiles/chronicle_periodic.dir/periodic/sliding_window.cc.o.d"
  "libchronicle_periodic.a"
  "libchronicle_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
