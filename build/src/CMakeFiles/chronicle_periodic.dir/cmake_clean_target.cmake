file(REMOVE_RECURSE
  "libchronicle_periodic.a"
)
