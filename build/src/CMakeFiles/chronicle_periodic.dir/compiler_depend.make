# Empty compiler generated dependencies file for chronicle_periodic.
# This may be replaced when dependencies are built.
