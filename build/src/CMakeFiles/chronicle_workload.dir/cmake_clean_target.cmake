file(REMOVE_RECURSE
  "libchronicle_workload.a"
)
