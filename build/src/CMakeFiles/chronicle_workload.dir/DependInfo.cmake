
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/banking.cc" "src/CMakeFiles/chronicle_workload.dir/workload/banking.cc.o" "gcc" "src/CMakeFiles/chronicle_workload.dir/workload/banking.cc.o.d"
  "/root/repo/src/workload/call_records.cc" "src/CMakeFiles/chronicle_workload.dir/workload/call_records.cc.o" "gcc" "src/CMakeFiles/chronicle_workload.dir/workload/call_records.cc.o.d"
  "/root/repo/src/workload/flyer.cc" "src/CMakeFiles/chronicle_workload.dir/workload/flyer.cc.o" "gcc" "src/CMakeFiles/chronicle_workload.dir/workload/flyer.cc.o.d"
  "/root/repo/src/workload/stock.cc" "src/CMakeFiles/chronicle_workload.dir/workload/stock.cc.o" "gcc" "src/CMakeFiles/chronicle_workload.dir/workload/stock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronicle_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
