file(REMOVE_RECURSE
  "CMakeFiles/chronicle_workload.dir/workload/banking.cc.o"
  "CMakeFiles/chronicle_workload.dir/workload/banking.cc.o.d"
  "CMakeFiles/chronicle_workload.dir/workload/call_records.cc.o"
  "CMakeFiles/chronicle_workload.dir/workload/call_records.cc.o.d"
  "CMakeFiles/chronicle_workload.dir/workload/flyer.cc.o"
  "CMakeFiles/chronicle_workload.dir/workload/flyer.cc.o.d"
  "CMakeFiles/chronicle_workload.dir/workload/stock.cc.o"
  "CMakeFiles/chronicle_workload.dir/workload/stock.cc.o.d"
  "libchronicle_workload.a"
  "libchronicle_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
