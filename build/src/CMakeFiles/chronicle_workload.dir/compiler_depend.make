# Empty compiler generated dependencies file for chronicle_workload.
# This may be replaced when dependencies are built.
