# Empty compiler generated dependencies file for chronicle_checkpoint.
# This may be replaced when dependencies are built.
