file(REMOVE_RECURSE
  "libchronicle_checkpoint.a"
)
