file(REMOVE_RECURSE
  "CMakeFiles/chronicle_checkpoint.dir/checkpoint/checkpoint.cc.o"
  "CMakeFiles/chronicle_checkpoint.dir/checkpoint/checkpoint.cc.o.d"
  "CMakeFiles/chronicle_checkpoint.dir/checkpoint/serde.cc.o"
  "CMakeFiles/chronicle_checkpoint.dir/checkpoint/serde.cc.o.d"
  "libchronicle_checkpoint.a"
  "libchronicle_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
