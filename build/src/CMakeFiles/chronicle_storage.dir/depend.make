# Empty dependencies file for chronicle_storage.
# This may be replaced when dependencies are built.
