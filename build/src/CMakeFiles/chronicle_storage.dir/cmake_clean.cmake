file(REMOVE_RECURSE
  "CMakeFiles/chronicle_storage.dir/storage/chronicle.cc.o"
  "CMakeFiles/chronicle_storage.dir/storage/chronicle.cc.o.d"
  "CMakeFiles/chronicle_storage.dir/storage/chronicle_group.cc.o"
  "CMakeFiles/chronicle_storage.dir/storage/chronicle_group.cc.o.d"
  "CMakeFiles/chronicle_storage.dir/storage/relation.cc.o"
  "CMakeFiles/chronicle_storage.dir/storage/relation.cc.o.d"
  "libchronicle_storage.a"
  "libchronicle_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
