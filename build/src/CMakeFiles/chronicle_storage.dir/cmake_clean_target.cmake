file(REMOVE_RECURSE
  "libchronicle_storage.a"
)
