
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/chronicle.cc" "src/CMakeFiles/chronicle_storage.dir/storage/chronicle.cc.o" "gcc" "src/CMakeFiles/chronicle_storage.dir/storage/chronicle.cc.o.d"
  "/root/repo/src/storage/chronicle_group.cc" "src/CMakeFiles/chronicle_storage.dir/storage/chronicle_group.cc.o" "gcc" "src/CMakeFiles/chronicle_storage.dir/storage/chronicle_group.cc.o.d"
  "/root/repo/src/storage/relation.cc" "src/CMakeFiles/chronicle_storage.dir/storage/relation.cc.o" "gcc" "src/CMakeFiles/chronicle_storage.dir/storage/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronicle_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
