# Empty dependencies file for chronicle_common.
# This may be replaced when dependencies are built.
