file(REMOVE_RECURSE
  "CMakeFiles/chronicle_common.dir/common/histogram.cc.o"
  "CMakeFiles/chronicle_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/chronicle_common.dir/common/random.cc.o"
  "CMakeFiles/chronicle_common.dir/common/random.cc.o.d"
  "CMakeFiles/chronicle_common.dir/common/status.cc.o"
  "CMakeFiles/chronicle_common.dir/common/status.cc.o.d"
  "CMakeFiles/chronicle_common.dir/common/stopwatch.cc.o"
  "CMakeFiles/chronicle_common.dir/common/stopwatch.cc.o.d"
  "CMakeFiles/chronicle_common.dir/common/tracking_allocator.cc.o"
  "CMakeFiles/chronicle_common.dir/common/tracking_allocator.cc.o.d"
  "libchronicle_common.a"
  "libchronicle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
