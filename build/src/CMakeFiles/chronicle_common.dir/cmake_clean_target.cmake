file(REMOVE_RECURSE
  "libchronicle_common.a"
)
