# Empty compiler generated dependencies file for chronicle_types.
# This may be replaced when dependencies are built.
