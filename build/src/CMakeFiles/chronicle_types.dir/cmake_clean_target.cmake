file(REMOVE_RECURSE
  "libchronicle_types.a"
)
