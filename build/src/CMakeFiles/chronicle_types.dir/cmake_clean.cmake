file(REMOVE_RECURSE
  "CMakeFiles/chronicle_types.dir/types/schema.cc.o"
  "CMakeFiles/chronicle_types.dir/types/schema.cc.o.d"
  "CMakeFiles/chronicle_types.dir/types/tuple.cc.o"
  "CMakeFiles/chronicle_types.dir/types/tuple.cc.o.d"
  "CMakeFiles/chronicle_types.dir/types/value.cc.o"
  "CMakeFiles/chronicle_types.dir/types/value.cc.o.d"
  "libchronicle_types.a"
  "libchronicle_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
