# Empty compiler generated dependencies file for chronicle_db.
# This may be replaced when dependencies are built.
