file(REMOVE_RECURSE
  "CMakeFiles/chronicle_db.dir/db/database.cc.o"
  "CMakeFiles/chronicle_db.dir/db/database.cc.o.d"
  "libchronicle_db.a"
  "libchronicle_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
