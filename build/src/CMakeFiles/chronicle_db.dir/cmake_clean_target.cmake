file(REMOVE_RECURSE
  "libchronicle_db.a"
)
