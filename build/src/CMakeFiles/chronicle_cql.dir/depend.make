# Empty dependencies file for chronicle_cql.
# This may be replaced when dependencies are built.
