file(REMOVE_RECURSE
  "CMakeFiles/chronicle_cql.dir/cql/binder.cc.o"
  "CMakeFiles/chronicle_cql.dir/cql/binder.cc.o.d"
  "CMakeFiles/chronicle_cql.dir/cql/lexer.cc.o"
  "CMakeFiles/chronicle_cql.dir/cql/lexer.cc.o.d"
  "CMakeFiles/chronicle_cql.dir/cql/parser.cc.o"
  "CMakeFiles/chronicle_cql.dir/cql/parser.cc.o.d"
  "libchronicle_cql.a"
  "libchronicle_cql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_cql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
