file(REMOVE_RECURSE
  "libchronicle_cql.a"
)
