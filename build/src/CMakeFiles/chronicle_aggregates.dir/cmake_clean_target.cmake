file(REMOVE_RECURSE
  "libchronicle_aggregates.a"
)
