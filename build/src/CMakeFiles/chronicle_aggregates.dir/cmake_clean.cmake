file(REMOVE_RECURSE
  "CMakeFiles/chronicle_aggregates.dir/aggregates/aggregate.cc.o"
  "CMakeFiles/chronicle_aggregates.dir/aggregates/aggregate.cc.o.d"
  "CMakeFiles/chronicle_aggregates.dir/aggregates/tiered_discount.cc.o"
  "CMakeFiles/chronicle_aggregates.dir/aggregates/tiered_discount.cc.o.d"
  "libchronicle_aggregates.a"
  "libchronicle_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
