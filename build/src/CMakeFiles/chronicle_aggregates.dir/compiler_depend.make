# Empty compiler generated dependencies file for chronicle_aggregates.
# This may be replaced when dependencies are built.
