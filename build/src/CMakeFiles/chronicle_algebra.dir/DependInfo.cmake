
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/ca_expr.cc" "src/CMakeFiles/chronicle_algebra.dir/algebra/ca_expr.cc.o" "gcc" "src/CMakeFiles/chronicle_algebra.dir/algebra/ca_expr.cc.o.d"
  "/root/repo/src/algebra/complexity.cc" "src/CMakeFiles/chronicle_algebra.dir/algebra/complexity.cc.o" "gcc" "src/CMakeFiles/chronicle_algebra.dir/algebra/complexity.cc.o.d"
  "/root/repo/src/algebra/delta_engine.cc" "src/CMakeFiles/chronicle_algebra.dir/algebra/delta_engine.cc.o" "gcc" "src/CMakeFiles/chronicle_algebra.dir/algebra/delta_engine.cc.o.d"
  "/root/repo/src/algebra/scalar_expr.cc" "src/CMakeFiles/chronicle_algebra.dir/algebra/scalar_expr.cc.o" "gcc" "src/CMakeFiles/chronicle_algebra.dir/algebra/scalar_expr.cc.o.d"
  "/root/repo/src/algebra/validate.cc" "src/CMakeFiles/chronicle_algebra.dir/algebra/validate.cc.o" "gcc" "src/CMakeFiles/chronicle_algebra.dir/algebra/validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronicle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_aggregates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
