file(REMOVE_RECURSE
  "libchronicle_algebra.a"
)
