file(REMOVE_RECURSE
  "CMakeFiles/chronicle_algebra.dir/algebra/ca_expr.cc.o"
  "CMakeFiles/chronicle_algebra.dir/algebra/ca_expr.cc.o.d"
  "CMakeFiles/chronicle_algebra.dir/algebra/complexity.cc.o"
  "CMakeFiles/chronicle_algebra.dir/algebra/complexity.cc.o.d"
  "CMakeFiles/chronicle_algebra.dir/algebra/delta_engine.cc.o"
  "CMakeFiles/chronicle_algebra.dir/algebra/delta_engine.cc.o.d"
  "CMakeFiles/chronicle_algebra.dir/algebra/scalar_expr.cc.o"
  "CMakeFiles/chronicle_algebra.dir/algebra/scalar_expr.cc.o.d"
  "CMakeFiles/chronicle_algebra.dir/algebra/validate.cc.o"
  "CMakeFiles/chronicle_algebra.dir/algebra/validate.cc.o.d"
  "libchronicle_algebra.a"
  "libchronicle_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
