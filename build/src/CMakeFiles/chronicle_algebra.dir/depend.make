# Empty dependencies file for chronicle_algebra.
# This may be replaced when dependencies are built.
