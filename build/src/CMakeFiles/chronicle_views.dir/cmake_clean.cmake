file(REMOVE_RECURSE
  "CMakeFiles/chronicle_views.dir/views/persistent_view.cc.o"
  "CMakeFiles/chronicle_views.dir/views/persistent_view.cc.o.d"
  "CMakeFiles/chronicle_views.dir/views/summary_spec.cc.o"
  "CMakeFiles/chronicle_views.dir/views/summary_spec.cc.o.d"
  "CMakeFiles/chronicle_views.dir/views/view_manager.cc.o"
  "CMakeFiles/chronicle_views.dir/views/view_manager.cc.o.d"
  "libchronicle_views.a"
  "libchronicle_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
