
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/views/persistent_view.cc" "src/CMakeFiles/chronicle_views.dir/views/persistent_view.cc.o" "gcc" "src/CMakeFiles/chronicle_views.dir/views/persistent_view.cc.o.d"
  "/root/repo/src/views/summary_spec.cc" "src/CMakeFiles/chronicle_views.dir/views/summary_spec.cc.o" "gcc" "src/CMakeFiles/chronicle_views.dir/views/summary_spec.cc.o.d"
  "/root/repo/src/views/view_manager.cc" "src/CMakeFiles/chronicle_views.dir/views/view_manager.cc.o" "gcc" "src/CMakeFiles/chronicle_views.dir/views/view_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronicle_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_aggregates.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronicle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
