file(REMOVE_RECURSE
  "libchronicle_views.a"
)
