# Empty compiler generated dependencies file for chronicle_views.
# This may be replaced when dependencies are built.
