# Empty dependencies file for cellular_billing.
# This may be replaced when dependencies are built.
