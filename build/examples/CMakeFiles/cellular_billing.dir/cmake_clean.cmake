file(REMOVE_RECURSE
  "CMakeFiles/cellular_billing.dir/cellular_billing.cpp.o"
  "CMakeFiles/cellular_billing.dir/cellular_billing.cpp.o.d"
  "cellular_billing"
  "cellular_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cellular_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
