file(REMOVE_RECURSE
  "CMakeFiles/sensor_control.dir/sensor_control.cpp.o"
  "CMakeFiles/sensor_control.dir/sensor_control.cpp.o.d"
  "sensor_control"
  "sensor_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
