# Empty dependencies file for sensor_control.
# This may be replaced when dependencies are built.
