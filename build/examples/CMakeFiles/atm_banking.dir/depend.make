# Empty dependencies file for atm_banking.
# This may be replaced when dependencies are built.
