file(REMOVE_RECURSE
  "CMakeFiles/atm_banking.dir/atm_banking.cpp.o"
  "CMakeFiles/atm_banking.dir/atm_banking.cpp.o.d"
  "atm_banking"
  "atm_banking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_banking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
