# Empty compiler generated dependencies file for frequent_flyer.
# This may be replaced when dependencies are built.
