file(REMOVE_RECURSE
  "CMakeFiles/frequent_flyer.dir/frequent_flyer.cpp.o"
  "CMakeFiles/frequent_flyer.dir/frequent_flyer.cpp.o.d"
  "frequent_flyer"
  "frequent_flyer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_flyer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
