# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(chronicle_shell_demo "/root/repo/build/tools/chronicle_shell" "/root/repo/tools/demo.cql")
set_tests_properties(chronicle_shell_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
