# Empty compiler generated dependencies file for chronicle_shell.
# This may be replaced when dependencies are built.
