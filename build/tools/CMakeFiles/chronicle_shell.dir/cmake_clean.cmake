file(REMOVE_RECURSE
  "CMakeFiles/chronicle_shell.dir/chronicle_shell.cc.o"
  "CMakeFiles/chronicle_shell.dir/chronicle_shell.cc.o.d"
  "chronicle_shell"
  "chronicle_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronicle_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
