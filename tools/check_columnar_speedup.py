#!/usr/bin/env python3
"""Gates the columnar kernel speedup acceptance (E13).

Reads the standardized report written by bench_e13_compiled_plans
({"bench":"E13","metrics":{...}}) and, for each acceptance shape
(UnionFan at u=64 and GroupedSummary), compares appends_per_sec of the
columnar engine (engine=2) against the row-compiled engine (engine=1) at
the largest batch size both engines ran:

    columnar >= CHRONICLE_COLUMNAR_SPEEDUP_MIN * row_compiled

The bound defaults to 1.5 (the CI smoke criterion; the full-run
acceptance in EXPERIMENTS.md is 2x). The speedup comes from monomorphic
column loops, not parallelism, but a single-core CI runner shares that
core with the host's noisy neighbours, so the bound is derated the same
way the shard gate derates:

    cores >= 2   full bound (1.5)
    cores <= 1   sanity floor only (CHRONICLE_COLUMNAR_SPEEDUP_FLOOR,
                 default 1.1 -- columnar must still clearly win)

Median aggregates (from --benchmark_repetitions) are preferred over raw
runs when both appear. Prints every candidate run so regressions are
diagnosable from the CI log alone.

Usage:
    check_columnar_speedup.py [bench_report.json]

Default report: BENCH_E13.json (the name the smoke run writes into the
repo root).
"""

import json
import os
import sys

# (display name, benchmark name prefix) for each gated shape. UnionFan is
# pinned to the u=64 acceptance fan-in; GroupedSummary has no u axis.
SHAPES = [
    ("UnionFan u=64", "UnionFan/u:64/"),
    ("GroupedSummary", "GroupedSummary/"),
]


def load_runs(report_path):
    """Returns {prefix: {(batch, engine): (name, entry)}}."""
    with open(report_path) as f:
        report = json.load(f)
    if report.get("bench") != "E13":
        raise SystemExit(
            f"FAIL: {report_path} is not an E13 report "
            f"(bench={report.get('bench')!r})")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"FAIL: {report_path} lacks the standardized 'metrics' object "
            f"(top-level keys: {sorted(report)})")
    runs = {prefix: {} for _, prefix in SHAPES}
    for name, entry in metrics.items():
        shape = next((p for _, p in SHAPES if name.startswith(p)), None)
        if shape is None:
            continue
        counters = entry.get("counters", {})
        batch = counters.get("batch")
        engine = counters.get("engine")
        rate = counters.get("appends_per_sec")
        if engine is None:
            # The engine arg is not exported as a counter; recover it from
            # the benchmark name (".../engine:2/...").
            for part in name.split("/"):
                if part.startswith("engine:"):
                    engine = float(part.split(":", 1)[1])
        if batch is None or engine is None or rate is None:
            continue
        key = (int(batch), int(engine))
        if name.endswith("_median"):
            priority = 2
        elif name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            priority = 0
        else:
            priority = 1
        slot = runs[shape].get(key)
        if slot is None or priority > slot[0]:
            runs[shape][key] = (priority, name, entry)
    return {shape: {key: (name, entry) for key, (_, name, entry)
                    in by_key.items()}
            for shape, by_key in runs.items()}


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E13.json"
    full_bound = float(
        os.environ.get("CHRONICLE_COLUMNAR_SPEEDUP_MIN", "1.5"))
    floor = float(
        os.environ.get("CHRONICLE_COLUMNAR_SPEEDUP_FLOOR", "1.1"))

    runs = load_runs(report_path)
    failures = []
    for label, prefix in SHAPES:
        by_key = runs[prefix]
        batches = sorted({b for (b, e) in by_key
                          if (b, 1) in by_key and (b, 2) in by_key})
        if not batches:
            print(f"FAIL: {report_path} has no batch with both engine 1 "
                  f"and engine 2 for {label} (found {sorted(by_key)})")
            return 1
        batch = batches[-1]  # gate on the largest common batch
        name1, entry1 = by_key[(batch, 1)]
        name2, entry2 = by_key[(batch, 2)]
        rate1 = float(entry1["counters"]["appends_per_sec"])
        rate2 = float(entry2["counters"]["appends_per_sec"])
        print(f"{label} @ batch={batch}:")
        print(f"  {name1}: {rate1:,.0f} appends/sec (row compiled)")
        print(f"  {name2}: {rate2:,.0f} appends/sec (columnar)")
        if rate1 <= 0:
            print(f"FAIL: row-compiled throughput is zero for {label}")
            return 1
        cores = int(entry2["counters"].get("cores", 0))
        bound = full_bound if cores >= 2 else floor
        basis = (f"{cores} cores: full bound" if cores >= 2 else
                 f"{cores or 'unknown'} core(s): sanity floor only")
        ratio = rate2 / rate1
        print(f"  speedup: {ratio:.3f}x (bound {bound:.3f}, {basis})")
        if ratio < bound:
            failures.append(
                f"{label}: columnar is {ratio:.3f}x of row-compiled; "
                f"the gate requires >= {bound:.3f}x")
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("PASS: columnar speedup gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
