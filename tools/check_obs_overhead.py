#!/usr/bin/env python3
"""Gates the observability subsystem's overhead acceptance bound.

Reads a google-benchmark JSON report containing the DbUnionFan pair from
bench_e13_compiled_plans (obs:0 = instrumentation disabled, obs:1 = metrics
+ tracing on) and fails if the instrumented run is more than
CHRONICLE_OBS_OVERHEAD_MAX (default 1.05, i.e. +5%) slower than the
baseline.  Also round-trips the machine-readable stats dump the obs:1 run
writes in smoke mode (STATS_E13.json) through json.load, proving the
hand-rolled exporter in src/obs/export.cc emits standards-valid JSON.

Usage:
    check_obs_overhead.py [bench_report.json] [stats_dump.json]

Defaults: BENCH_E13.json STATS_E13.json (the names the smoke run writes
into the working directory).
"""

import json
import os
import sys


def load_times(report_path):
    """Returns {obs_arg: seconds_per_iteration} for the DbUnionFan pair.

    Prefers median aggregates (present when the bench ran with
    --benchmark_repetitions) over raw iteration entries.
    """
    with open(report_path) as f:
        report = json.load(f)
    picked = {}  # obs arg -> (priority, time_ns)
    for entry in report.get("benchmarks", []):
        name = entry.get("run_name") or entry.get("name", "")
        if not name.startswith("DbUnionFan/"):
            continue
        try:
            obs = int(name.split("obs:", 1)[1].split("/")[0])
        except (IndexError, ValueError):
            continue
        run_type = entry.get("run_type", "iteration")
        if run_type == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            priority = 2
        else:
            priority = 1
        time_ns = entry.get("real_time")
        if time_ns is None:
            continue
        if obs not in picked or priority > picked[obs][0]:
            picked[obs] = (priority, float(time_ns))
    return {obs: t for obs, (_, t) in picked.items()}


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E13.json"
    stats_path = argv[2] if len(argv) > 2 else "STATS_E13.json"
    max_ratio = float(os.environ.get("CHRONICLE_OBS_OVERHEAD_MAX", "1.05"))

    times = load_times(report_path)
    if 0 not in times or 1 not in times:
        print(f"FAIL: {report_path} is missing the DbUnionFan obs:0/obs:1 "
              f"pair (found args {sorted(times)})")
        return 1
    ratio = times[1] / times[0]
    print(f"DbUnionFan obs off: {times[0]:.1f} ns/append")
    print(f"DbUnionFan obs on:  {times[1]:.1f} ns/append")
    print(f"overhead ratio:     {ratio:.4f} (bound {max_ratio})")
    if ratio > max_ratio:
        print(f"FAIL: instrumentation overhead {100 * (ratio - 1):.1f}% "
              f"exceeds the {100 * (max_ratio - 1):.1f}% bound")
        return 1

    # The exporter's own ValidateJson already ran inside the bench; this is
    # the independent check with a real JSON parser.
    with open(stats_path) as f:
        stats = json.load(f)
    for key in ("metrics", "views", "appends_processed"):
        if key not in stats:
            print(f"FAIL: {stats_path} lacks required key '{key}'")
            return 1
    views = {v["name"] for v in stats["views"]}
    if "fan" not in views:
        print(f"FAIL: {stats_path} has no per-view stats for 'fan' "
              f"(views: {sorted(views)})")
        return 1
    print(f"{stats_path}: valid JSON, {len(stats['metrics'])} metrics, "
          f"{len(stats['views'])} view(s)")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
