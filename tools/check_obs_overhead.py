#!/usr/bin/env python3
"""Gates the observability subsystem's overhead acceptance bounds.

Reads the standardized smoke report written by bench_e13_compiled_plans
({"bench":"E13","metrics":{...}}) containing the DbUnionFan triple:

    obs:0  instrumentation disabled
    obs:1  metrics + tracing on
    obs:2  metrics + tracing + the per-slot plan profiler

and fails if either instrumentation step costs more than
CHRONICLE_OBS_OVERHEAD_MAX (default 1.05, i.e. +5%) over the level below
it: obs:1 vs obs:0 gates the always-on counters/trace ring, obs:2 vs obs:1
gates the sampled per-slot profiler.  Prints a per-metric table for every
DbUnionFan run so regressions are diagnosable from the CI log alone.

Also round-trips the machine-readable stats dump the obs>=1 runs write in
smoke mode (STATS_E13.json) through json.load, proving the hand-rolled
exporter in src/obs/export.cc emits standards-valid JSON.

Usage:
    check_obs_overhead.py [bench_report.json] [stats_dump.json]

Defaults: BENCH_E13.json STATS_E13.json (the names the smoke run writes
into the repo root).
"""

import json
import os
import sys


def load_runs(report_path):
    """Returns {obs_arg: metrics_dict} for the DbUnionFan runs.

    Accepts the standardized schema ({"bench":..., "metrics":{name: {...}}});
    aggregate entries (name suffixed _mean/_median/...) are skipped in
    favor of the plain run when both exist.
    """
    with open(report_path) as f:
        report = json.load(f)
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"FAIL: {report_path} lacks the standardized 'metrics' object "
            f"(top-level keys: {sorted(report)})")
    runs = {}
    for name, entry in metrics.items():
        if not name.startswith("DbUnionFan/"):
            continue
        tail = name.split("obs:", 1)[1] if "obs:" in name else ""
        try:
            obs = int(tail.split("/")[0].split("_")[0])
        except (IndexError, ValueError):
            continue
        # Median aggregate (from --benchmark_repetitions) beats the raw
        # run; other aggregates (mean/stddev/cv) lose to both.
        if name.endswith("_median"):
            priority = 2
        elif "_" not in tail:
            priority = 1
        else:
            priority = 0
        if obs not in runs or priority > runs[obs][0]:
            runs[obs] = (priority, name, entry)
    return {obs: (name, entry) for obs, (_, name, entry) in runs.items()}


def print_table(runs):
    keys = ["real_time_ns", "cpu_time_ns", "iterations"]
    counter_keys = sorted(
        {k for _, entry in runs.values() for k in entry.get("counters", {})})
    header = ["run"] + keys + counter_keys
    rows = [header]
    for obs in sorted(runs):
        name, entry = runs[obs]
        row = [name]
        for k in keys:
            v = entry.get(k)
            row.append("-" if v is None else f"{v:.1f}")
        for k in counter_keys:
            v = entry.get("counters", {}).get(k)
            row.append("-" if v is None else f"{v:.4g}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for r in rows:
        print("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)))


def gate(label, slow, fast, max_ratio):
    ratio = slow / fast
    print(f"{label}: {fast:.1f} -> {slow:.1f} ns/append, "
          f"ratio {ratio:.4f} (bound {max_ratio})")
    if ratio > max_ratio:
        print(f"FAIL: {label} overhead {100 * (ratio - 1):.1f}% exceeds "
              f"the {100 * (max_ratio - 1):.1f}% bound")
        return False
    return True


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E13.json"
    stats_path = argv[2] if len(argv) > 2 else "STATS_E13.json"
    max_ratio = float(os.environ.get("CHRONICLE_OBS_OVERHEAD_MAX", "1.05"))

    runs = load_runs(report_path)
    missing = [obs for obs in (0, 1, 2) if obs not in runs]
    if missing:
        print(f"FAIL: {report_path} is missing DbUnionFan obs args "
              f"{missing} (found {sorted(runs)})")
        return 1

    print(f"{report_path}: DbUnionFan per-metric table")
    print_table(runs)

    times = {obs: float(runs[obs][1]["real_time_ns"]) for obs in runs}
    ok = gate("metrics+trace (obs:1 vs obs:0)", times[1], times[0], max_ratio)
    ok = gate("plan profiler (obs:2 vs obs:1)", times[2], times[1],
              max_ratio) and ok
    if not ok:
        return 1

    # The exporter's own ValidateJson already ran inside the bench; this is
    # the independent check with a real JSON parser.
    with open(stats_path) as f:
        stats = json.load(f)
    for key in ("metrics", "views", "appends_processed"):
        if key not in stats:
            print(f"FAIL: {stats_path} lacks required key '{key}'")
            return 1
    views = {v["name"] for v in stats["views"]}
    if "fan" not in views:
        print(f"FAIL: {stats_path} has no per-view stats for 'fan' "
              f"(views: {sorted(views)})")
        return 1
    print(f"{stats_path}: valid JSON, {len(stats['metrics'])} metrics, "
          f"{len(stats['views'])} view(s)")
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
