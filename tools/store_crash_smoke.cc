// store_crash_smoke: kill-resilience smoke for the tiered store + WAL.
//
//   $ store_crash_smoke --phase=write --dir=/tmp/smoke [--rows=N] [--shards=N]
//   $ store_crash_smoke --phase=verify --dir=/tmp/smoke [--shards=N]
//
// The write phase opens a WAL-attached database with a tiered chronicle
// spilling into <dir>/store and appends CDR batches — forever by default,
// so a harness can `kill -9` it at an arbitrary point (mid-segment, right
// after a seal, mid-WAL-record). The verify phase recovers from the WAL
// into a fresh database and checks the recovered state is internally
// consistent:
//
//   * recovery succeeds (a torn WAL tail is discarded, not fatal),
//   * retained SNs are contiguous and end at the group's last SN,
//   * every adopted segment was CRC-validated at attach (quarantines are
//     reported but only fatal if rows went missing),
//   * the maintained "minutes" view equals a from-scratch recomputation
//     over the retained rows — the view-maintenance invariant.
//
// With --shards=N (N > 1) both phases run through the ShardedDatabase
// router instead: per-shard WAL streams under <dir>/wal/shard-<k>, per-
// shard store dirs under <dir>/store/shard-<k>. The kill can land with
// the shards arbitrarily skewed (one mid-segment, another mid-record);
// verify recovers every shard independently, applies the invariants per
// shard, and additionally checks the MERGED view read equals the union
// of the per-shard recomputations.
//
// Exit code 0 = consistent, 1 = any invariant violated.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "db/database.h"
#include "shard/sharded_db.h"
#include "wal/recovery.h"
#include "wal/wal.h"
#include "workload/call_records.h"

namespace {

using namespace chronicle;

struct Args {
  std::string phase;
  std::string dir;
  uint64_t rows = 0;   // 0 = until killed
  size_t shards = 1;   // > 1: route through the ShardedDatabase
};

DatabaseOptions TieredOptions(const std::string& dir) {
  DatabaseOptions options;
  options.storage.data_dir = dir + "/store";
  options.storage.hot_rows = 64;
  options.storage.segment_rows = 32;
  return options;
}

Status ApplyDdl(ChronicleDatabase* db) {
  CHRONICLE_RETURN_NOT_OK(
      db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                          RetentionPolicy::Tiered(64))
          .status());
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr scan, db->ScanChronicle("calls"));
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec spec,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")}));
  return db->CreateView("minutes", scan, std::move(spec)).status();
}

int RunWrite(const Args& args) {
  auto wal = wal::Wal::Open(args.dir + "/wal");
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open: %s\n", wal.status().ToString().c_str());
    return 1;
  }
  ChronicleDatabase db(TieredOptions(args.dir));
  Status ddl = ApplyDdl(&db);
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  wal::WalMutationLog log(wal->get(), &db);
  db.AttachMutationLog(&log);
  CallRecordGenerator gen;
  uint64_t appended = 0;
  for (uint64_t step = 0; args.rows == 0 || appended < args.rows; ++step) {
    const size_t batch = 1 + step % 7;
    Status st = db.Append("calls", gen.NextBatch(batch)).status();
    if (!st.ok()) {
      std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
      return 1;
    }
    appended += batch;
    if (step % 256 == 0) {
      // Progress marker so the harness knows segments are flowing.
      std::printf("appended=%llu sealed_sn=%llu\n",
                  static_cast<unsigned long long>(appended),
                  static_cast<unsigned long long>(
                      db.tiered_store() != nullptr
                          ? db.tiered_store()->last_sealed_sn(0)
                          : 0));
      std::fflush(stdout);
    }
  }
  return (*wal)->Close().ok() ? 0 : 1;
}

using AggMap = std::map<int64_t, std::pair<int64_t, int64_t>>;  // caller->(m,n)

// Per-engine invariants: retained SNs contiguous and ending at the
// group's last SN, row counts agreeing, and the per-tick-deduped
// recomputation folded into `recomputed`. Returns the failure count.
int CheckEngineRetained(const ChronicleDatabase& db, const char* label,
                        AggMap* recomputed) {
  int failures = 0;
  const Chronicle* chron = db.group().GetChronicle(0).value();
  SeqNum prev = 0;
  uint64_t rows = 0;
  std::vector<Tuple> tick;  // rows of the current SN, for set semantics
  Status scan = chron->ScanRetained([&](const ChronicleRow& row) {
    if (row.sn != prev && row.sn != prev + 1) {
      std::fprintf(stderr, "FAIL %s sn gap: %llu after %llu\n", label,
                   static_cast<unsigned long long>(row.sn),
                   static_cast<unsigned long long>(prev));
      ++failures;
    }
    if (row.sn != prev) tick.clear();
    prev = row.sn;
    ++rows;
    // Views have set semantics per tick: identical tuples appended under
    // one SN count once (exactly what the engines' DedupeRows does).
    for (const Tuple& seen : tick) {
      if (seen == row.values) return;
    }
    tick.push_back(row.values);
    auto& agg = (*recomputed)[row.values[0].int64()];
    agg.first += row.values[2].int64();
    agg.second += 1;
  });
  if (!scan.ok()) {
    std::fprintf(stderr, "FAIL %s scan: %s\n", label, scan.ToString().c_str());
    return failures + 1;
  }
  if (rows > 0 && prev != db.group().last_sn()) {
    std::fprintf(stderr,
                 "FAIL %s last retained sn %llu != group last_sn %llu\n",
                 label, static_cast<unsigned long long>(prev),
                 static_cast<unsigned long long>(db.group().last_sn()));
    ++failures;
  }
  if (rows != chron->num_retained()) {
    std::fprintf(stderr, "FAIL %s scan saw %llu rows, num_retained=%llu\n",
                 label, static_cast<unsigned long long>(rows),
                 static_cast<unsigned long long>(chron->num_retained()));
    ++failures;
  }
  return failures;
}

// Compares a scanned "minutes" view against a recomputation, printing the
// first divergent callers. Returns 0 or 1.
int CheckViewAgainst(const std::vector<Tuple>& view, const AggMap& recomputed,
                     const char* label) {
  AggMap maintained;
  for (const Tuple& row : view) {
    maintained[row[0].int64()] = {row[1].int64(), row[2].int64()};
  }
  if (maintained == recomputed) return 0;
  std::fprintf(stderr,
               "FAIL %s view diverges: %zu maintained vs %zu recomputed "
               "keys\n",
               label, maintained.size(), recomputed.size());
  int shown = 0;
  for (const auto& [caller, agg] : recomputed) {
    auto it = maintained.find(caller);
    if (it != maintained.end() && it->second == agg) continue;
    std::fprintf(stderr,
                 "  caller=%lld recomputed=(%lld,%lld) maintained=%s\n",
                 static_cast<long long>(caller),
                 static_cast<long long>(agg.first),
                 static_cast<long long>(agg.second),
                 it == maintained.end()
                     ? "<absent>"
                     : ("(" + std::to_string(it->second.first) + "," +
                        std::to_string(it->second.second) + ")")
                           .c_str());
    if (++shown == 8) break;
  }
  return 1;
}

int RunVerify(const Args& args) {
  ChronicleDatabase db(TieredOptions(args.dir));
  Status ddl = ApplyDdl(&db);
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  auto report = wal::Recover(args.dir + "/wal", &db);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL recover: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  AggMap recomputed;
  int failures = CheckEngineRetained(db, "engine", &recomputed);

  // The maintained view must equal a from-scratch recomputation.
  auto view = db.ScanView("minutes");
  if (!view.ok()) {
    std::fprintf(stderr, "FAIL view scan: %s\n",
                 view.status().ToString().c_str());
    return 1;
  }
  failures += CheckViewAgainst(*view, recomputed, "engine");
  AggMap maintained;
  for (const Tuple& row : *view) {
    maintained[row[0].int64()] = {row[1].int64(), row[2].int64()};
  }
  uint64_t rows = db.group().GetChronicle(0).value()->num_retained();

  const store::TieredStore* store = db.tiered_store();
  const store::StoreCounters counters =
      store != nullptr ? store->counters() : store::StoreCounters{};
  std::printf(
      "verify: rows=%llu last_sn=%llu warm=%llu sealed_sn=%llu "
      "quarantined=%llu torn_tail=%d callers=%zu -> %s\n",
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(db.group().last_sn()),
      static_cast<unsigned long long>(store ? store->WarmRows(0) : 0),
      static_cast<unsigned long long>(store ? store->last_sealed_sn(0) : 0),
      static_cast<unsigned long long>(counters.segments_quarantined),
      report->replay.tail_truncated ? 1 : 0, maintained.size(),
      failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}

// --- sharded variants (--shards=N, N > 1) ---

DatabaseOptions ShardedTieredOptions(const Args& args) {
  DatabaseOptions options = TieredOptions(args.dir);
  options.sharding.num_shards = args.shards;
  options.sharding.wal_dir = args.dir + "/wal";
  return options;
}

Status ApplyShardedDdl(shard::ShardedDatabase* db) {
  CHRONICLE_RETURN_NOT_OK(
      db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                          RetentionPolicy::Tiered(64))
          .status());
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec spec,
      SummarySpec::GroupBy(CallRecordGenerator::RecordSchema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")}));
  return db
      ->CreateView("minutes",
                   [](ChronicleDatabase& e) { return e.ScanChronicle("calls"); },
                   std::move(spec))
      .status();
}

int RunWriteSharded(const Args& args) {
  auto db = shard::ShardedDatabase::Open(ShardedTieredOptions(args));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Status ddl = ApplyShardedDdl(db->get());
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  Status attach = (*db)->AttachWals();
  if (!attach.ok()) {
    std::fprintf(stderr, "attach: %s\n", attach.ToString().c_str());
    return 1;
  }
  CallRecordGenerator gen;
  uint64_t appended = 0;
  for (uint64_t step = 0; args.rows == 0 || appended < args.rows; ++step) {
    const size_t batch = 1 + step % 7;
    auto r = (*db)->Append("calls", gen.NextBatch(batch));
    if (!r.ok()) {
      std::fprintf(stderr, "append: %s\n", r.status().ToString().c_str());
      return 1;
    }
    appended += batch;
    if (step % 256 == 0) {
      std::printf("appended=%llu routed=%llu\n",
                  static_cast<unsigned long long>(appended),
                  static_cast<unsigned long long>((*db)->rows_routed()));
      std::fflush(stdout);
    }
  }
  return (*db)->CloseWals().ok() ? 0 : 1;
}

int RunVerifySharded(const Args& args) {
  auto db = shard::ShardedDatabase::Open(ShardedTieredOptions(args));
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  Status ddl = ApplyShardedDdl(db->get());
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  auto reports = (*db)->RecoverFromWal();
  if (!reports.ok()) {
    std::fprintf(stderr, "FAIL recover: %s\n",
                 reports.status().ToString().c_str());
    return 1;
  }

  // Every shard recovers independently (the kill may have left them
  // skewed); each must satisfy the same invariants as an unsharded engine,
  // including its own shard-local view.
  int failures = 0;
  AggMap merged_recompute;
  uint64_t rows = 0;
  bool torn = false;
  for (size_t k = 0; k < (*db)->num_shards(); ++k) {
    const std::string label = "shard-" + std::to_string(k);
    const ChronicleDatabase& engine = (*db)->engine(k);
    AggMap shard_recompute;
    failures += CheckEngineRetained(engine, label.c_str(), &shard_recompute);
    auto shard_view = engine.ScanView("minutes");
    if (!shard_view.ok()) {
      std::fprintf(stderr, "FAIL %s view scan: %s\n", label.c_str(),
                   shard_view.status().ToString().c_str());
      ++failures;
    } else {
      failures +=
          CheckViewAgainst(*shard_view, shard_recompute, label.c_str());
    }
    // "caller" is the partition column: shard recomputations are disjoint,
    // so a plain insert IS the merge.
    for (const auto& [caller, agg] : shard_recompute) {
      if (!merged_recompute.emplace(caller, agg).second) {
        std::fprintf(stderr,
                     "FAIL caller %lld present on more than one shard\n",
                     static_cast<long long>(caller));
        ++failures;
      }
    }
    rows += engine.group().GetChronicle(0).value()->num_retained();
    torn = torn || (*reports)[k].replay.tail_truncated;
  }

  // The router's merged read must agree with the union of the per-shard
  // recomputations.
  auto merged_view = (*db)->ScanView("minutes");
  if (!merged_view.ok()) {
    std::fprintf(stderr, "FAIL merged view scan: %s\n",
                 merged_view.status().ToString().c_str());
    return 1;
  }
  failures += CheckViewAgainst(*merged_view, merged_recompute, "merged");

  std::printf("verify: shards=%zu rows=%llu torn_tail=%d callers=%zu -> %s\n",
              (*db)->num_shards(), static_cast<unsigned long long>(rows),
              torn ? 1 : 0, merged_recompute.size(),
              failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--phase=", 0) == 0) {
      args.phase = arg.substr(8);
    } else if (arg.rfind("--dir=", 0) == 0) {
      args.dir = arg.substr(6);
    } else if (arg.rfind("--rows=", 0) == 0) {
      args.rows = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--shards=", 0) == 0) {
      args.shards = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (args.dir.empty() || args.shards == 0 ||
      (args.phase != "write" && args.phase != "verify")) {
    std::fprintf(stderr,
                 "usage: store_crash_smoke --phase=write|verify --dir=<dir> "
                 "[--rows=N] [--shards=N]\n");
    return 2;
  }
  if (args.shards > 1) {
    return args.phase == "write" ? RunWriteSharded(args)
                                 : RunVerifySharded(args);
  }
  return args.phase == "write" ? RunWrite(args) : RunVerify(args);
}
