// store_crash_smoke: kill-resilience smoke for the tiered store + WAL.
//
//   $ store_crash_smoke --phase=write --dir=/tmp/smoke [--rows=N]
//   $ store_crash_smoke --phase=verify --dir=/tmp/smoke
//
// The write phase opens a WAL-attached database with a tiered chronicle
// spilling into <dir>/store and appends CDR batches — forever by default,
// so a harness can `kill -9` it at an arbitrary point (mid-segment, right
// after a seal, mid-WAL-record). The verify phase recovers from the WAL
// into a fresh database and checks the recovered state is internally
// consistent:
//
//   * recovery succeeds (a torn WAL tail is discarded, not fatal),
//   * retained SNs are contiguous and end at the group's last SN,
//   * every adopted segment was CRC-validated at attach (quarantines are
//     reported but only fatal if rows went missing),
//   * the maintained "minutes" view equals a from-scratch recomputation
//     over the retained rows — the view-maintenance invariant.
//
// Exit code 0 = consistent, 1 = any invariant violated.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "db/database.h"
#include "wal/recovery.h"
#include "wal/wal.h"
#include "workload/call_records.h"

namespace {

using namespace chronicle;

struct Args {
  std::string phase;
  std::string dir;
  uint64_t rows = 0;  // 0 = until killed
};

DatabaseOptions TieredOptions(const std::string& dir) {
  DatabaseOptions options;
  options.storage.data_dir = dir + "/store";
  options.storage.hot_rows = 64;
  options.storage.segment_rows = 32;
  return options;
}

Status ApplyDdl(ChronicleDatabase* db) {
  CHRONICLE_RETURN_NOT_OK(
      db->CreateChronicle("calls", CallRecordGenerator::RecordSchema(),
                          RetentionPolicy::Tiered(64))
          .status());
  CHRONICLE_ASSIGN_OR_RETURN(CaExprPtr scan, db->ScanChronicle("calls"));
  CHRONICLE_ASSIGN_OR_RETURN(
      SummarySpec spec,
      SummarySpec::GroupBy(scan->schema(), {"caller"},
                           {AggSpec::Sum("minutes", "m"), AggSpec::Count("n")}));
  return db->CreateView("minutes", scan, std::move(spec)).status();
}

int RunWrite(const Args& args) {
  auto wal = wal::Wal::Open(args.dir + "/wal");
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open: %s\n", wal.status().ToString().c_str());
    return 1;
  }
  ChronicleDatabase db(TieredOptions(args.dir));
  Status ddl = ApplyDdl(&db);
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  wal::WalMutationLog log(wal->get(), &db);
  db.AttachMutationLog(&log);
  CallRecordGenerator gen;
  uint64_t appended = 0;
  for (uint64_t step = 0; args.rows == 0 || appended < args.rows; ++step) {
    const size_t batch = 1 + step % 7;
    Status st = db.Append("calls", gen.NextBatch(batch)).status();
    if (!st.ok()) {
      std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
      return 1;
    }
    appended += batch;
    if (step % 256 == 0) {
      // Progress marker so the harness knows segments are flowing.
      std::printf("appended=%llu sealed_sn=%llu\n",
                  static_cast<unsigned long long>(appended),
                  static_cast<unsigned long long>(
                      db.tiered_store() != nullptr
                          ? db.tiered_store()->last_sealed_sn(0)
                          : 0));
      std::fflush(stdout);
    }
  }
  return (*wal)->Close().ok() ? 0 : 1;
}

int RunVerify(const Args& args) {
  ChronicleDatabase db(TieredOptions(args.dir));
  Status ddl = ApplyDdl(&db);
  if (!ddl.ok()) {
    std::fprintf(stderr, "ddl: %s\n", ddl.ToString().c_str());
    return 1;
  }
  auto report = wal::Recover(args.dir + "/wal", &db);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL recover: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  int failures = 0;
  const Chronicle* chron = db.group().GetChronicle(0).value();

  // Retained SNs contiguous, ending at the group's last SN.
  SeqNum prev = 0;
  uint64_t rows = 0;
  std::map<int64_t, std::pair<int64_t, int64_t>> recomputed;  // caller->(m,n)
  std::vector<Tuple> tick;  // rows of the current SN, for set semantics
  Status scan = chron->ScanRetained([&](const ChronicleRow& row) {
    if (row.sn != prev && row.sn != prev + 1) {
      std::fprintf(stderr, "FAIL sn gap: %llu after %llu\n",
                   static_cast<unsigned long long>(row.sn),
                   static_cast<unsigned long long>(prev));
      ++failures;
    }
    if (row.sn != prev) tick.clear();
    prev = row.sn;
    ++rows;
    // Views have set semantics per tick: identical tuples appended under
    // one SN count once (exactly what the engines' DedupeRows does).
    for (const Tuple& seen : tick) {
      if (seen == row.values) return;
    }
    tick.push_back(row.values);
    auto& agg = recomputed[row.values[0].int64()];
    agg.first += row.values[2].int64();
    agg.second += 1;
  });
  if (!scan.ok()) {
    std::fprintf(stderr, "FAIL scan: %s\n", scan.ToString().c_str());
    return 1;
  }
  if (rows > 0 && prev != db.group().last_sn()) {
    std::fprintf(stderr, "FAIL last retained sn %llu != group last_sn %llu\n",
                 static_cast<unsigned long long>(prev),
                 static_cast<unsigned long long>(db.group().last_sn()));
    ++failures;
  }
  if (rows != chron->num_retained()) {
    std::fprintf(stderr, "FAIL scan saw %llu rows, num_retained=%llu\n",
                 static_cast<unsigned long long>(rows),
                 static_cast<unsigned long long>(chron->num_retained()));
    ++failures;
  }

  // The maintained view must equal a from-scratch recomputation.
  auto view = db.ScanView("minutes");
  if (!view.ok()) {
    std::fprintf(stderr, "FAIL view scan: %s\n",
                 view.status().ToString().c_str());
    return 1;
  }
  std::map<int64_t, std::pair<int64_t, int64_t>> maintained;
  for (const Tuple& row : *view) {
    maintained[row[0].int64()] = {row[1].int64(), row[2].int64()};
  }
  if (maintained != recomputed) {
    std::fprintf(stderr,
                 "FAIL view diverges: %zu maintained vs %zu recomputed keys\n",
                 maintained.size(), recomputed.size());
    int shown = 0;
    for (const auto& [caller, agg] : recomputed) {
      auto it = maintained.find(caller);
      if (it != maintained.end() && it->second == agg) continue;
      std::fprintf(stderr,
                   "  caller=%lld recomputed=(%lld,%lld) maintained=%s\n",
                   static_cast<long long>(caller),
                   static_cast<long long>(agg.first),
                   static_cast<long long>(agg.second),
                   it == maintained.end()
                       ? "<absent>"
                       : ("(" + std::to_string(it->second.first) + "," +
                          std::to_string(it->second.second) + ")")
                             .c_str());
      if (++shown == 8) break;
    }
    ++failures;
  }

  const store::TieredStore* store = db.tiered_store();
  const store::StoreCounters counters =
      store != nullptr ? store->counters() : store::StoreCounters{};
  std::printf(
      "verify: rows=%llu last_sn=%llu warm=%llu sealed_sn=%llu "
      "quarantined=%llu torn_tail=%d callers=%zu -> %s\n",
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(db.group().last_sn()),
      static_cast<unsigned long long>(store ? store->WarmRows(0) : 0),
      static_cast<unsigned long long>(store ? store->last_sealed_sn(0) : 0),
      static_cast<unsigned long long>(counters.segments_quarantined),
      report->replay.tail_truncated ? 1 : 0, maintained.size(),
      failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--phase=", 0) == 0) {
      args.phase = arg.substr(8);
    } else if (arg.rfind("--dir=", 0) == 0) {
      args.dir = arg.substr(6);
    } else if (arg.rfind("--rows=", 0) == 0) {
      args.rows = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  if (args.dir.empty() || (args.phase != "write" && args.phase != "verify")) {
    std::fprintf(stderr,
                 "usage: store_crash_smoke --phase=write|verify --dir=<dir> "
                 "[--rows=N]\n");
    return 2;
  }
  return args.phase == "write" ? RunWrite(args) : RunVerify(args);
}
