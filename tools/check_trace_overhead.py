#!/usr/bin/env python3
"""Gates the request-tracing overhead acceptance.

Reads the standardized report written by bench_e16_network_ingest
({"bench":"E16","metrics":{...}}) and compares the NetworkedAppendTraced
rows_per_sec counters at sample_permille=10 (1% head sampling) against
sample_permille=0 (tracer attached, zero sampling) at the same batch
size:

    traced_1pct >= (1 / CHRONICLE_TRACE_OVERHEAD_MAX) * traced_0pct

The bound defaults to 1.05: 1% sampling may cost at most 5% of ingest
throughput. Both sides run with the tracer ATTACHED, so the gate isolates
what sampling itself costs — the unsampled fast path (one RNG draw plus
RED counters) is the baseline, not an untraced build.

Loopback benches are noisy on starved runners: with fewer than two cores
the bound is derated to CHRONICLE_TRACE_OVERHEAD_FLOOR (default 1.25)
using the `cores` counter the bench records. Median aggregates (from
--benchmark_repetitions) are preferred over raw runs when both appear.
Prints every run so regressions are diagnosable from the CI log alone.

Usage:
    check_trace_overhead.py [bench_report.json]

Default report: BENCH_E16.json (the name the smoke run writes into the
repo root).
"""

import json
import os
import sys


def load_runs(report_path):
    """Returns {(batch_rows, sample_permille): (name, entry)}."""
    with open(report_path) as f:
        report = json.load(f)
    if report.get("bench") != "E16":
        raise SystemExit(
            f"FAIL: {report_path} is not an E16 report "
            f"(bench={report.get('bench')!r})")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"FAIL: {report_path} lacks the standardized 'metrics' object "
            f"(top-level keys: {sorted(report)})")
    runs = {}
    for name, entry in metrics.items():
        if not name.startswith("NetworkedAppendTraced/"):
            continue
        counters = entry.get("counters", {})
        batch = counters.get("batch_rows")
        permille = counters.get("sample_permille")
        rate = counters.get("rows_per_sec")
        if batch is None or permille is None or rate is None:
            continue
        key = (int(batch), int(permille))
        # Median aggregate beats the raw run; other aggregates lose to
        # both. Raw names may carry the /real_time suffix.
        if name.endswith("_median"):
            priority = 2
        elif name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            priority = 0
        else:
            priority = 1
        if key not in runs or priority > runs[key][0]:
            runs[key] = (priority, name, entry)
    return {key: (name, entry) for key, (_, name, entry) in runs.items()}


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E16.json"
    full_max = float(os.environ.get("CHRONICLE_TRACE_OVERHEAD_MAX", "1.05"))
    floor_max = float(
        os.environ.get("CHRONICLE_TRACE_OVERHEAD_FLOOR", "1.25"))

    runs = load_runs(report_path)
    batches = sorted({b for (b, p) in runs
                      if (b, 0) in runs and (b, 10) in runs})
    if not batches:
        print(f"FAIL: {report_path} has no batch size with both "
              f"sample_permille=0 and =10 NetworkedAppendTraced runs "
              f"(found {sorted(runs)})")
        return 1

    failed = False
    for batch in batches:
        base_name, base_entry = runs[(batch, 0)]
        traced_name, traced_entry = runs[(batch, 10)]
        base_rate = float(base_entry["counters"]["rows_per_sec"])
        traced_rate = float(traced_entry["counters"]["rows_per_sec"])
        print(f"batch_rows={batch}:")
        print(f"  {base_name}: {base_rate:,.0f} rows/sec")
        print(f"  {traced_name}: {traced_rate:,.0f} rows/sec")
        if traced_rate <= 0:
            print("FAIL: traced throughput is zero")
            failed = True
            continue

        cores = int(base_entry["counters"].get("cores", 0))
        if cores >= 2:
            bound = full_max
            basis = f"{cores} cores: full bound"
        else:
            bound = floor_max
            basis = f"{cores or 'unknown'} core(s): derated bound"

        overhead = base_rate / traced_rate
        print(f"  0%/1% throughput ratio: {overhead:.3f}x "
              f"(bound {bound:.3f}, {basis})")
        if overhead > bound:
            print(f"FAIL: 1% sampling at batch {batch} costs "
                  f"{(overhead - 1) * 100:.1f}% of throughput; the gate "
                  f"allows <= {(bound - 1) * 100:.1f}%")
            failed = True

    if failed:
        return 1
    print("PASS: trace overhead gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
