// validate_json: reads stdin (or each file argument), runs the in-repo
// dependency-free JSON checker (obs::ValidateJson), and exits non-zero on
// the first syntax error. CI pipes the monitoring endpoint's responses
// through this so the exporters are validated by the same grammar the unit
// and fuzz suites enforce — no external JSON tooling involved.
//
// Usage:
//   curl -s localhost:9464/stats.json | validate_json
//   validate_json stats.json history.json

#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "obs/export.h"

namespace {

int Check(const std::string& label, const std::string& text) {
  if (text.empty()) {
    std::fprintf(stderr, "validate_json: %s: empty input\n", label.c_str());
    return 1;
  }
  chronicle::Status status = chronicle::obs::ValidateJson(text);
  if (!status.ok()) {
    std::fprintf(stderr, "validate_json: %s: %s\n", label.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", label.c_str(), text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::string text((std::istreambuf_iterator<char>(std::cin)),
                     std::istreambuf_iterator<char>());
    return Check("<stdin>", text);
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "validate_json: %s: cannot open\n", argv[i]);
      rc = 1;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    rc |= Check(argv[i], text);
  }
  return rc;
}
