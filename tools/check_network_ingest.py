#!/usr/bin/env python3
"""Gates the network ingest front-end's throughput acceptance.

Reads the standardized report written by bench_e16_network_ingest
({"bench":"E16","metrics":{...}}) and compares the NetworkedAppend and
LocalAppendMany rows_per_sec counters at the same batch size:

    networked >= CHRONICLE_NET_INGEST_MIN * local

The bound defaults to 0.5 (the E16 acceptance criterion: at batch sizes
>= 256 over loopback, the wire front-end keeps at least half the local
AppendMany rate). The networked path wants three concurrent threads (the
client, the server's connection thread, the ingest worker), so on
runners without at least two cores the bound is derated to a sanity floor
(CHRONICLE_NET_INGEST_FLOOR, default 0.2) using the `cores` counter the
bench records from std::thread::hardware_concurrency().

The gate checks every batch size present in both benchmarks (the smoke
run records 256 and 1024); batch sizes below 256 are outside the
acceptance envelope and are skipped. Median aggregates (from
--benchmark_repetitions) are preferred over raw runs when both appear.
Prints every run so regressions are diagnosable from the CI log alone.

Usage:
    check_network_ingest.py [bench_report.json]

Default report: BENCH_E16.json (the name the smoke run writes into the
repo root).
"""

import json
import os
import sys


def load_runs(report_path, prefix):
    """Returns {batch_rows: (name, entry)} for one benchmark family."""
    with open(report_path) as f:
        report = json.load(f)
    if report.get("bench") != "E16":
        raise SystemExit(
            f"FAIL: {report_path} is not an E16 report "
            f"(bench={report.get('bench')!r})")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"FAIL: {report_path} lacks the standardized 'metrics' object "
            f"(top-level keys: {sorted(report)})")
    runs = {}
    for name, entry in metrics.items():
        if not name.startswith(prefix + "/"):
            continue
        counters = entry.get("counters", {})
        batch = counters.get("batch_rows")
        rate = counters.get("rows_per_sec")
        if batch is None or rate is None:
            continue
        batch = int(batch)
        # Median aggregate beats the raw run; other aggregates (mean,
        # stddev, cv) lose to both. The raw run name may carry the
        # /real_time suffix from UseRealTime().
        if name.endswith("_median"):
            priority = 2
        elif name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            priority = 0
        else:
            priority = 1
        if batch not in runs or priority > runs[batch][0]:
            runs[batch] = (priority, name, entry)
    return {batch: (name, entry) for batch, (_, name, entry)
            in runs.items()}


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E16.json"
    full_bound = float(os.environ.get("CHRONICLE_NET_INGEST_MIN", "0.5"))
    floor = float(os.environ.get("CHRONICLE_NET_INGEST_FLOOR", "0.2"))

    local = load_runs(report_path, "LocalAppendMany")
    networked = load_runs(report_path, "NetworkedAppend")
    batches = sorted(b for b in local if b in networked and b >= 256)
    if not batches:
        print(f"FAIL: {report_path} has no batch size >= 256 present in "
              f"both LocalAppendMany {sorted(local)} and NetworkedAppend "
              f"{sorted(networked)}")
        return 1

    failed = False
    for batch in batches:
        local_name, local_entry = local[batch]
        net_name, net_entry = networked[batch]
        local_rate = float(local_entry["counters"]["rows_per_sec"])
        net_rate = float(net_entry["counters"]["rows_per_sec"])
        print(f"batch_rows={batch}:")
        print(f"  {local_name}: {local_rate:,.0f} rows/sec")
        print(f"  {net_name}: {net_rate:,.0f} rows/sec")
        if local_rate <= 0:
            print("FAIL: local throughput is zero")
            failed = True
            continue

        cores = int(net_entry["counters"].get("cores", 0))
        if cores >= 2:
            bound = full_bound
            basis = f"{cores} cores: full bound"
        else:
            bound = floor
            basis = f"{cores or 'unknown'} core(s): sanity floor only"

        ratio = net_rate / local_rate
        print(f"  networked/local: {ratio:.3f}x "
              f"(bound {bound:.3f}, {basis})")
        if ratio < bound:
            print(f"FAIL: networked ingest at batch {batch} is "
                  f"{ratio:.3f}x of local; the gate requires "
                  f">= {bound:.3f}x")
            failed = True

    if failed:
        return 1
    print("PASS: network ingest gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
