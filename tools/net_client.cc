// net_client: command-line client for the wire service (src/net).
//
// The scriptable counterpart of chronicle_shell's \listen: opens a
// session, runs one command, closes the session. CI's networked smoke
// step pipes TSV through `append`; `sql` is the curl-free way to poke a
// running service from a shell script.
//
// usage:
//   net_client --port P [--token T] sql "<script>"
//   net_client --port P [--token T] append <chronicle> [--tick-rows N]
//       (TSV on stdin: row per line, tab-separated, blank line = new tick)
//   net_client --port P [--token T] drain
//   net_client --port P stats
//
// `append` streams stdin in bodies of roughly --tick-rows rows (default
// 1024), cutting only at tick boundaries so a tick is never split across
// requests. A 429 reply is handled the way the protocol intends: sleep
// for Retry-After seconds and resend the same body.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "net/http_client.h"

namespace {

using chronicle::net::HttpClient;
using chronicle::net::HttpClientResponse;

int Usage() {
  std::fprintf(
      stderr,
      "usage: net_client --port P [--token T] [--trace] <command>\n"
      "  sql \"<script>\"                 execute CQL, print the JSON reply\n"
      "  append <chronicle> [--tick-rows N]   TSV rows on stdin\n"
      "  drain                          wait for queued rows to apply\n"
      "  stats                          print /stats.json\n"
      "  --trace  send a sampled traceparent on every request, print the\n"
      "           echoed context, and dump /requests.json afterwards\n");
  return 2;
}

// Fixed W3C trace-context the --trace flag propagates: the sampled flag
// (-01) forces span capture server-side regardless of the service's
// sample rate, and the fixed trace id is what CI's networked smoke greps
// for in /requests.json to assert end-to-end propagation.
constexpr char kTraceParent[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

void PrintEchoedTrace(const HttpClientResponse& resp) {
  if (const std::string* tp = resp.FindHeader("traceparent")) {
    std::fprintf(stderr, "trace: %s\n", tp->c_str());
  }
}

// Extracts "session":"..." from the open response.
std::string ParseSessionId(const std::string& body) {
  const std::string marker = "\"session\":\"";
  const size_t at = body.find(marker);
  if (at == std::string::npos) return "";
  const size_t start = at + marker.size();
  return body.substr(start, body.find('"', start) - start);
}

struct Ctx {
  HttpClient* client;
  std::vector<std::pair<std::string, std::string>> headers;
  bool trace = false;
};

// POSTs one append body, retrying on 429 per the Retry-After header.
int PostBodyWithRetry(Ctx* ctx, const std::string& chronicle,
                      const std::string& body, uint64_t* rows_accepted) {
  while (true) {
    auto resp = ctx->client->Post("/v1/append?chronicle=" + chronicle, body,
                                  ctx->headers);
    if (!resp.ok()) {
      std::fprintf(stderr, "net_client: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    if (resp->status == 429) {
      int wait = 1;
      if (const std::string* ra = resp->FindHeader("retry-after")) {
        wait = std::max(1, atoi(ra->c_str()));
      }
      std::fprintf(stderr, "net_client: backpressure, retrying in %ds\n",
                   wait);
      sleep(static_cast<unsigned>(wait));
      continue;
    }
    if (resp->status != 202) {
      std::fprintf(stderr, "net_client: append failed (%d): %s",
                   resp->status, resp->body.c_str());
      return 1;
    }
    if (ctx->trace) PrintEchoedTrace(*resp);
    const std::string marker = "\"accepted_rows\":";
    const size_t at = resp->body.find(marker);
    if (at != std::string::npos) {
      *rows_accepted += strtoull(
          resp->body.c_str() + at + marker.size(), nullptr, 10);
    }
    return 0;
  }
}

int RunAppend(Ctx* ctx, const std::string& chronicle, size_t tick_rows) {
  std::string body;
  size_t body_rows = 0;
  uint64_t total_rows = 0;
  uint64_t total_requests = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    body += line;
    body += "\n";
    if (!line.empty()) {
      ++body_rows;
      continue;
    }
    // Tick boundary: flush once the body is big enough.
    if (body_rows >= tick_rows) {
      if (PostBodyWithRetry(ctx, chronicle, body, &total_rows) != 0) {
        return 1;
      }
      ++total_requests;
      body.clear();
      body_rows = 0;
    }
  }
  if (body_rows > 0) {
    if (PostBodyWithRetry(ctx, chronicle, body, &total_rows) != 0) return 1;
    ++total_requests;
  }
  auto drained = ctx->client->Post("/v1/drain", "", ctx->headers);
  if (!drained.ok() || drained->status != 200) {
    std::fprintf(stderr, "net_client: drain failed\n");
    return 1;
  }
  std::printf("accepted %llu rows in %llu requests, drained\n",
              static_cast<unsigned long long>(total_rows),
              static_cast<unsigned long long>(total_requests));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  std::string token;
  bool trace = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--port" && i + 1 < argc) {
      port = static_cast<uint16_t>(atoi(argv[++i]));
    } else if (arg == "--token" && i + 1 < argc) {
      token = argv[++i];
    } else if (arg == "--trace") {
      trace = true;
    } else {
      args.push_back(arg);
    }
  }
  if (port == 0 || args.empty()) return Usage();

  HttpClient client(port);
  Ctx ctx{&client, {}, trace};
  if (!token.empty()) {
    ctx.headers.emplace_back("Authorization", "Bearer " + token);
  }
  if (trace) {
    ctx.headers.emplace_back("traceparent", kTraceParent);
  }

  const std::string& command = args[0];
  if (command == "stats") {
    auto resp = client.Get("/stats.json");
    if (!resp.ok()) {
      std::fprintf(stderr, "net_client: %s\n",
                   resp.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", resp->body.c_str());
    return resp->status == 200 ? 0 : 1;
  }

  // Everything else runs inside a session.
  auto open = client.Post("/v1/session", "", ctx.headers);
  if (!open.ok() || open->status != 200) {
    std::fprintf(stderr, "net_client: session open failed: %s\n",
                 open.ok() ? open->body.c_str()
                           : open.status().ToString().c_str());
    return 1;
  }
  const std::string sid = ParseSessionId(open->body);
  ctx.headers.emplace_back("X-Chronicle-Session", sid);

  int rc = 1;
  if (command == "sql" && args.size() == 2) {
    auto resp = client.Post("/v1/sql", args[1], ctx.headers);
    if (!resp.ok()) {
      std::fprintf(stderr, "net_client: %s\n",
                   resp.status().ToString().c_str());
    } else {
      if (trace) PrintEchoedTrace(*resp);
      std::printf("%s", resp->body.c_str());
      rc = resp->status == 200 ? 0 : 1;
    }
  } else if (command == "append" && args.size() >= 2) {
    size_t tick_rows = 1024;
    for (size_t i = 2; i + 1 < args.size(); ++i) {
      if (args[i] == "--tick-rows") {
        tick_rows = static_cast<size_t>(atoll(args[i + 1].c_str()));
      }
    }
    rc = RunAppend(&ctx, args[1], tick_rows == 0 ? 1024 : tick_rows);
  } else if (command == "drain" && args.size() == 1) {
    auto resp = client.Post("/v1/drain", "", ctx.headers);
    if (resp.ok()) {
      std::printf("%s", resp->body.c_str());
      rc = resp->status == 200 ? 0 : 1;
    }
  } else {
    rc = Usage();
  }

  if (trace && rc == 0) {
    // Dump the server-side span trees so a caller (or CI) can assert the
    // propagated trace id produced a complete tree.
    auto reqs = client.Get("/requests.json");
    if (reqs.ok() && reqs->status == 200) {
      std::printf("%s\n", reqs->body.c_str());
    }
  }

  (void)client.Post("/v1/session/close", "", ctx.headers);
  return rc;
}
