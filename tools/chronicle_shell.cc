// chronicle_shell: an interactive (or scripted) CQL shell.
//
//   $ ./chronicle_shell               # interactive REPL on stdin
//   $ ./chronicle_shell script.cql    # execute a ';'-separated script
//   $ echo "SHOW VIEWS;" | ./chronicle_shell
//
// Statements end with ';' and may span lines. Meta-commands:
//   \profile on|off   toggle per-view maintenance profiling
//   \quit             exit
// Errors are printed and the session continues (scripts abort on error).

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cql/binder.h"
#include "db/database.h"

namespace {

using chronicle::ChronicleDatabase;
using chronicle::Tuple;
using chronicle::cql::ExecResult;

// Renders a result-set as an aligned text table.
void PrintRows(const ExecResult& result) {
  if (result.rows.empty()) return;
  const size_t cols = result.schema.num_fields();
  std::vector<size_t> widths(cols, 0);
  std::vector<std::vector<std::string>> cells;
  // Header.
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) {
    header.push_back(result.schema.field(c).name);
    widths[c] = header[c].size();
  }
  for (const Tuple& row : result.rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < cols && c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  auto print_line = [&](const std::vector<std::string>& line) {
    for (size_t c = 0; c < line.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "| " : " | ", static_cast<int>(widths[c]),
                  line[c].c_str());
    }
    std::printf(" |\n");
  };
  print_line(header);
  for (size_t c = 0; c < cols; ++c) {
    std::printf("%s%s", c == 0 ? "|-" : "-|-", std::string(widths[c], '-').c_str());
  }
  std::printf("-|\n");
  for (const auto& line : cells) print_line(line);
}

// Executes one statement, printing results; returns false on error.
bool RunStatement(ChronicleDatabase* db, const std::string& sql) {
  chronicle::Result<ExecResult> result = chronicle::cql::Execute(db, sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return false;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return true;
}

// Handles a \meta command; returns true if it was one.
bool HandleMeta(ChronicleDatabase* db, const std::string& line, bool* done) {
  if (line.empty() || line[0] != '\\') return false;
  if (line == "\\quit" || line == "\\q") {
    *done = true;
  } else if (line == "\\profile on") {
    db->view_manager().set_profiling(true);
    std::printf("profiling on\n");
  } else if (line == "\\profile off") {
    db->view_manager().set_profiling(false);
    std::printf("profiling off\n");
  } else {
    std::printf("unknown meta-command %s (try \\profile on|off, \\quit)\n",
                line.c_str());
  }
  return true;
}

int RunScriptFile(ChronicleDatabase* db, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  chronicle::Result<ExecResult> result =
      chronicle::cql::ExecuteScript(db, buffer.str());
  if (!result.ok()) {
    std::fprintf(stderr, "ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ChronicleDatabase db;
  if (argc > 1) return RunScriptFile(&db, argv[1]);

  const bool interactive = isatty(0);
  if (interactive) {
    std::printf("chronicle shell — end statements with ';', \\quit to exit\n");
  }
  std::string pending;
  std::string line;
  bool done = false;
  while (!done) {
    if (interactive) std::printf(pending.empty() ? "cql> " : "...> ");
    if (!std::getline(std::cin, line)) break;
    // Meta-commands act on whole lines, outside any pending statement.
    if (pending.empty() && HandleMeta(&db, line, &done)) continue;
    pending += line;
    pending += "\n";
    // Execute every complete statement accumulated so far.
    size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      std::string sql = pending.substr(0, semi);
      pending.erase(0, semi + 1);
      // Skip pure-whitespace statements.
      if (sql.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      RunStatement(&db, sql);
    }
  }
  return 0;
}
