// chronicle_shell: an interactive (or scripted) CQL shell.
//
//   $ ./chronicle_shell               # interactive REPL on stdin
//   $ ./chronicle_shell script.cql    # execute a ';'-separated script
//   $ echo "SHOW VIEWS;" | ./chronicle_shell
//   $ ./chronicle_shell --data-dir <dir>   # tiered chronicles spill here
//
// With --data-dir, chronicles created with tiered retention seal aged rows
// into segment files under <dir>, and \stats shows the per-tier breakdown.
//
// Statements end with ';' and may span lines. Meta-commands:
//   \profile on|off   toggle per-view maintenance profiling
//   \profile plan on|off  toggle per-slot plan profiling (feeds \explain)
//   \threads <n>      maintain views on n worker threads (1 = serial)
//   \engine <e>       delta engine: interp | compiled | columnar
//   \wal <dir>        log every mutation to a write-ahead log in <dir>
//   \wal off          sync and detach the write-ahead log
//   \checkpoint       checkpoint the database into the WAL directory
//   \recover <dir>    rebuild state from <dir> (apply the DDL first!),
//                     then resume logging there
//   \stats            observability snapshot, human-readable
//   \stats prom       ... in Prometheus text exposition format
//   \stats json       ... as a machine-readable JSON dump
//   \trace            recent maintenance spans from the trace ring
//   \serve <port>     start the HTTP monitoring endpoint (0 = ephemeral)
//   \serve off        stop it
//   \history          stats time-series sparklines (takes a sample)
//   \explain <view>   compiled plan of <view> with sampled time shares
//   \quit             exit
// Errors are printed and the session continues (scripts abort on error).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cql/binder.h"
#include "db/database.h"
#include "obs/export.h"
#include "obs/history.h"
#include "obs/stats.h"
#include "wal/recovery.h"
#include "wal/wal.h"

namespace {

using chronicle::ChronicleDatabase;
using chronicle::Tuple;
using chronicle::cql::ExecResult;

// The shell's database plus its (optional) durability attachment.
struct Session {
  ChronicleDatabase db;
  std::unique_ptr<chronicle::wal::Wal> wal;
  std::unique_ptr<chronicle::wal::WalMutationLog> log;
  // Last \recover outcome, surfaced in the stats snapshot's WAL section.
  bool recovered = false;
  uint64_t recovery_records_applied = 0;
  uint64_t recovery_records_skipped = 0;

  // Only this session (the Wal's owner) can fill the WAL section of the
  // stats snapshot, so it registers an enricher with the database: every
  // snapshot — \stats, the HTTP endpoint, the history sampler — gets the
  // same merge, on whatever thread collects it (the database runs the
  // enricher under its stats mutex).
  explicit Session(chronicle::DatabaseOptions options = {})
      : db(std::move(options)) {
    InstallEnricher();
  }

  void InstallEnricher() {
    db.set_stats_enricher([this](chronicle::obs::StatsSnapshot* snap) {
      if (wal != nullptr) {
        const chronicle::wal::WalStats& w = wal->stats();
        snap->wal.attached = true;
        snap->wal.records_logged = w.records_logged;
        snap->wal.bytes_logged = w.bytes_logged;
        snap->wal.syncs = w.syncs;
        snap->wal.segments_created = w.segments_created;
        snap->wal.segments_removed = w.segments_removed;
        snap->wal.checkpoints_written = w.checkpoints_written;
        snap->wal.group_commits = w.group_commits;
        snap->wal.group_commit_ticks = w.group_commit_ticks;
        snap->wal.fsync_latency = w.fsync_latency;
      }
      snap->wal.recovered = recovered;
      snap->wal.recovery_records_applied = recovery_records_applied;
      snap->wal.recovery_records_skipped = recovery_records_skipped;
    });
  }

  chronicle::obs::StatsSnapshot CollectStats() const {
    return db.CollectStats();
  }

  // Opens a WAL in `dir` and routes every future mutation through it.
  bool AttachWal(const std::string& dir) {
    auto opened = chronicle::wal::Wal::Open(dir);
    if (!opened.ok()) {
      std::printf("ERROR: %s\n", opened.status().ToString().c_str());
      return false;
    }
    wal = std::move(opened).value();
    log = std::make_unique<chronicle::wal::WalMutationLog>(wal.get(), &db);
    db.AttachMutationLog(log.get());
    return true;
  }

  void DetachWal() {
    db.DetachMutationLog();
    // Clearing the enricher waits out any in-flight snapshot, so no other
    // thread can still be reading the Wal we are about to close.
    db.set_stats_enricher(nullptr);
    if (wal != nullptr) {
      chronicle::Status st = wal->Close();
      if (!st.ok()) std::printf("ERROR: %s\n", st.ToString().c_str());
    }
    log.reset();
    wal.reset();
    InstallEnricher();
  }
};

// Renders a result-set as an aligned text table.
void PrintRows(const ExecResult& result) {
  if (result.rows.empty()) return;
  const size_t cols = result.schema.num_fields();
  std::vector<size_t> widths(cols, 0);
  std::vector<std::vector<std::string>> cells;
  // Header.
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) {
    header.push_back(result.schema.field(c).name);
    widths[c] = header[c].size();
  }
  for (const Tuple& row : result.rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < cols && c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  auto print_line = [&](const std::vector<std::string>& line) {
    for (size_t c = 0; c < line.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "| " : " | ", static_cast<int>(widths[c]),
                  line[c].c_str());
    }
    std::printf(" |\n");
  };
  print_line(header);
  for (size_t c = 0; c < cols; ++c) {
    std::printf("%s%s", c == 0 ? "|-" : "-|-", std::string(widths[c], '-').c_str());
  }
  std::printf("-|\n");
  for (const auto& line : cells) print_line(line);
}

// Executes one statement, printing results; returns false on error.
bool RunStatement(ChronicleDatabase* db, const std::string& sql) {
  chronicle::Result<ExecResult> result = chronicle::cql::Execute(db, sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return false;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return true;
}

// Handles a \meta command; returns true if it was one.
bool HandleMeta(Session* session, const std::string& line, bool* done) {
  if (line.empty() || line[0] != '\\') return false;
  ChronicleDatabase* db = &session->db;
  if (line == "\\quit" || line == "\\q") {
    *done = true;
  } else if (line == "\\profile plan on") {
    db->SetPlanProfiling(true);
    std::printf("plan profiling on (feeds \\explain)\n");
  } else if (line == "\\profile plan off") {
    db->SetPlanProfiling(false);
    std::printf("plan profiling off\n");
  } else if (line == "\\profile on") {
    db->view_manager().set_profiling(true);
    std::printf("profiling on\n");
  } else if (line == "\\profile off") {
    db->view_manager().set_profiling(false);
    std::printf("profiling off\n");
  } else if (line == "\\serve off") {
    db->StopMonitoring();
    std::printf("monitoring endpoint stopped\n");
  } else if (line.rfind("\\serve ", 0) == 0) {
    char* end = nullptr;
    const unsigned long port = std::strtoul(line.c_str() + 7, &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      std::printf("usage: \\serve <port>   (0 = ephemeral) | \\serve off\n");
    } else {
      chronicle::Status st =
          db->StartMonitoring(static_cast<uint16_t>(port));
      if (!st.ok()) {
        std::printf("ERROR: %s\n", st.ToString().c_str());
      } else {
        std::printf("serving http://127.0.0.1:%u/ (/metrics /stats.json "
                    "/trace.json /history.json /healthz "
                    "/views/<name>/explain.json)\n",
                    unsigned{db->monitoring_port()});
      }
    }
  } else if (line == "\\history") {
    db->SampleStatsNow();
    std::printf("%s", chronicle::obs::RenderHistoryText(
                          db->history()->Windows())
                          .c_str());
  } else if (line.rfind("\\explain ", 0) == 0) {
    const std::string name = line.substr(9);
    chronicle::Result<std::string> explain = db->ExplainView(name);
    if (!explain.ok()) {
      std::printf("ERROR: %s\n", explain.status().ToString().c_str());
    } else {
      std::printf("%s", explain->c_str());
    }
  } else if (line == "\\wal off") {
    session->DetachWal();
    std::printf("wal detached\n");
  } else if (line.rfind("\\wal ", 0) == 0) {
    const std::string dir = line.substr(5);
    session->DetachWal();
    if (session->AttachWal(dir)) {
      std::printf("logging to %s (next lsn %llu)\n", dir.c_str(),
                  static_cast<unsigned long long>(session->wal->next_lsn()));
    }
  } else if (line.rfind("\\threads ", 0) == 0) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(line.c_str() + 9, &end, 10);
    if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
      std::printf("usage: \\threads <n>   (1 = serial maintenance)\n");
    } else {
      chronicle::MaintenanceOptions options = db->maintenance_options();
      options.num_threads = static_cast<size_t>(n);
      db->ReconfigureMaintenance(options);
      std::printf("maintenance threads: %lu%s\n", n,
                  n == 1 ? " (serial)" : "");
    }
  } else if (line.rfind("\\engine ", 0) == 0) {
    const std::string which = line.substr(8);
    chronicle::MaintenanceOptions options = db->maintenance_options();
    if (which == "interp") {
      options.use_compiled_plans = false;
    } else if (which == "compiled") {
      options.use_compiled_plans = true;
      options.use_columnar_kernels = false;
    } else if (which == "columnar") {
      options.use_compiled_plans = true;
      options.use_columnar_kernels = true;
    } else {
      std::printf("usage: \\engine interp|compiled|columnar\n");
      return true;
    }
    db->ReconfigureMaintenance(options);
    std::printf("delta engine: %s\n", which.c_str());
  } else if (line == "\\stats" || line == "\\stats text") {
    std::printf("%s", chronicle::obs::RenderText(session->CollectStats()).c_str());
  } else if (line == "\\stats prom") {
    std::printf("%s",
                chronicle::obs::RenderPrometheus(session->CollectStats()).c_str());
  } else if (line == "\\stats json") {
    std::printf("%s\n",
                chronicle::obs::RenderJson(session->CollectStats()).c_str());
  } else if (line == "\\trace") {
    const chronicle::obs::TraceRing* ring = db->trace();
    if (ring == nullptr || !ring->enabled()) {
      std::printf("tracing disabled\n");
    } else {
      std::printf("%s", chronicle::obs::RenderTraceText(
                            ring->Snapshot(), ring->total_emitted(),
                            ring->capacity())
                            .c_str());
    }
  } else if (line == "\\checkpoint") {
    if (session->wal == nullptr) {
      std::printf("no wal attached (use \\wal <dir> first)\n");
    } else {
      chronicle::Status st = session->wal->WriteCheckpoint(*db);
      if (!st.ok()) {
        std::printf("ERROR: %s\n", st.ToString().c_str());
      } else {
        std::printf("checkpoint written at lsn %llu\n",
                    static_cast<unsigned long long>(
                        session->wal->last_synced_lsn()));
      }
    }
  } else if (line.rfind("\\recover ", 0) == 0) {
    const std::string dir = line.substr(9);
    // Recovery needs a detached log; re-attach to the same dir on success
    // so the session keeps logging where it left off.
    session->DetachWal();
    chronicle::Result<chronicle::wal::RecoveryReport> report =
        chronicle::wal::Recover(dir, db);
    if (!report.ok()) {
      std::printf("ERROR: %s\n", report.status().ToString().c_str());
    } else {
      std::printf(
          "recovered to lsn %llu (%s; %llu record(s) replayed%s)\n",
          static_cast<unsigned long long>(report->recovered_lsn()),
          report->checkpoint_restored ? "checkpoint + log tail"
                                      : "log replay from genesis",
          static_cast<unsigned long long>(report->replay.records_applied),
          report->replay.tail_truncated ? "; torn tail discarded" : "");
      session->recovered = true;
      session->recovery_records_applied = report->replay.records_applied;
      session->recovery_records_skipped = report->replay.records_skipped;
      session->AttachWal(dir);
    }
  } else {
    std::printf(
        "unknown meta-command %s (try \\profile [plan] on|off, \\threads <n>, "
        "\\engine interp|compiled|columnar, \\wal <dir>|off, \\checkpoint, "
        "\\recover <dir>, \\stats [prom|json], \\trace, \\serve <port>|off, "
        "\\history, \\explain <view>, \\quit)\n",
        line.c_str());
  }
  return true;
}

int RunScriptFile(ChronicleDatabase* db, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  chronicle::Result<ExecResult> result =
      chronicle::cql::ExecuteScript(db, buffer.str());
  if (!result.ok()) {
    std::fprintf(stderr, "ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  chronicle::DatabaseOptions options;
  const char* script = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      options.storage.data_dir = argv[++i];
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      options.storage.data_dir = arg.substr(11);
    } else if (script == nullptr && !arg.empty() && arg[0] != '-') {
      script = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: chronicle_shell [--data-dir <dir>] [script.cql]\n");
      return 1;
    }
  }
  Session session(std::move(options));
  if (script != nullptr) return RunScriptFile(&session.db, script);

  const bool interactive = isatty(0);
  if (interactive) {
    std::printf("chronicle shell — end statements with ';', \\quit to exit\n");
  }
  std::string pending;
  std::string line;
  bool done = false;
  while (!done) {
    if (interactive) std::printf(pending.empty() ? "cql> " : "...> ");
    if (!std::getline(std::cin, line)) break;
    // Meta-commands act on whole lines, outside any pending statement.
    if (pending.empty() && HandleMeta(&session, line, &done)) continue;
    pending += line;
    pending += "\n";
    // Execute every complete statement accumulated so far.
    size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      std::string sql = pending.substr(0, semi);
      pending.erase(0, semi + 1);
      // Skip pure-whitespace statements.
      if (sql.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      RunStatement(&session.db, sql);
    }
    // Leftover whitespace (the newline after 'stmt;') would otherwise keep
    // `pending` non-empty and block the next meta-command.
    if (pending.find_first_not_of(" \t\r\n") == std::string::npos) {
      pending.clear();
    }
  }
  // Join the monitoring threads while the session (whose enricher they
  // call) is still fully alive, then close the WAL.
  session.db.StopMonitoring();
  session.DetachWal();
  return 0;
}
