// chronicle_shell: an interactive (or scripted) CQL shell.
//
//   $ ./chronicle_shell               # interactive REPL on stdin
//   $ ./chronicle_shell script.cql    # execute a ';'-separated script
//   $ echo "SHOW VIEWS;" | ./chronicle_shell
//   $ ./chronicle_shell --data-dir <dir>   # tiered chronicles spill here
//   $ ./chronicle_shell --shards 4 script.cql   # sharded execution
//
// With --data-dir, chronicles created with tiered retention seal aged rows
// into segment files under <dir>, and \stats shows the per-tier breakdown.
// With --shards N (or \shards N), statements execute against a sharded
// database through the same cql::Session layer the wire service drives,
// so example scripts run both sharded and unsharded.
//
// Statements end with ';' and may span lines. Meta-commands:
//   \profile on|off   toggle per-view maintenance profiling
//   \profile plan on|off  toggle per-slot plan profiling (feeds \explain)
//   \threads <n>      maintain views on n worker threads (1 = serial)
//   \engine <e>       delta engine: interp | compiled | columnar
//   \shards <n>       reopen as an n-shard database (state is reset!)
//   \wal <dir>        log every mutation to a write-ahead log in <dir>
//   \wal off          sync and detach the write-ahead log
//   \checkpoint       checkpoint the database into the WAL directory
//   \recover <dir>    rebuild state from <dir> (apply the DDL first!),
//                     then resume logging there
//   \stats            observability snapshot, human-readable
//   \stats prom       ... in Prometheus text exposition format
//   \stats json       ... as a machine-readable JSON dump
//   \trace            recent maintenance spans from the trace ring
//   \serve <port>     start the HTTP monitoring endpoint (0 = ephemeral)
//   \serve off        stop it
//   \listen <port> [token]  start the CQL wire service (docs/NETWORK.md)
//   \listen off       stop it
//   \history          stats time-series sparklines (takes a sample)
//   \explain <view>   compiled plan of <view> with sampled time shares
//   \quit             exit
// Errors are printed and the session continues (scripts abort on error).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "cql/session.h"
#include "net/wire_service.h"
#include "obs/export.h"
#include "obs/history.h"
#include "obs/stats.h"

namespace {

using chronicle::ChronicleDatabase;
using chronicle::Tuple;
using chronicle::cql::ExecResult;
using chronicle::cql::Session;

// Renders a result-set as an aligned text table.
void PrintRows(const ExecResult& result) {
  if (result.rows.empty()) return;
  const size_t cols = result.schema.num_fields();
  std::vector<size_t> widths(cols, 0);
  std::vector<std::vector<std::string>> cells;
  // Header.
  std::vector<std::string> header;
  for (size_t c = 0; c < cols; ++c) {
    header.push_back(result.schema.field(c).name);
    widths[c] = header[c].size();
  }
  for (const Tuple& row : result.rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < cols && c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  auto print_line = [&](const std::vector<std::string>& line) {
    for (size_t c = 0; c < line.size(); ++c) {
      std::printf("%s%-*s", c == 0 ? "| " : " | ", static_cast<int>(widths[c]),
                  line[c].c_str());
    }
    std::printf(" |\n");
  };
  print_line(header);
  for (size_t c = 0; c < cols; ++c) {
    std::printf("%s%s", c == 0 ? "|-" : "-|-", std::string(widths[c], '-').c_str());
  }
  std::printf("-|\n");
  for (const auto& line : cells) print_line(line);
}

// Executes one statement, printing results; returns false on error.
bool RunStatement(Session* session, const std::string& sql) {
  chronicle::Result<ExecResult> result = session->ExecuteSql(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return false;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return true;
}

// The REPL's mutable state: the session (replaced by \shards) plus the
// wire service bound to it.
struct ShellState {
  chronicle::DatabaseOptions base_options;
  std::unique_ptr<Session> session;
  std::unique_ptr<chronicle::net::WireService> wire;

  bool Reopen(size_t num_shards) {
    wire.reset();  // bound to the old session
    session.reset();
    chronicle::DatabaseOptions options = base_options;
    options.sharding.num_shards = num_shards;
    auto opened = Session::Open(std::move(options));
    if (!opened.ok()) {
      std::printf("ERROR: %s\n", opened.status().ToString().c_str());
      return false;
    }
    session = std::move(opened).value();
    return true;
  }
};

// Handles a \meta command; returns true if it was one.
bool HandleMeta(ShellState* state, const std::string& line, bool* done) {
  if (line.empty() || line[0] != '\\') return false;
  Session* session = state->session.get();
  ChronicleDatabase& engine0 = session->engine0();
  if (line == "\\quit" || line == "\\q") {
    *done = true;
  } else if (line == "\\profile plan on") {
    engine0.SetPlanProfiling(true);
    std::printf("plan profiling on (feeds \\explain)\n");
  } else if (line == "\\profile plan off") {
    engine0.SetPlanProfiling(false);
    std::printf("plan profiling off\n");
  } else if (line == "\\profile on") {
    engine0.view_manager().set_profiling(true);
    std::printf("profiling on\n");
  } else if (line == "\\profile off") {
    engine0.view_manager().set_profiling(false);
    std::printf("profiling off\n");
  } else if (line == "\\serve off") {
    session->StopMonitoring();
    std::printf("monitoring endpoint stopped\n");
  } else if (line.rfind("\\serve ", 0) == 0) {
    char* end = nullptr;
    const unsigned long port = std::strtoul(line.c_str() + 7, &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      std::printf("usage: \\serve <port>   (0 = ephemeral) | \\serve off\n");
    } else {
      chronicle::Status st =
          session->StartMonitoring(static_cast<uint16_t>(port));
      if (!st.ok()) {
        std::printf("ERROR: %s\n", st.ToString().c_str());
      } else {
        std::printf("serving http://127.0.0.1:%u/ (/metrics /stats.json "
                    "/trace.json /history.json /requests.json /healthz "
                    "/views/<name>/explain.json)\n",
                    unsigned{session->monitoring_port()});
      }
    }
  } else if (line == "\\listen off") {
    state->wire.reset();
    std::printf("wire service stopped\n");
  } else if (line.rfind("\\listen ", 0) == 0) {
    std::istringstream args(line.substr(8));
    std::string port_word, token;
    args >> port_word >> token;
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_word.c_str(), &end, 10);
    if (port_word.empty() || end == nullptr || *end != '\0' || port > 65535) {
      std::printf("usage: \\listen <port> [token]   (0 = ephemeral) "
                  "| \\listen off\n");
    } else {
      state->wire.reset();
      chronicle::net::NetOptions net_options;
      net_options.auth_token = token;
      state->wire = std::make_unique<chronicle::net::WireService>(
          session, net_options);
      chronicle::Status st =
          state->wire->Start(static_cast<uint16_t>(port));
      if (!st.ok()) {
        std::printf("ERROR: %s\n", st.ToString().c_str());
        state->wire.reset();
      } else {
        std::printf("wire service on http://127.0.0.1:%u/ (POST /v1/session "
                    "/v1/sql /v1/append /v1/drain; GET /healthz /stats.json "
                    "/metrics /requests.json /trace.json /history.json)%s\n",
                    unsigned{state->wire->port()},
                    token.empty() ? "" : " [bearer auth]");
      }
    }
  } else if (line.rfind("\\shards ", 0) == 0) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(line.c_str() + 8, &end, 10);
    if (end == nullptr || *end != '\0' || n == 0 || n > 64) {
      std::printf("usage: \\shards <n>   (1 = unsharded; resets state)\n");
    } else if (state->Reopen(static_cast<size_t>(n))) {
      std::printf("reopened with %lu shard(s) — previous state discarded\n",
                  n);
    }
  } else if (line == "\\history") {
    engine0.SampleStatsNow();
    std::printf("%s", chronicle::obs::RenderHistoryText(
                          engine0.history()->Windows())
                          .c_str());
  } else if (line.rfind("\\explain ", 0) == 0) {
    const std::string name = line.substr(9);
    chronicle::Result<std::string> explain = engine0.ExplainView(name);
    if (!explain.ok()) {
      std::printf("ERROR: %s\n", explain.status().ToString().c_str());
    } else {
      std::printf("%s", explain->c_str());
    }
  } else if (line == "\\wal off") {
    chronicle::Status st = session->DetachWal();
    if (!st.ok()) std::printf("ERROR: %s\n", st.ToString().c_str());
    std::printf("wal detached\n");
  } else if (line.rfind("\\wal ", 0) == 0) {
    const std::string dir = line.substr(5);
    chronicle::Status st = session->AttachWal(dir);
    if (!st.ok()) {
      std::printf("ERROR: %s\n", st.ToString().c_str());
    } else {
      std::printf("logging to %s (next lsn %llu)\n", dir.c_str(),
                  static_cast<unsigned long long>(session->wal()->next_lsn()));
    }
  } else if (line.rfind("\\threads ", 0) == 0) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(line.c_str() + 9, &end, 10);
    if (end == nullptr || *end != '\0' || n == 0 || n > 256) {
      std::printf("usage: \\threads <n>   (1 = serial maintenance)\n");
    } else {
      chronicle::MaintenanceOptions options = session->maintenance_options();
      options.num_threads = static_cast<size_t>(n);
      session->ReconfigureMaintenance(options);
      std::printf("maintenance threads: %lu%s\n", n,
                  n == 1 ? " (serial)" : "");
    }
  } else if (line.rfind("\\engine ", 0) == 0) {
    const std::string which = line.substr(8);
    chronicle::MaintenanceOptions options = session->maintenance_options();
    if (which == "interp") {
      options.use_compiled_plans = false;
    } else if (which == "compiled") {
      options.use_compiled_plans = true;
      options.use_columnar_kernels = false;
    } else if (which == "columnar") {
      options.use_compiled_plans = true;
      options.use_columnar_kernels = true;
    } else {
      std::printf("usage: \\engine interp|compiled|columnar\n");
      return true;
    }
    session->ReconfigureMaintenance(options);
    std::printf("delta engine: %s\n", which.c_str());
  } else if (line == "\\stats" || line == "\\stats text") {
    std::printf("%s", chronicle::obs::RenderText(session->CollectStats()).c_str());
  } else if (line == "\\stats prom") {
    std::printf("%s",
                chronicle::obs::RenderPrometheus(session->CollectStats()).c_str());
  } else if (line == "\\stats json") {
    std::printf("%s\n",
                chronicle::obs::RenderJson(session->CollectStats()).c_str());
  } else if (line == "\\trace") {
    const chronicle::obs::TraceRing* ring = engine0.trace();
    if (ring == nullptr || !ring->enabled()) {
      std::printf("tracing disabled\n");
    } else {
      std::printf("%s", chronicle::obs::RenderTraceText(
                            ring->Snapshot(), ring->total_emitted(),
                            ring->capacity())
                            .c_str());
    }
  } else if (line == "\\checkpoint") {
    chronicle::Status st = session->WriteCheckpoint();
    if (!st.ok()) {
      std::printf("ERROR: %s\n", st.ToString().c_str());
    } else {
      std::printf("checkpoint written at lsn %llu\n",
                  static_cast<unsigned long long>(
                      session->wal()->last_synced_lsn()));
    }
  } else if (line.rfind("\\recover ", 0) == 0) {
    const std::string dir = line.substr(9);
    chronicle::Result<chronicle::wal::RecoveryReport> report =
        session->Recover(dir);
    if (!report.ok()) {
      std::printf("ERROR: %s\n", report.status().ToString().c_str());
    } else {
      std::printf(
          "recovered to lsn %llu (%s; %llu record(s) replayed%s)\n",
          static_cast<unsigned long long>(report->recovered_lsn()),
          report->checkpoint_restored ? "checkpoint + log tail"
                                      : "log replay from genesis",
          static_cast<unsigned long long>(report->replay.records_applied),
          report->replay.tail_truncated ? "; torn tail discarded" : "");
    }
  } else {
    std::printf(
        "unknown meta-command %s (try \\profile [plan] on|off, \\threads <n>, "
        "\\engine interp|compiled|columnar, \\shards <n>, \\wal <dir>|off, "
        "\\checkpoint, \\recover <dir>, \\stats [prom|json], \\trace, "
        "\\serve <port>|off, \\listen <port> [token]|off, \\history, "
        "\\explain <view>, \\quit)\n",
        line.c_str());
  }
  return true;
}

int RunScriptFile(Session* session, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  chronicle::Result<ExecResult> result = session->ExecuteScript(buffer.str());
  if (!result.ok()) {
    std::fprintf(stderr, "ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (!result->message.empty()) std::printf("%s\n", result->message.c_str());
  PrintRows(*result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ShellState state;
  size_t num_shards = 1;
  const char* script = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--data-dir" && i + 1 < argc) {
      state.base_options.storage.data_dir = argv[++i];
    } else if (arg.rfind("--data-dir=", 0) == 0) {
      state.base_options.storage.data_dir = arg.substr(11);
    } else if (arg == "--shards" && i + 1 < argc) {
      num_shards = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards =
          static_cast<size_t>(std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (script == nullptr && !arg.empty() && arg[0] != '-') {
      script = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: chronicle_shell [--data-dir <dir>] "
                   "[--shards <n>] [script.cql]\n");
      return 1;
    }
  }
  if (num_shards == 0 || num_shards > 64) {
    std::fprintf(stderr, "--shards must be in [1, 64]\n");
    return 1;
  }
  if (!state.Reopen(num_shards)) return 1;
  if (script != nullptr) return RunScriptFile(state.session.get(), script);

  const bool interactive = isatty(0);
  if (interactive) {
    std::printf("chronicle shell — end statements with ';', \\quit to exit\n");
  }
  std::string pending;
  std::string line;
  bool done = false;
  while (!done) {
    if (interactive) std::printf(pending.empty() ? "cql> " : "...> ");
    if (!std::getline(std::cin, line)) break;
    // Meta-commands act on whole lines, outside any pending statement.
    if (pending.empty() && HandleMeta(&state, line, &done)) continue;
    pending += line;
    pending += "\n";
    // Execute every complete statement accumulated so far.
    size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      std::string sql = pending.substr(0, semi);
      pending.erase(0, semi + 1);
      // Skip pure-whitespace statements.
      if (sql.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      RunStatement(state.session.get(), sql);
    }
    // Leftover whitespace (the newline after 'stmt;') would otherwise keep
    // `pending` non-empty and block the next meta-command.
    if (pending.find_first_not_of(" \t\r\n") == std::string::npos) {
      pending.clear();
    }
  }
  // The wire service and the monitoring threads call into the session;
  // stop them before it goes away.
  state.wire.reset();
  state.session->StopMonitoring();
  return 0;
}
