#!/usr/bin/env python3
"""Gates the sharded ingest pipeline's multi-core scaling acceptance.

Reads the standardized report written by bench_e15_sharded_ingest
({"bench":"E15","metrics":{...}}) and compares the ShardedIngest
rows_per_sec counters at 1 and 4 shards:

    throughput(4 shards) >= CHRONICLE_SHARD_SCALING_MIN * throughput(1 shard)

The bound defaults to 2.0 (the E15 acceptance criterion: 4 shards must at
least double single-shard ingest). Scaling beyond the machine is
physically impossible, so on runners with fewer than 4 cores the bound is
derated by the `cores` counter the bench records from
std::thread::hardware_concurrency():

    cores >= 4      full bound (2.0)
    1 < cores < 4   bound scaled by (cores - 1) / 3 -- the worker threads
                    beyond the producer are the only parallelism available
    cores == 1      no parallelism exists; only a sanity floor applies
                    (4-shard throughput must stay above
                    CHRONICLE_SHARD_SCALING_FLOOR, default 0.5, of
                    1-shard, i.e. sharding must not wreck ingest)

Median aggregates (from --benchmark_repetitions) are preferred over raw
runs when both appear. Prints every ShardedIngest run so regressions are
diagnosable from the CI log alone.

Usage:
    check_shard_scaling.py [bench_report.json]

Default report: BENCH_E15.json (the name the smoke run writes into the
repo root).
"""

import json
import os
import sys


def load_runs(report_path):
    """Returns {shards: (name, entry)} for the ShardedIngest runs."""
    with open(report_path) as f:
        report = json.load(f)
    if report.get("bench") != "E15":
        raise SystemExit(
            f"FAIL: {report_path} is not an E15 report "
            f"(bench={report.get('bench')!r})")
    metrics = report.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(
            f"FAIL: {report_path} lacks the standardized 'metrics' object "
            f"(top-level keys: {sorted(report)})")
    runs = {}
    for name, entry in metrics.items():
        if not name.startswith("ShardedIngest/"):
            continue
        counters = entry.get("counters", {})
        shards = counters.get("shards")
        rate = counters.get("rows_per_sec")
        if shards is None or rate is None:
            continue
        shards = int(shards)
        # Median aggregate beats the raw run; other aggregates (mean,
        # stddev, cv) lose to both. The raw run name may carry the
        # /real_time suffix from UseRealTime().
        if name.endswith("_median"):
            priority = 2
        elif name.endswith(("_mean", "_stddev", "_cv", "_min", "_max")):
            priority = 0
        else:
            priority = 1
        if shards not in runs or priority > runs[shards][0]:
            runs[shards] = (priority, name, entry)
    return {shards: (name, entry) for shards, (_, name, entry)
            in runs.items()}


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "BENCH_E15.json"
    full_bound = float(os.environ.get("CHRONICLE_SHARD_SCALING_MIN", "2.0"))
    floor = float(os.environ.get("CHRONICLE_SHARD_SCALING_FLOOR", "0.5"))

    runs = load_runs(report_path)
    missing = [s for s in (1, 4) if s not in runs]
    if missing:
        print(f"FAIL: {report_path} is missing ShardedIngest shard counts "
              f"{missing} (found {sorted(runs)})")
        return 1

    print(f"{report_path}: ShardedIngest rows/sec by shard count")
    for shards in sorted(runs):
        name, entry = runs[shards]
        rate = entry["counters"]["rows_per_sec"]
        print(f"  {name}: {rate:,.0f} rows/sec")

    rate1 = float(runs[1][1]["counters"]["rows_per_sec"])
    rate4 = float(runs[4][1]["counters"]["rows_per_sec"])
    if rate1 <= 0:
        print("FAIL: 1-shard throughput is zero")
        return 1
    cores = int(runs[4][1]["counters"].get("cores", 0))
    ratio = rate4 / rate1

    if cores >= 4:
        bound = full_bound
        basis = f"{cores} cores: full bound"
    elif cores > 1:
        bound = max(1.0, full_bound * (cores - 1) / 3.0)
        basis = f"{cores} cores: derated bound"
    else:
        bound = floor
        basis = f"{cores or 'unknown'} core(s): sanity floor only"

    print(f"scaling: {ratio:.3f}x at 4 vs 1 shards "
          f"(bound {bound:.3f}, {basis})")
    if ratio < bound:
        print(f"FAIL: 4-shard ingest is {ratio:.3f}x of 1-shard; "
              f"the gate requires >= {bound:.3f}x")
        return 1
    print("PASS: shard scaling gate")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
